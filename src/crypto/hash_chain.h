// TESLA hash chains (delayed-key-disclosure broadcast authentication).
//
// A flight's authentication keys form a one-way chain
//
//     K_N  --SHA-256-->  K_{N-1}  --SHA-256-->  ...  --SHA-256-->  K_0
//
// generated backwards from a random seed K_N. The drone commits to the
// *anchor* K_0 once per flight with a single TEE RSA signature; every
// GPS sample in interval i is then authenticated with one HMAC tag keyed
// by a value derived from the not-yet-disclosed K_i. Disclosing K_i
// after the delay lets anyone verify the tag, and the one-way chain lets
// anyone confirm K_i really belongs to the committed flight by hashing
// it down to a previously verified element.
//
// Two sides, two caching strategies:
//  - the sender (`HashChain`) keeps √N checkpoints so deriving K_i costs
//    O(√N) hashes worst case and zero heap allocations;
//  - the verifier (`ChainFrontier`) keeps only the highest verified
//    element (the frontier), so a whole flight's disclosures cost N
//    hashes total no matter how many are dropped or arrive out of order.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "crypto/bytes.h"
#include "crypto/sha256.h"

namespace alidrone::crypto {

/// One chain element (SHA-256 wide).
using ChainKey = std::array<std::uint8_t, 32>;
inline constexpr std::size_t kChainKeySize = 32;

/// One step toward the anchor: returns SHA-256(key), i.e. K_{i-1} from K_i.
ChainKey chain_step(const ChainKey& key);

/// Sender-side chain with checkpoint caching.
///
/// Construction walks the full chain once (N hashes), storing every
/// `checkpoint_stride`-th element; `key(i)` then re-derives any element
/// from the nearest checkpoint above it without touching the heap.
/// stride = 1 caches the whole chain (O(1) lookup, N keys of memory);
/// stride = 0 picks ceil(√N) — the classic O(√N) time/memory balance.
class HashChain {
 public:
  HashChain(const ChainKey& seed, std::size_t length,
            std::size_t checkpoint_stride = 0);

  /// Number of usable keys K_1..K_length (K_0 is the commitment anchor).
  std::size_t length() const { return length_; }
  std::size_t checkpoint_stride() const { return stride_; }

  /// K_0, the element committed by the per-flight TEE signature.
  const ChainKey& anchor() const { return anchor_; }

  /// Derive K_index (1 <= index <= length()). Zero allocations.
  ChainKey key(std::size_t index) const;

  /// Total SHA-256 invocations spent inside key() since construction
  /// (checkpoint-cache ablation metric; construction's N hashes excluded).
  std::uint64_t derive_hashes() const { return derive_hashes_; }

 private:
  std::size_t length_;
  std::size_t stride_;
  ChainKey anchor_;
  std::vector<ChainKey> checkpoints_;  ///< checkpoints_[j] = K_{(j+1)*stride_}
  mutable std::uint64_t derive_hashes_ = 0;
};

/// Verifier-side incremental chain state: starts at the committed anchor
/// K_0 and advances as keys are disclosed. Accepting K_j hashes it down
/// j - frontier steps to the last verified element, so total verification
/// cost is N hashes per flight regardless of drops, duplicates or
/// reordering; a key that does not chain down to the frontier is forged
/// (or belongs to a forked chain) and is rejected without state change.
class ChainFrontier {
 public:
  ChainFrontier(const ChainKey& anchor, std::size_t length);

  /// Verify that `key` is K_index of the committed chain. On success the
  /// frontier advances to index. Rejects index <= frontier (replay /
  /// out-of-order disclosure), index > length, and keys that fail to
  /// chain down to the frontier.
  bool accept(std::size_t index, const ChainKey& key);

  std::size_t length() const { return length_; }
  std::size_t frontier_index() const { return index_; }
  const ChainKey& frontier_key() const { return frontier_; }

  /// Total SHA-256 invocations spent in accept() (bounded by length()).
  std::uint64_t verify_hashes() const { return verify_hashes_; }

 private:
  ChainKey frontier_;
  std::size_t index_ = 0;
  std::size_t length_;
  std::uint64_t verify_hashes_ = 0;
};

/// TESLA key-separation: the MAC key for interval i is not K_i itself but
/// K'_i = HMAC-SHA256(K_i, "alidrone.tesla.mac.v1"), so disclosed chain
/// elements are never directly usable as MAC keys. Zero allocations.
ChainKey tesla_mac_key(const ChainKey& chain_key);

/// Per-sample tag: HMAC-SHA256(K'_i, BE64(interval) || sample). This is
/// the entire per-sample signing cost of the TESLA PoA mode — a few µs
/// against ~ms for a planned RSA private operation. Zero allocations.
ChainKey tesla_tag(const ChainKey& mac_key, std::uint64_t interval,
                   std::span<const std::uint8_t> sample);

}  // namespace alidrone::crypto
