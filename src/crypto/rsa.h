// RSA: key generation, RSASSA-PKCS1-v1_5 signatures (SHA-1 / SHA-256) and
// RSAES-PKCS1-v1_5 encryption — the same algorithms the AliDrone prototype
// uses inside OP-TEE (TEE_ALG_RSASSA_PKCS1_V1_5_SHA1, RSAES_PKCS1_v1_5).
//
// Private-key operations use the Chinese Remainder Theorem when CRT
// parameters are present. Signature verification is strict: the decoded
// encoding must match the expected EMSA-PKCS1-v1_5 block byte-for-byte.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "crypto/bigint.h"
#include "crypto/bytes.h"
#include "crypto/random.h"

namespace alidrone::crypto {

/// Hash used inside RSASSA-PKCS1-v1_5.
enum class HashAlgorithm {
  kSha1,    ///< paper's TEE_ALG_RSASSA_PKCS1_V1_5_SHA1
  kSha256,  ///< modern default
};

std::string to_string(HashAlgorithm h);

/// Public half: (n, e). Sufficient to verify signatures and encrypt.
struct RsaPublicKey {
  BigInt n;
  BigInt e;

  std::size_t modulus_bits() const { return n.bit_length(); }
  std::size_t modulus_bytes() const { return (n.bit_length() + 7) / 8; }

  bool operator==(const RsaPublicKey&) const = default;

  /// Stable fingerprint (SHA-256 of n || e), e.g. for registries/logs.
  Bytes fingerprint() const;
};

/// Private half, with CRT acceleration parameters.
struct RsaPrivateKey {
  BigInt n;
  BigInt e;
  BigInt d;
  // CRT parameters (empty BigInts when unavailable).
  BigInt p;
  BigInt q;
  BigInt d_p;    ///< d mod (p-1)
  BigInt d_q;    ///< d mod (q-1)
  BigInt q_inv;  ///< q^-1 mod p

  bool has_crt() const { return !p.is_zero() && !q.is_zero(); }
  std::size_t modulus_bytes() const { return (n.bit_length() + 7) / 8; }

  RsaPublicKey public_key() const { return {n, e}; }
};

struct RsaKeyPair {
  RsaPublicKey pub;
  RsaPrivateKey priv;
};

/// Generate an RSA key pair with the given modulus size (e = 65537).
/// Use a DeterministicRandom for reproducible keys in tests.
RsaKeyPair generate_rsa_keypair(std::size_t modulus_bits, RandomSource& rng);

/// RSASSA-PKCS1-v1_5 signature over `message` (the message is hashed with
/// `hash` internally). Output length equals the modulus length.
Bytes rsa_sign(const RsaPrivateKey& key, std::span<const std::uint8_t> message,
               HashAlgorithm hash);

/// Same signature, computed through the blinded private-key operation
/// (timing side-channel countermeasure; see rsa_private_op_blinded).
Bytes rsa_sign_blinded(const RsaPrivateKey& key,
                       std::span<const std::uint8_t> message, HashAlgorithm hash,
                       RandomSource& rng);

/// Strict RSASSA-PKCS1-v1_5 verification; false on any mismatch (never throws
/// for malformed signatures — a hostile input must not crash the Auditor).
bool rsa_verify(const RsaPublicKey& key, std::span<const std::uint8_t> message,
                std::span<const std::uint8_t> signature, HashAlgorithm hash);

/// RSAES-PKCS1-v1_5 encryption. Message must be at most k - 11 bytes where
/// k is the modulus length; throws std::length_error otherwise.
Bytes rsa_encrypt(const RsaPublicKey& key, std::span<const std::uint8_t> message,
                  RandomSource& rng);

/// RSAES-PKCS1-v1_5 decryption; std::nullopt on padding failure.
std::optional<Bytes> rsa_decrypt(const RsaPrivateKey& key,
                                 std::span<const std::uint8_t> ciphertext);

/// Raw RSA private-key operation m^d mod n (CRT-accelerated when available).
/// Exposed for benchmarks; protocol code uses the padded forms above.
BigInt rsa_private_op(const RsaPrivateKey& key, const BigInt& m);

/// Blinded private-key operation (Kocher's timing-attack countermeasure):
/// computes m^d mod n as r^-1 * (m * r^e)^d mod n for a fresh random r, so
/// the exponentiation input is uncorrelated with the message. The drone
/// TEE signs attacker-influenced data (GPS bytes an adversary may shape
/// via the UART), which is exactly the setting blinding defends.
BigInt rsa_private_op_blinded(const RsaPrivateKey& key, const BigInt& m,
                              RandomSource& rng);

}  // namespace alidrone::crypto
