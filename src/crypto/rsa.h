// RSA: key generation, RSASSA-PKCS1-v1_5 signatures (SHA-1 / SHA-256) and
// RSAES-PKCS1-v1_5 encryption — the same algorithms the AliDrone prototype
// uses inside OP-TEE (TEE_ALG_RSASSA_PKCS1_V1_5_SHA1, RSAES_PKCS1_v1_5).
//
// Private-key operations use the Chinese Remainder Theorem when CRT
// parameters are present. Signature verification is strict: the decoded
// encoding must match the expected EMSA-PKCS1-v1_5 block byte-for-byte.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>

#include "crypto/bigint.h"
#include "crypto/bytes.h"
#include "crypto/montgomery.h"
#include "crypto/random.h"

namespace alidrone::crypto {

/// Hash used inside RSASSA-PKCS1-v1_5.
enum class HashAlgorithm {
  kSha1,    ///< paper's TEE_ALG_RSASSA_PKCS1_V1_5_SHA1
  kSha256,  ///< modern default
};

std::string to_string(HashAlgorithm h);

/// Public half: (n, e). Sufficient to verify signatures and encrypt.
struct RsaPublicKey {
  BigInt n;
  BigInt e;

  std::size_t modulus_bits() const { return n.bit_length(); }
  std::size_t modulus_bytes() const { return (n.bit_length() + 7) / 8; }

  bool operator==(const RsaPublicKey&) const = default;

  /// Stable fingerprint (SHA-256 of n || e), e.g. for registries/logs.
  Bytes fingerprint() const;
};

/// Private half, with CRT acceleration parameters.
struct RsaPrivateKey {
  BigInt n;
  BigInt e;
  BigInt d;
  // CRT parameters (empty BigInts when unavailable).
  BigInt p;
  BigInt q;
  BigInt d_p;    ///< d mod (p-1)
  BigInt d_q;    ///< d mod (q-1)
  BigInt q_inv;  ///< q^-1 mod p

  bool has_crt() const { return !p.is_zero() && !q.is_zero(); }
  std::size_t modulus_bytes() const { return (n.bit_length() + 7) / 8; }

  RsaPublicKey public_key() const { return {n, e}; }
};

struct RsaKeyPair {
  RsaPublicKey pub;
  RsaPrivateKey priv;
};

/// Generate an RSA key pair with the given modulus size (e = 65537).
/// Use a DeterministicRandom for reproducible keys in tests.
RsaKeyPair generate_rsa_keypair(std::size_t modulus_bits, RandomSource& rng);

/// RSASSA-PKCS1-v1_5 signature over `message` (the message is hashed with
/// `hash` internally). Output length equals the modulus length.
Bytes rsa_sign(const RsaPrivateKey& key, std::span<const std::uint8_t> message,
               HashAlgorithm hash);

/// Same signature, computed through the blinded private-key operation
/// (timing side-channel countermeasure; see rsa_private_op_blinded).
Bytes rsa_sign_blinded(const RsaPrivateKey& key,
                       std::span<const std::uint8_t> message, HashAlgorithm hash,
                       RandomSource& rng);

/// Strict RSASSA-PKCS1-v1_5 verification; false on any mismatch (never throws
/// for malformed signatures — a hostile input must not crash the Auditor).
/// Routes through the allocation-free RsaVerifyEngine for supported keys.
bool rsa_verify(const RsaPublicKey& key, std::span<const std::uint8_t> message,
                std::span<const std::uint8_t> signature, HashAlgorithm hash);

/// EMSA-PKCS1-v1_5 encoding (0x00 0x01 FF..FF 0x00 DigestInfo) written
/// into a caller buffer of exactly em.size() bytes, allocation-free.
/// Returns false when the buffer cannot hold the digest (the "modulus
/// too small for this digest" case).
bool emsa_pkcs1_encode_into(std::span<const std::uint8_t> message,
                            HashAlgorithm hash, std::span<std::uint8_t> em);

/// RSAES-PKCS1-v1_5 encryption. Message must be at most k - 11 bytes where
/// k is the modulus length; throws std::length_error otherwise.
Bytes rsa_encrypt(const RsaPublicKey& key, std::span<const std::uint8_t> message,
                  RandomSource& rng);

/// RSAES-PKCS1-v1_5 decryption; std::nullopt on padding failure.
std::optional<Bytes> rsa_decrypt(const RsaPrivateKey& key,
                                 std::span<const std::uint8_t> ciphertext);

/// Raw RSA private-key operation m^d mod n (CRT-accelerated when available).
/// Exposed for benchmarks; protocol code uses the padded forms above.
BigInt rsa_private_op(const RsaPrivateKey& key, const BigInt& m);

/// Blinded private-key operation (Kocher's timing-attack countermeasure):
/// computes m^d mod n as r^-1 * (m * r^e)^d mod n for a fresh random r, so
/// the exponentiation input is uncorrelated with the message. The drone
/// TEE signs attacker-influenced data (GPS bytes an adversary may shape
/// via the UART), which is exactly the setting blinding defends.
BigInt rsa_private_op_blinded(const RsaPrivateKey& key, const BigInt& m,
                              RandomSource& rng);

/// RsaSigningPlan tuning knobs (namespace scope so the struct can be a
/// defaulted constructor argument).
struct RsaSigningPlanConfig {
  /// A blinding pair serves this many private operations before a fresh
  /// (r, r^-1) is drawn from the RNG; in between it is refreshed by
  /// squaring (r <- r^2 mod n keeps the pair an (r^e, r^-1) pair while
  /// decorrelating consecutive exponentiation inputs). Values <= 1 draw a
  /// fresh pair for every operation.
  std::uint64_t blinding_refresh_interval = 32;
  /// Bellcore fault-attack guard: verify every CRT-recombined result with
  /// the public exponent before releasing it, falling back to the non-CRT
  /// exponentiation on mismatch.
  bool crt_fault_check = true;
};

/// Precomputed per-key signing state — the drone-side fast path.
///
/// rsa_sign_blinded pays three avoidable costs on every signature:
/// re-deriving the modular-exponentiation window state for d_p and d_q,
/// a fresh blinding pair (one mod_pow(e, n) plus an extended-Euclid
/// mod_inverse, the single most expensive non-exponentiation step), and
/// per-call allocation churn. A plan amortizes all three:
///   - two FixedExponentPlans (d_p mod p, d_q mod q) built once;
///   - a cached blinding pair, refreshed by squaring and re-randomized
///     from the RNG every `blinding_refresh_interval` operations;
///   - a CRT fault guard (cheap public-exponent check) so a faulted
///     recombination can never leak a signature that factors the key.
/// Signatures are byte-identical to rsa_sign / rsa_sign_blinded output.
///
/// NOT thread-safe (mutable window/blinding state): confine to one thread
/// or guard externally, as tee::KeyVault does.
class RsaSigningPlan {
 public:
  explicit RsaSigningPlan(const RsaPrivateKey& key,
                          RsaSigningPlanConfig config = {});

  /// RSASSA-PKCS1-v1_5 signature, blinded, byte-identical to rsa_sign.
  Bytes sign(std::span<const std::uint8_t> message, HashAlgorithm hash,
             RandomSource& rng);

  /// Planned m^d mod n (CRT when available), fault-guarded.
  BigInt private_op(const BigInt& m);

  /// Planned + blinded m^d mod n using the cached blinding pair.
  BigInt private_op_blinded(const BigInt& m, RandomSource& rng);

  const RsaPublicKey public_key() const { return {key_.n, key_.e}; }
  std::size_t modulus_bytes() const { return key_.modulus_bytes(); }
  const RsaSigningPlanConfig& config() const { return config_; }

  // Introspection for tests/benches.
  std::uint64_t private_ops() const { return private_ops_; }
  std::uint64_t blinding_refreshes() const { return blinding_refreshes_; }
  std::uint64_t crt_fault_fallbacks() const { return crt_fault_fallbacks_; }

 private:
  void refresh_blinding(RandomSource& rng);

  RsaPrivateKey key_;
  RsaSigningPlanConfig config_;
  std::shared_ptr<const MontgomeryContext> ctx_n_;
  // CRT plans, or a single d-plan for keys without CRT parameters.
  std::unique_ptr<FixedExponentPlan> plan_p_;
  std::unique_ptr<FixedExponentPlan> plan_q_;
  std::unique_ptr<FixedExponentPlan> plan_d_;
  // Blinding pair, kept in Montgomery form: blind_ = r^e mod n (applied to
  // the input), unblind_ = r^-1 mod n (applied to the output). Empty until
  // the first blinded operation.
  BigInt blind_mont_;
  BigInt unblind_mont_;
  std::uint64_t blinding_uses_ = 0;  // operations served by the current pair
  std::uint64_t private_ops_ = 0;
  std::uint64_t blinding_refreshes_ = 0;
  std::uint64_t crt_fault_fallbacks_ = 0;
};

}  // namespace alidrone::crypto
