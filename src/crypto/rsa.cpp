#include "crypto/rsa.h"

#include <algorithm>
#include <stdexcept>

#include "crypto/batch_verify.h"
#include "crypto/prime.h"
#include "crypto/sha1.h"
#include "crypto/sha256.h"

namespace alidrone::crypto {

namespace {

// DER-encoded DigestInfo prefixes (RFC 8017, section 9.2 notes).
constexpr std::uint8_t kSha1Prefix[] = {0x30, 0x21, 0x30, 0x09, 0x06,
                                        0x05, 0x2b, 0x0e, 0x03, 0x02,
                                        0x1a, 0x05, 0x00, 0x04, 0x14};
constexpr std::uint8_t kSha256Prefix[] = {0x30, 0x31, 0x30, 0x0d, 0x06, 0x09,
                                          0x60, 0x86, 0x48, 0x01, 0x65, 0x03,
                                          0x04, 0x02, 0x01, 0x05, 0x00, 0x04,
                                          0x20};

/// EMSA-PKCS1-v1_5 encoding: 0x00 0x01 FF..FF 0x00 DigestInfo. Throwing
/// wrapper over the allocation-free emsa_pkcs1_encode_into.
Bytes emsa_pkcs1_encode(std::span<const std::uint8_t> message, HashAlgorithm hash,
                        std::size_t em_len) {
  Bytes em(em_len, 0);
  if (!emsa_pkcs1_encode_into(message, hash, em)) {
    throw std::length_error("RSA modulus too small for this digest");
  }
  return em;
}

}  // namespace

bool emsa_pkcs1_encode_into(std::span<const std::uint8_t> message,
                            HashAlgorithm hash, std::span<std::uint8_t> em) {
  // DigestInfo on the stack: the longest prefix (19 bytes) + SHA-256 (32).
  std::uint8_t t[sizeof(kSha256Prefix) + Sha256::kDigestSize];
  std::size_t t_len = 0;
  switch (hash) {
    case HashAlgorithm::kSha1: {
      const Sha1::Digest d = Sha1::hash(message);
      std::copy(std::begin(kSha1Prefix), std::end(kSha1Prefix), t);
      std::copy(d.begin(), d.end(), t + sizeof(kSha1Prefix));
      t_len = sizeof(kSha1Prefix) + d.size();
      break;
    }
    case HashAlgorithm::kSha256: {
      const Sha256::Digest d = Sha256::hash(message);
      std::copy(std::begin(kSha256Prefix), std::end(kSha256Prefix), t);
      std::copy(d.begin(), d.end(), t + sizeof(kSha256Prefix));
      t_len = sizeof(kSha256Prefix) + d.size();
      break;
    }
  }
  if (em.size() < t_len + 11) return false;
  em[0] = 0x00;
  em[1] = 0x01;
  const std::size_t ps_end = em.size() - t_len - 1;
  std::fill(em.begin() + 2, em.begin() + static_cast<std::ptrdiff_t>(ps_end),
            0xFF);
  em[ps_end] = 0x00;
  std::copy(t, t + t_len,
            em.begin() + static_cast<std::ptrdiff_t>(ps_end + 1));
  return true;
}

std::string to_string(HashAlgorithm h) {
  switch (h) {
    case HashAlgorithm::kSha1:
      return "SHA-1";
    case HashAlgorithm::kSha256:
      return "SHA-256";
  }
  return "unknown";
}

Bytes RsaPublicKey::fingerprint() const {
  Sha256 h;
  const Bytes nb = n.to_bytes();
  const Bytes eb = e.to_bytes();
  h.update(nb);
  h.update(eb);
  const Sha256::Digest d = h.finalize();
  return Bytes(d.begin(), d.end());
}

RsaKeyPair generate_rsa_keypair(std::size_t modulus_bits, RandomSource& rng) {
  if (modulus_bits < 256 || modulus_bits % 2 != 0) {
    throw std::invalid_argument("generate_rsa_keypair: modulus must be even and >= 256 bits");
  }
  const BigInt e(65537);
  const std::size_t half = modulus_bits / 2;

  for (;;) {
    const BigInt p = generate_prime(half, rng);
    BigInt q = generate_prime(half, rng);
    if (p == q) continue;

    const BigInt n = p * q;
    if (n.bit_length() != modulus_bits) continue;

    const BigInt p1 = p - BigInt(1);
    const BigInt q1 = q - BigInt(1);
    const BigInt phi = p1 * q1;
    if (BigInt::gcd(e, phi) != BigInt(1)) continue;

    RsaKeyPair kp;
    kp.priv.n = n;
    kp.priv.e = e;
    kp.priv.d = e.mod_inverse(phi);
    // Order p > q so q_inv = q^-1 mod p is the standard CRT coefficient.
    if (p > q) {
      kp.priv.p = p;
      kp.priv.q = q;
    } else {
      kp.priv.p = q;
      kp.priv.q = p;
    }
    kp.priv.d_p = kp.priv.d % (kp.priv.p - BigInt(1));
    kp.priv.d_q = kp.priv.d % (kp.priv.q - BigInt(1));
    kp.priv.q_inv = kp.priv.q.mod_inverse(kp.priv.p);
    kp.pub = kp.priv.public_key();
    return kp;
  }
}

BigInt rsa_private_op(const RsaPrivateKey& key, const BigInt& m) {
  if (m >= key.n || m.is_negative()) {
    throw std::domain_error("rsa_private_op: message representative out of range");
  }
  if (!key.has_crt()) return m.mod_pow(key.d, key.n);

  // Garner's CRT recombination.
  const BigInt m1 = m.mod_pow(key.d_p, key.p);
  const BigInt m2 = m.mod_pow(key.d_q, key.q);
  const BigInt h = (key.q_inv * (m1 - m2)).mod(key.p);
  const BigInt s = m2 + key.q * h;

  // Bellcore fault guard: a fault in either CRT half yields an s with
  // gcd(s^e - m, n) = p or q — releasing it hands the attacker the
  // factorization. Verifying with the public exponent costs a short
  // (17-bit) exponentiation, ~2% of the private op; on mismatch fall back
  // to the non-CRT path, which involves no recombination to fault.
  if (s.mod_pow(key.e, key.n) != m) {
    return m.mod_pow(key.d, key.n);
  }
  return s;
}

BigInt rsa_private_op_blinded(const RsaPrivateKey& key, const BigInt& m,
                              RandomSource& rng) {
  if (m >= key.n || m.is_negative()) {
    throw std::domain_error("rsa_private_op_blinded: message out of range");
  }
  // Draw r coprime to n (overwhelmingly likely on the first try; a common
  // factor with n would factor the key, so retrying is safe and rare).
  BigInt r;
  BigInt r_inv;
  for (;;) {
    r = rng.random_range(BigInt(2), key.n - BigInt(2));
    if (BigInt::gcd(r, key.n) != BigInt(1)) continue;
    r_inv = r.mod_inverse(key.n);
    break;
  }
  const BigInt blinded = (m * r.mod_pow(key.e, key.n)).mod(key.n);
  const BigInt signed_blinded = rsa_private_op(key, blinded);
  return (signed_blinded * r_inv).mod(key.n);
}

RsaSigningPlan::RsaSigningPlan(const RsaPrivateKey& key,
                               RsaSigningPlanConfig config)
    : key_(key), config_(config) {
  if (key_.n.is_zero() || key_.e.is_zero()) {
    throw std::invalid_argument("RsaSigningPlan: key has no modulus/exponent");
  }
  ctx_n_ = MontgomeryContextCache::global().get(key_.n);
  if (key_.has_crt()) {
    plan_p_ = std::make_unique<FixedExponentPlan>(
        MontgomeryContextCache::global().get(key_.p), key_.d_p);
    plan_q_ = std::make_unique<FixedExponentPlan>(
        MontgomeryContextCache::global().get(key_.q), key_.d_q);
  } else {
    plan_d_ = std::make_unique<FixedExponentPlan>(ctx_n_, key_.d);
  }
}

BigInt RsaSigningPlan::private_op(const BigInt& m) {
  if (m >= key_.n || m.is_negative()) {
    throw std::domain_error("RsaSigningPlan: message representative out of range");
  }
  ++private_ops_;
  if (plan_d_ != nullptr) return plan_d_->pow(m);

  // Garner's CRT recombination over the two fixed-exponent plans (the
  // plans reduce m mod p / mod q internally).
  const BigInt m1 = plan_p_->pow(m);
  const BigInt m2 = plan_q_->pow(m);
  const BigInt h = (key_.q_inv * (m1 - m2)).mod(key_.p);
  BigInt s = m2 + key_.q * h;

  // Bellcore fault guard (see rsa_private_op): never release a faulted
  // CRT recombination.
  if (config_.crt_fault_check && ctx_n_->pow(s, key_.e) != m) {
    ++crt_fault_fallbacks_;
    s = m.mod_pow(key_.d, key_.n);
  }
  return s;
}

void RsaSigningPlan::refresh_blinding(RandomSource& rng) {
  // Fresh pair: r coprime to n (see rsa_private_op_blinded), kept as
  // blind = r^e and unblind = r^-1 — both in Montgomery form so the
  // squaring refresh and the apply/remove steps are single REDC products.
  for (;;) {
    const BigInt r = rng.random_range(BigInt(2), key_.n - BigInt(2));
    if (BigInt::gcd(r, key_.n) != BigInt(1)) continue;
    unblind_mont_ = ctx_n_->to_mont(r.mod_inverse(key_.n));
    blind_mont_ = ctx_n_->to_mont(ctx_n_->pow(r, key_.e));
    break;
  }
  blinding_uses_ = 0;
  ++blinding_refreshes_;
}

BigInt RsaSigningPlan::private_op_blinded(const BigInt& m, RandomSource& rng) {
  if (m >= key_.n || m.is_negative()) {
    throw std::domain_error("RsaSigningPlan: message representative out of range");
  }
  if (blind_mont_.is_zero() ||
      blinding_uses_ >= std::max<std::uint64_t>(config_.blinding_refresh_interval, 1)) {
    refresh_blinding(rng);
  } else if (blinding_uses_ > 0) {
    // Square both halves: (r^e)^2 = (r^2)^e and (r^-1)^2 = (r^2)^-1, so
    // the pair stays consistent while the blinding factor changes — two
    // Montgomery products instead of a mod_pow + extended-Euclid inverse.
    blind_mont_ = ctx_n_->mul(blind_mont_, blind_mont_);
    unblind_mont_ = ctx_n_->mul(unblind_mont_, unblind_mont_);
  }
  ++blinding_uses_;

  // blinded = m * r^e mod n; sign; result = s_blinded * r^-1 mod n.
  const BigInt blinded =
      ctx_n_->from_mont(ctx_n_->mul(ctx_n_->to_mont(m), blind_mont_));
  const BigInt signed_blinded = private_op(blinded);
  return ctx_n_->from_mont(
      ctx_n_->mul(ctx_n_->to_mont(signed_blinded), unblind_mont_));
}

Bytes RsaSigningPlan::sign(std::span<const std::uint8_t> message,
                           HashAlgorithm hash, RandomSource& rng) {
  const std::size_t k = key_.modulus_bytes();
  const Bytes em = emsa_pkcs1_encode(message, hash, k);
  return private_op_blinded(BigInt::from_bytes(em), rng).to_bytes(k);
}

Bytes rsa_sign(const RsaPrivateKey& key, std::span<const std::uint8_t> message,
               HashAlgorithm hash) {
  const std::size_t k = key.modulus_bytes();
  const Bytes em = emsa_pkcs1_encode(message, hash, k);
  const BigInt s = rsa_private_op(key, BigInt::from_bytes(em));
  return s.to_bytes(k);
}

Bytes rsa_sign_blinded(const RsaPrivateKey& key,
                       std::span<const std::uint8_t> message, HashAlgorithm hash,
                       RandomSource& rng) {
  const std::size_t k = key.modulus_bytes();
  const Bytes em = emsa_pkcs1_encode(message, hash, k);
  const BigInt s = rsa_private_op_blinded(key, BigInt::from_bytes(em), rng);
  return s.to_bytes(k);
}

bool rsa_verify(const RsaPublicKey& key, std::span<const std::uint8_t> message,
                std::span<const std::uint8_t> signature, HashAlgorithm hash) {
  // RSA-range keys take the fixed-capacity 64-bit engine (same verdicts,
  // no per-call heap traffic beyond the one-time context build).
  if (RsaVerifyEngine::supports(key)) {
    return RsaVerifyEngine(key).verify(message, signature, hash);
  }

  const std::size_t k = key.modulus_bytes();
  if (signature.size() != k) return false;

  const BigInt s = BigInt::from_bytes(signature);
  if (s >= key.n) return false;

  const BigInt m = s.mod_pow(key.e, key.n);
  Bytes em;
  try {
    em = m.to_bytes(k);
  } catch (const std::length_error&) {
    return false;
  }
  Bytes expected;
  try {
    expected = emsa_pkcs1_encode(message, hash, k);
  } catch (const std::length_error&) {
    return false;
  }
  return constant_time_equal(em, expected);
}

Bytes rsa_encrypt(const RsaPublicKey& key, std::span<const std::uint8_t> message,
                  RandomSource& rng) {
  const std::size_t k = key.modulus_bytes();
  if (message.size() + 11 > k) {
    throw std::length_error("rsa_encrypt: message too long for modulus");
  }
  // EME-PKCS1-v1_5: 0x00 0x02 PS 0x00 M, PS = nonzero random bytes.
  Bytes em(k, 0);
  em[1] = 0x02;
  const std::size_t ps_len = k - message.size() - 3;
  for (std::size_t i = 0; i < ps_len; ++i) {
    std::uint8_t b = 0;
    while (b == 0) {
      rng.fill({&b, 1});
    }
    em[2 + i] = b;
  }
  em[2 + ps_len] = 0x00;
  std::copy(message.begin(), message.end(),
            em.begin() + static_cast<std::ptrdiff_t>(2 + ps_len + 1));

  const BigInt c = BigInt::from_bytes(em).mod_pow(key.e, key.n);
  return c.to_bytes(k);
}

std::optional<Bytes> rsa_decrypt(const RsaPrivateKey& key,
                                 std::span<const std::uint8_t> ciphertext) {
  const std::size_t k = key.modulus_bytes();
  if (ciphertext.size() != k || k < 11) return std::nullopt;

  const BigInt c = BigInt::from_bytes(ciphertext);
  if (c >= key.n) return std::nullopt;

  Bytes em;
  try {
    em = rsa_private_op(key, c).to_bytes(k);
  } catch (const std::length_error&) {
    return std::nullopt;
  }
  if (em[0] != 0x00 || em[1] != 0x02) return std::nullopt;

  // Find the 0x00 separator after at least 8 padding bytes.
  std::size_t sep = 0;
  for (std::size_t i = 2; i < em.size(); ++i) {
    if (em[i] == 0x00) {
      sep = i;
      break;
    }
  }
  if (sep < 10) return std::nullopt;  // fewer than 8 PS bytes or no separator
  return Bytes(em.begin() + static_cast<std::ptrdiff_t>(sep + 1), em.end());
}

}  // namespace alidrone::crypto
