#include "crypto/rsa.h"

#include <stdexcept>

#include "crypto/prime.h"
#include "crypto/sha1.h"
#include "crypto/sha256.h"

namespace alidrone::crypto {

namespace {

// DER-encoded DigestInfo prefixes (RFC 8017, section 9.2 notes).
constexpr std::uint8_t kSha1Prefix[] = {0x30, 0x21, 0x30, 0x09, 0x06,
                                        0x05, 0x2b, 0x0e, 0x03, 0x02,
                                        0x1a, 0x05, 0x00, 0x04, 0x14};
constexpr std::uint8_t kSha256Prefix[] = {0x30, 0x31, 0x30, 0x0d, 0x06, 0x09,
                                          0x60, 0x86, 0x48, 0x01, 0x65, 0x03,
                                          0x04, 0x02, 0x01, 0x05, 0x00, 0x04,
                                          0x20};

Bytes digest_info(std::span<const std::uint8_t> message, HashAlgorithm hash) {
  Bytes out;
  switch (hash) {
    case HashAlgorithm::kSha1: {
      const Sha1::Digest d = Sha1::hash(message);
      out.assign(std::begin(kSha1Prefix), std::end(kSha1Prefix));
      out.insert(out.end(), d.begin(), d.end());
      break;
    }
    case HashAlgorithm::kSha256: {
      const Sha256::Digest d = Sha256::hash(message);
      out.assign(std::begin(kSha256Prefix), std::end(kSha256Prefix));
      out.insert(out.end(), d.begin(), d.end());
      break;
    }
  }
  return out;
}

/// EMSA-PKCS1-v1_5 encoding: 0x00 0x01 FF..FF 0x00 DigestInfo.
Bytes emsa_pkcs1_encode(std::span<const std::uint8_t> message, HashAlgorithm hash,
                        std::size_t em_len) {
  const Bytes t = digest_info(message, hash);
  if (em_len < t.size() + 11) {
    throw std::length_error("RSA modulus too small for this digest");
  }
  Bytes em(em_len, 0xFF);
  em[0] = 0x00;
  em[1] = 0x01;
  em[em_len - t.size() - 1] = 0x00;
  std::copy(t.begin(), t.end(), em.end() - static_cast<std::ptrdiff_t>(t.size()));
  return em;
}

}  // namespace

std::string to_string(HashAlgorithm h) {
  switch (h) {
    case HashAlgorithm::kSha1:
      return "SHA-1";
    case HashAlgorithm::kSha256:
      return "SHA-256";
  }
  return "unknown";
}

Bytes RsaPublicKey::fingerprint() const {
  Sha256 h;
  const Bytes nb = n.to_bytes();
  const Bytes eb = e.to_bytes();
  h.update(nb);
  h.update(eb);
  const Sha256::Digest d = h.finalize();
  return Bytes(d.begin(), d.end());
}

RsaKeyPair generate_rsa_keypair(std::size_t modulus_bits, RandomSource& rng) {
  if (modulus_bits < 256 || modulus_bits % 2 != 0) {
    throw std::invalid_argument("generate_rsa_keypair: modulus must be even and >= 256 bits");
  }
  const BigInt e(65537);
  const std::size_t half = modulus_bits / 2;

  for (;;) {
    const BigInt p = generate_prime(half, rng);
    BigInt q = generate_prime(half, rng);
    if (p == q) continue;

    const BigInt n = p * q;
    if (n.bit_length() != modulus_bits) continue;

    const BigInt p1 = p - BigInt(1);
    const BigInt q1 = q - BigInt(1);
    const BigInt phi = p1 * q1;
    if (BigInt::gcd(e, phi) != BigInt(1)) continue;

    RsaKeyPair kp;
    kp.priv.n = n;
    kp.priv.e = e;
    kp.priv.d = e.mod_inverse(phi);
    // Order p > q so q_inv = q^-1 mod p is the standard CRT coefficient.
    if (p > q) {
      kp.priv.p = p;
      kp.priv.q = q;
    } else {
      kp.priv.p = q;
      kp.priv.q = p;
    }
    kp.priv.d_p = kp.priv.d % (kp.priv.p - BigInt(1));
    kp.priv.d_q = kp.priv.d % (kp.priv.q - BigInt(1));
    kp.priv.q_inv = kp.priv.q.mod_inverse(kp.priv.p);
    kp.pub = kp.priv.public_key();
    return kp;
  }
}

BigInt rsa_private_op(const RsaPrivateKey& key, const BigInt& m) {
  if (m >= key.n || m.is_negative()) {
    throw std::domain_error("rsa_private_op: message representative out of range");
  }
  if (!key.has_crt()) return m.mod_pow(key.d, key.n);

  // Garner's CRT recombination.
  const BigInt m1 = m.mod_pow(key.d_p, key.p);
  const BigInt m2 = m.mod_pow(key.d_q, key.q);
  const BigInt h = (key.q_inv * (m1 - m2)).mod(key.p);
  return m2 + key.q * h;
}

BigInt rsa_private_op_blinded(const RsaPrivateKey& key, const BigInt& m,
                              RandomSource& rng) {
  if (m >= key.n || m.is_negative()) {
    throw std::domain_error("rsa_private_op_blinded: message out of range");
  }
  // Draw r coprime to n (overwhelmingly likely on the first try; a common
  // factor with n would factor the key, so retrying is safe and rare).
  BigInt r;
  BigInt r_inv;
  for (;;) {
    r = rng.random_range(BigInt(2), key.n - BigInt(2));
    if (BigInt::gcd(r, key.n) != BigInt(1)) continue;
    r_inv = r.mod_inverse(key.n);
    break;
  }
  const BigInt blinded = (m * r.mod_pow(key.e, key.n)).mod(key.n);
  const BigInt signed_blinded = rsa_private_op(key, blinded);
  return (signed_blinded * r_inv).mod(key.n);
}

Bytes rsa_sign(const RsaPrivateKey& key, std::span<const std::uint8_t> message,
               HashAlgorithm hash) {
  const std::size_t k = key.modulus_bytes();
  const Bytes em = emsa_pkcs1_encode(message, hash, k);
  const BigInt s = rsa_private_op(key, BigInt::from_bytes(em));
  return s.to_bytes(k);
}

Bytes rsa_sign_blinded(const RsaPrivateKey& key,
                       std::span<const std::uint8_t> message, HashAlgorithm hash,
                       RandomSource& rng) {
  const std::size_t k = key.modulus_bytes();
  const Bytes em = emsa_pkcs1_encode(message, hash, k);
  const BigInt s = rsa_private_op_blinded(key, BigInt::from_bytes(em), rng);
  return s.to_bytes(k);
}

bool rsa_verify(const RsaPublicKey& key, std::span<const std::uint8_t> message,
                std::span<const std::uint8_t> signature, HashAlgorithm hash) {
  const std::size_t k = key.modulus_bytes();
  if (signature.size() != k) return false;

  const BigInt s = BigInt::from_bytes(signature);
  if (s >= key.n) return false;

  const BigInt m = s.mod_pow(key.e, key.n);
  Bytes em;
  try {
    em = m.to_bytes(k);
  } catch (const std::length_error&) {
    return false;
  }
  Bytes expected;
  try {
    expected = emsa_pkcs1_encode(message, hash, k);
  } catch (const std::length_error&) {
    return false;
  }
  return constant_time_equal(em, expected);
}

Bytes rsa_encrypt(const RsaPublicKey& key, std::span<const std::uint8_t> message,
                  RandomSource& rng) {
  const std::size_t k = key.modulus_bytes();
  if (message.size() + 11 > k) {
    throw std::length_error("rsa_encrypt: message too long for modulus");
  }
  // EME-PKCS1-v1_5: 0x00 0x02 PS 0x00 M, PS = nonzero random bytes.
  Bytes em(k, 0);
  em[1] = 0x02;
  const std::size_t ps_len = k - message.size() - 3;
  for (std::size_t i = 0; i < ps_len; ++i) {
    std::uint8_t b = 0;
    while (b == 0) {
      rng.fill({&b, 1});
    }
    em[2 + i] = b;
  }
  em[2 + ps_len] = 0x00;
  std::copy(message.begin(), message.end(),
            em.begin() + static_cast<std::ptrdiff_t>(2 + ps_len + 1));

  const BigInt c = BigInt::from_bytes(em).mod_pow(key.e, key.n);
  return c.to_bytes(k);
}

std::optional<Bytes> rsa_decrypt(const RsaPrivateKey& key,
                                 std::span<const std::uint8_t> ciphertext) {
  const std::size_t k = key.modulus_bytes();
  if (ciphertext.size() != k || k < 11) return std::nullopt;

  const BigInt c = BigInt::from_bytes(ciphertext);
  if (c >= key.n) return std::nullopt;

  Bytes em;
  try {
    em = rsa_private_op(key, c).to_bytes(k);
  } catch (const std::length_error&) {
    return std::nullopt;
  }
  if (em[0] != 0x00 || em[1] != 0x02) return std::nullopt;

  // Find the 0x00 separator after at least 8 padding bytes.
  std::size_t sep = 0;
  for (std::size_t i = 2; i < em.size(); ++i) {
    if (em[i] == 0x00) {
      sep = i;
      break;
    }
  }
  if (sep < 10) return std::nullopt;  // fewer than 8 PS bytes or no separator
  return Bytes(em.begin() + static_cast<std::ptrdiff_t>(sep + 1), em.end());
}

}  // namespace alidrone::crypto
