// In-process request/response transport between protocol parties.
//
// The paper's drone client talks to the AliDrone server over a network;
// here both run in one process, connected by a MessageBus that preserves
// the distributed-system failure modes that matter for the protocol:
// requests can be dropped (timeout) or duplicated (retry storms), a
// response can be lost after the handler ran or corrupted in transit, an
// endpoint can suffer a scheduled outage window, and all payloads cross
// the bus as serialized bytes — no object sharing between parties,
// exactly like a socket. Faults are seeded and, for scheduled windows,
// driven by the scenario's obs::Clock, so every chaos scenario replays
// bit-for-bit from (seed, schedule).
//
// Observability: transport counters live in an obs::MetricsRegistry
// (instance scope "net.bus"); with a FlightRecorder attached, every
// request and every injected fault leaves a trace event.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "crypto/bytes.h"
#include "crypto/random.h"
#include "net/transport.h"
#include "obs/clock.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace alidrone::net {

/// What a scheduled fault window does to matching requests.
enum class FaultKind : std::uint8_t {
  kOutage,           ///< request never reaches the handler; caller times out
  kResponseLoss,     ///< handler runs, its response is lost; caller times out
  kCorruptResponse,  ///< handler runs, response bytes are flipped in transit
  kLatency,          ///< response delayed; seconds advanced on the bus clock
  kStall,            ///< peer goes silent: on a socket the server parks the
                     ///< request until the window ends (the caller's deadline
                     ///< expires first); on the bus the handler runs but the
                     ///< response is lost — either way the work may have
                     ///< happened and only dedup makes the retry safe
};

std::string to_string(FaultKind kind);

/// One scripted fault: applies to `endpoint` (empty = every endpoint)
/// for bus times in [start, end). `probability` < 1 makes the fault
/// intermittent within the window (drawn from the bus's seeded stream).
struct FaultWindow {
  std::string endpoint;
  double start = 0.0;
  double end = 0.0;
  FaultKind kind = FaultKind::kOutage;
  double probability = 1.0;
  double latency_s = 0.0;  ///< kLatency: delay charged per matching request

  bool matches(const std::string& requested, double now) const {
    return (endpoint.empty() || endpoint == requested) && now >= start &&
           now < end;
  }
};

class MessageBus : public Transport {
 public:
  using Handler = Transport::Handler;

  /// Counters register under an instance scope of "net.bus" in `registry`
  /// (the process-wide registry when null).
  explicit MessageBus(obs::MetricsRegistry* registry = nullptr);

  /// Register a named endpoint; replaces any previous handler.
  void register_endpoint(const std::string& name, Handler handler) override;

  /// Send a request and wait for the response. Throws TimeoutError when
  /// fault injection drops the message (or loses the response after the
  /// handler already ran — the caller cannot tell the difference, exactly
  /// the ambiguity retries must survive), std::out_of_range for unknown
  /// endpoints. With duplication enabled, the handler may be invoked twice
  /// (the caller sees the first response) — handlers must be idempotent or
  /// defend with nonces/content dedup, which is what the protocol's zone
  /// query nonce and the Auditor's proof-digest cache are for.
  crypto::Bytes request(const std::string& endpoint,
                        const crypto::Bytes& payload) override;
  using Transport::request;  // deadline overload (synchronous: forwards)

  struct FaultConfig {
    double drop_probability = 0.0;
    double duplicate_probability = 0.0;
    std::uint64_t seed = 1;
    /// Scripted faults, evaluated in order against the bus clock.
    std::vector<FaultWindow> schedule;
  };
  void set_faults(const FaultConfig& config);

  /// The time authority the fault schedule runs on — the scenario's
  /// resilience::SimClock in every test and bench. Injected kLatency
  /// seconds advance this clock directly, so the caller's backoff
  /// deadlines and the fault windows share one timeline. Without a clock,
  /// bus time is 0 and only windows covering t=0 fire.
  void set_clock(obs::VirtualClock* clock) override { clock_ = clock; }

  /// Trace every request and injected fault into `recorder` (null stops).
  void set_trace(obs::FlightRecorder* recorder) override {
    recorder_ = recorder;
  }

  std::uint64_t requests_sent() const { return sent_->value(); }
  std::uint64_t requests_dropped() const { return dropped_->value(); }
  std::uint64_t requests_duplicated() const { return duplicated_->value(); }
  std::uint64_t responses_lost() const { return responses_lost_->value(); }
  std::uint64_t responses_corrupted() const {
    return responses_corrupted_->value();
  }
  double latency_injected_s() const { return latency_injected_s_->value(); }
  std::uint64_t bytes_transferred() const { return bytes_->value(); }

 private:
  std::map<std::string, Handler> endpoints_;
  FaultConfig faults_;
  crypto::DeterministicRandom rng_{1};
  obs::VirtualClock* clock_ = nullptr;
  obs::FlightRecorder* recorder_ = nullptr;
  // Registry-backed transport counters.
  obs::Counter* sent_;
  obs::Counter* dropped_;
  obs::Counter* duplicated_;
  obs::Counter* responses_lost_;
  obs::Counter* responses_corrupted_;
  obs::Gauge* latency_injected_s_;
  obs::Counter* bytes_;

  double bus_time() const { return clock_ != nullptr ? clock_->now() : 0.0; }
  void trace_fault(FaultKind kind, double now, const std::string& endpoint);
  void corrupt(crypto::Bytes& data);
};

}  // namespace alidrone::net
