// In-process request/response transport between protocol parties.
//
// The paper's drone client talks to the AliDrone server over a network;
// here both run in one process, connected by a MessageBus that preserves
// the distributed-system failure modes that matter for the protocol:
// requests can be dropped (timeout) or duplicated (retry storms), and all
// payloads cross the bus as serialized bytes — no object sharing between
// parties, exactly like a socket.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>

#include "crypto/bytes.h"
#include "crypto/random.h"

namespace alidrone::net {

/// Raised at the caller when a request is dropped (models a timeout).
class TimeoutError : public std::runtime_error {
 public:
  explicit TimeoutError(const std::string& endpoint)
      : std::runtime_error("request to '" + endpoint + "' timed out") {}
};

class MessageBus {
 public:
  using Handler = std::function<crypto::Bytes(const crypto::Bytes&)>;

  /// Register a named endpoint; replaces any previous handler.
  void register_endpoint(const std::string& name, Handler handler);

  /// Send a request and wait for the response. Throws TimeoutError when
  /// fault injection drops the message, std::out_of_range for unknown
  /// endpoints. With duplication enabled, the handler may be invoked twice
  /// (the caller sees the first response) — handlers must be idempotent or
  /// defend with nonces, which is exactly what the protocol's zone query
  /// nonce is for.
  crypto::Bytes request(const std::string& endpoint, const crypto::Bytes& payload);

  struct FaultConfig {
    double drop_probability = 0.0;
    double duplicate_probability = 0.0;
    std::uint64_t seed = 1;
  };
  void set_faults(const FaultConfig& config);

  std::uint64_t requests_sent() const { return sent_; }
  std::uint64_t requests_dropped() const { return dropped_; }
  std::uint64_t requests_duplicated() const { return duplicated_; }
  std::uint64_t bytes_transferred() const { return bytes_; }

 private:
  std::map<std::string, Handler> endpoints_;
  FaultConfig faults_;
  crypto::DeterministicRandom rng_{1};
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace alidrone::net
