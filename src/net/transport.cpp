#include "net/transport.h"

#include <algorithm>

namespace alidrone::net {

const crypto::Bytes& retry_later_reply() {
  static const crypto::Bytes reply = {0xB5, 'R', 'E', 'T', 'R', 'Y'};
  return reply;
}

bool is_retry_later(std::span<const std::uint8_t> response) {
  const crypto::Bytes& sentinel = retry_later_reply();
  return response.size() == sentinel.size() &&
         std::equal(response.begin(), response.end(), sentinel.begin());
}

}  // namespace alidrone::net
