// Reusable byte-buffer pool for the message codec.
//
// The Auditor's ingestion path encodes and copies one frame per message;
// at fleet scale that is thousands of short-lived heap allocations per
// second whose sizes repeat almost exactly. BufferPool keeps released
// buffers (capacity intact, contents cleared) on a bounded free list so
// steady-state frame traffic recycles capacity instead of allocating.
// Thread-safe: producers on many threads acquire, the pipeline releases.
//
// Counters live in an obs::MetricsRegistry (one instance scope per pool);
// Stats is a point-in-time view over those registry handles.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "crypto/bytes.h"
#include "obs/metrics.h"

namespace alidrone::net {

class BufferPool {
 public:
  /// At most `max_pooled` buffers are kept; extra releases are discarded
  /// (freed), which bounds the pool's resident capacity. Counters register
  /// under an instance scope of "net.buffer_pool" in `registry` (the
  /// process-wide registry when null).
  explicit BufferPool(std::size_t max_pooled = 64,
                      obs::MetricsRegistry* registry = nullptr);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// An empty buffer — pooled (previous capacity retained) when one is
  /// available, freshly constructed otherwise.
  crypto::Bytes acquire();

  /// Return a buffer to the pool. Contents are cleared; capacity is kept.
  void release(crypto::Bytes&& buffer);

  struct Stats {
    std::uint64_t acquires = 0;  ///< total acquire() calls
    std::uint64_t reuses = 0;    ///< acquires served from the free list
    std::uint64_t releases = 0;  ///< total release() calls
    std::uint64_t discards = 0;  ///< releases dropped because the pool was full
    std::size_t pooled = 0;      ///< buffers currently on the free list
  };
  Stats stats() const;

 private:
  // The mutex and the free-list head are the cross-thread hot spot: with
  // reactor workers acquiring and releasing on every connection, they get
  // their own cache line (40-byte mutex + 24-byte vector fill one 64-byte
  // line exactly) so lock traffic never false-shares with the read-mostly
  // counter handles below.
  alignas(64) mutable std::mutex mu_;
  std::vector<crypto::Bytes> free_;
  alignas(64) std::size_t max_pooled_;
  // Registry-backed counters (the one source of truth for this pool).
  obs::Counter* acquires_;
  obs::Counter* reuses_;
  obs::Counter* releases_;
  obs::Counter* discards_;
};

}  // namespace alidrone::net
