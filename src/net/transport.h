// net::Transport — the endpoint abstraction every protocol party talks
// through.
//
// A transport carries named request/response endpoints: servers
// register_endpoint() handlers, clients request() them and get the
// handler's reply bytes back. Two implementations exist:
//
//   - net::MessageBus: the in-process bus with seeded fault injection —
//     every test and chaos scenario runs on it;
//   - net::TransportClient / net::TransportServer (src/net/transport/):
//     length-prefixed CRC-framed messages over real TCP / Unix-domain
//     sockets behind an epoll reactor, for multi-process deployments
//     (examples/alidrone_auditord).
//
// Because DroneClient, ReliableChannel, Auditor::bind, AuditorIngest and
// ReplicatedAuditor are written against this interface, the same protocol
// code runs unmodified in-process and over loopback sockets.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <string>

#include "crypto/bytes.h"
#include "obs/clock.h"
#include "obs/flight_recorder.h"

namespace alidrone::net {

/// Backpressure sentinel: an overloaded endpoint returns this instead of a
/// real response to tell the caller "valid request, no capacity — retry
/// later". The first byte (0xB5) can never open a legitimate protocol
/// message (all of them start with a status byte of 0 or 1 or a u32
/// length whose low byte is small), so callers can distinguish it without
/// a length prefix. ReliableChannel treats it as retryable without
/// charging the circuit breaker (the server is alive, just busy).
const crypto::Bytes& retry_later_reply();
bool is_retry_later(std::span<const std::uint8_t> response);

/// Raised at the caller when a request (or its response) is dropped
/// (models a timeout). On a real socket this is a killed connection, a
/// reset, or a response that never arrived.
class TimeoutError : public std::runtime_error {
 public:
  explicit TimeoutError(const std::string& endpoint)
      : std::runtime_error("request to '" + endpoint + "' timed out") {}
};

/// A TimeoutError whose cause is a *deadline*: the peer accepted the
/// connection but sent no bytes back before the caller's per-attempt
/// budget ran out (hung socket, stalled read, overload). ReliableChannel
/// counts these separately (resilience.channel#N.deadline_expired) —
/// without a deadline a hung socket would block the caller forever,
/// because unlike the in-process bus nothing throws synchronously.
class DeadlineExpired : public TimeoutError {
 public:
  explicit DeadlineExpired(const std::string& endpoint)
      : TimeoutError(endpoint) {}
};

/// Request/response endpoint carrier. Implementations must preserve the
/// contract MessageBus established: request() returns the handler's reply
/// bytes, throws TimeoutError when the message (or its reply) is lost,
/// and std::out_of_range for an endpoint nobody registered. Handlers may
/// run on transport-owned threads — servers make them thread-safe.
class Transport {
 public:
  using Handler = std::function<crypto::Bytes(const crypto::Bytes&)>;

  virtual ~Transport() = default;

  /// Register a named endpoint; replaces any previous handler.
  virtual void register_endpoint(const std::string& name, Handler handler) = 0;

  /// Send a request and wait for the response (no deadline — a hung peer
  /// blocks until the transport itself gives up).
  virtual crypto::Bytes request(const std::string& endpoint,
                                const crypto::Bytes& payload) = 0;

  /// Deadline-bounded request: give up and throw DeadlineExpired after
  /// `deadline_s` seconds without a response. Synchronous transports (the
  /// in-process bus) answer before any deadline can expire, so the
  /// default forwards to the unbounded overload; socket transports wait
  /// on real time. `deadline_s` <= 0 means no deadline.
  virtual crypto::Bytes request(const std::string& endpoint,
                                const crypto::Bytes& payload,
                                double deadline_s) {
    (void)deadline_s;
    return request(endpoint, payload);
  }

  /// Adopt `clock` as the transport's time authority (fault schedules,
  /// injected latency). Transports that run on real time ignore it.
  virtual void set_clock(obs::VirtualClock* clock) { (void)clock; }

  /// Trace transport events into `recorder` (null stops). Optional.
  virtual void set_trace(obs::FlightRecorder* recorder) { (void)recorder; }
};

}  // namespace alidrone::net
