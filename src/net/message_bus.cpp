#include "net/message_bus.h"

#include <algorithm>

namespace alidrone::net {

const crypto::Bytes& retry_later_reply() {
  static const crypto::Bytes reply = {0xB5, 'R', 'E', 'T', 'R', 'Y'};
  return reply;
}

bool is_retry_later(std::span<const std::uint8_t> response) {
  const crypto::Bytes& sentinel = retry_later_reply();
  return response.size() == sentinel.size() &&
         std::equal(response.begin(), response.end(), sentinel.begin());
}

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kOutage: return "outage";
    case FaultKind::kResponseLoss: return "response-loss";
    case FaultKind::kCorruptResponse: return "corrupt-response";
    case FaultKind::kLatency: return "latency";
  }
  return "?";
}

void MessageBus::register_endpoint(const std::string& name, Handler handler) {
  endpoints_[name] = std::move(handler);
}

void MessageBus::set_faults(const FaultConfig& config) {
  faults_ = config;
  rng_ = crypto::DeterministicRandom(config.seed);
}

void MessageBus::corrupt(crypto::Bytes& data) {
  if (data.empty()) {
    data.push_back(static_cast<std::uint8_t>(rng_.uniform(256)));
    return;
  }
  const std::size_t flips = 1 + rng_.uniform(4);
  for (std::size_t i = 0; i < flips; ++i) {
    data[rng_.uniform(data.size())] ^=
        static_cast<std::uint8_t>(1u << rng_.uniform(8));
  }
}

crypto::Bytes MessageBus::request(const std::string& endpoint,
                                  const crypto::Bytes& payload) {
  const auto it = endpoints_.find(endpoint);
  if (it == endpoints_.end()) {
    throw std::out_of_range("MessageBus: unknown endpoint '" + endpoint + "'");
  }
  ++sent_;
  bytes_ += payload.size();

  // Scripted faults first (deterministic given seed + schedule + clock);
  // request-side effects fire now, response-side effects are remembered
  // and applied after the handler runs.
  bool lose_response = false;
  bool corrupt_response = false;
  double latency = 0.0;
  const double now = now_ ? now_() : 0.0;
  for (const FaultWindow& window : faults_.schedule) {
    if (!window.matches(endpoint, now)) continue;
    if (window.probability < 1.0 && rng_.uniform_double() >= window.probability) {
      continue;
    }
    switch (window.kind) {
      case FaultKind::kOutage:
        ++dropped_;
        throw TimeoutError(endpoint);
      case FaultKind::kResponseLoss:
        lose_response = true;
        break;
      case FaultKind::kCorruptResponse:
        corrupt_response = true;
        break;
      case FaultKind::kLatency:
        latency += window.latency_s;
        break;
    }
  }

  if (faults_.drop_probability > 0.0 &&
      rng_.uniform_double() < faults_.drop_probability) {
    ++dropped_;
    throw TimeoutError(endpoint);
  }

  crypto::Bytes response = it->second(payload);
  if (faults_.duplicate_probability > 0.0 &&
      rng_.uniform_double() < faults_.duplicate_probability) {
    ++duplicated_;
    it->second(payload);  // the duplicate's response is lost in transit
  }

  if (latency > 0.0) {
    latency_injected_s_ += latency;
    if (latency_sink_) latency_sink_(latency);
  }
  if (lose_response) {
    // The handler's side effects happened — only the caller is blind to
    // them. Retries of this request MUST be deduplicated by the server.
    ++responses_lost_;
    throw TimeoutError(endpoint);
  }
  if (corrupt_response) {
    ++responses_corrupted_;
    corrupt(response);
  }
  bytes_ += response.size();
  return response;
}

}  // namespace alidrone::net
