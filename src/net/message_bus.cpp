#include "net/message_bus.h"

#include <algorithm>

namespace alidrone::net {

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kOutage: return "outage";
    case FaultKind::kResponseLoss: return "response-loss";
    case FaultKind::kCorruptResponse: return "corrupt-response";
    case FaultKind::kLatency: return "latency";
    case FaultKind::kStall: return "stall";
  }
  return "?";
}

MessageBus::MessageBus(obs::MetricsRegistry* registry) {
  obs::MetricsRegistry& reg =
      registry != nullptr ? *registry : obs::MetricsRegistry::global();
  const std::string scope = reg.instance_scope("net.bus");
  sent_ = &reg.counter(scope + ".requests_sent");
  dropped_ = &reg.counter(scope + ".requests_dropped");
  duplicated_ = &reg.counter(scope + ".requests_duplicated");
  responses_lost_ = &reg.counter(scope + ".responses_lost");
  responses_corrupted_ = &reg.counter(scope + ".responses_corrupted");
  latency_injected_s_ = &reg.gauge(scope + ".latency_injected_s");
  bytes_ = &reg.counter(scope + ".bytes_transferred");
}

void MessageBus::register_endpoint(const std::string& name, Handler handler) {
  endpoints_[name] = std::move(handler);
}

void MessageBus::set_faults(const FaultConfig& config) {
  faults_ = config;
  rng_ = crypto::DeterministicRandom(config.seed);
}

void MessageBus::corrupt(crypto::Bytes& data) {
  if (data.empty()) {
    data.push_back(static_cast<std::uint8_t>(rng_.uniform(256)));
    return;
  }
  const std::size_t flips = 1 + rng_.uniform(4);
  for (std::size_t i = 0; i < flips; ++i) {
    data[rng_.uniform(data.size())] ^=
        static_cast<std::uint8_t>(1u << rng_.uniform(8));
  }
}

void MessageBus::trace_fault(FaultKind kind, double now,
                             const std::string& endpoint) {
  if (recorder_ == nullptr) return;
  recorder_->record(obs::TraceKind::kBusFault, now,
                    static_cast<std::uint64_t>(kind), 0,
                    to_string(kind) + ":" + endpoint);
}

crypto::Bytes MessageBus::request(const std::string& endpoint,
                                  const crypto::Bytes& payload) {
  const auto it = endpoints_.find(endpoint);
  if (it == endpoints_.end()) {
    throw std::out_of_range("MessageBus: unknown endpoint '" + endpoint + "'");
  }
  sent_->increment();
  bytes_->add(payload.size());

  // Scripted faults first (deterministic given seed + schedule + clock);
  // request-side effects fire now, response-side effects are remembered
  // and applied after the handler runs.
  bool lose_response = false;
  bool corrupt_response = false;
  double latency = 0.0;
  const double now = bus_time();
  if (recorder_ != nullptr) {
    recorder_->record(obs::TraceKind::kBusRequest, now, payload.size(), 0,
                      endpoint);
  }
  for (const FaultWindow& window : faults_.schedule) {
    if (!window.matches(endpoint, now)) continue;
    if (window.probability < 1.0 && rng_.uniform_double() >= window.probability) {
      continue;
    }
    trace_fault(window.kind, now, endpoint);
    switch (window.kind) {
      case FaultKind::kOutage:
        dropped_->increment();
        throw TimeoutError(endpoint);
      case FaultKind::kResponseLoss:
      case FaultKind::kStall:
        // On the synchronous bus a stalled peer is indistinguishable from
        // a lost response: the handler ran, the caller times out.
        lose_response = true;
        break;
      case FaultKind::kCorruptResponse:
        corrupt_response = true;
        break;
      case FaultKind::kLatency:
        latency += window.latency_s;
        break;
    }
  }

  if (faults_.drop_probability > 0.0 &&
      rng_.uniform_double() < faults_.drop_probability) {
    dropped_->increment();
    trace_fault(FaultKind::kOutage, now, endpoint);
    throw TimeoutError(endpoint);
  }

  crypto::Bytes response = it->second(payload);
  if (faults_.duplicate_probability > 0.0 &&
      rng_.uniform_double() < faults_.duplicate_probability) {
    duplicated_->increment();
    it->second(payload);  // the duplicate's response is lost in transit
  }

  if (latency > 0.0) {
    latency_injected_s_->add(latency);
    if (clock_ != nullptr) clock_->advance(latency);
  }
  if (lose_response) {
    // The handler's side effects happened — only the caller is blind to
    // them. Retries of this request MUST be deduplicated by the server.
    responses_lost_->increment();
    throw TimeoutError(endpoint);
  }
  if (corrupt_response) {
    responses_corrupted_->increment();
    corrupt(response);
  }
  bytes_->add(response.size());
  return response;
}

}  // namespace alidrone::net
