#include "net/message_bus.h"

namespace alidrone::net {

void MessageBus::register_endpoint(const std::string& name, Handler handler) {
  endpoints_[name] = std::move(handler);
}

void MessageBus::set_faults(const FaultConfig& config) {
  faults_ = config;
  rng_ = crypto::DeterministicRandom(config.seed);
}

crypto::Bytes MessageBus::request(const std::string& endpoint,
                                  const crypto::Bytes& payload) {
  const auto it = endpoints_.find(endpoint);
  if (it == endpoints_.end()) {
    throw std::out_of_range("MessageBus: unknown endpoint '" + endpoint + "'");
  }
  ++sent_;
  bytes_ += payload.size();

  if (faults_.drop_probability > 0.0 &&
      rng_.uniform_double() < faults_.drop_probability) {
    ++dropped_;
    throw TimeoutError(endpoint);
  }

  crypto::Bytes response = it->second(payload);
  if (faults_.duplicate_probability > 0.0 &&
      rng_.uniform_double() < faults_.duplicate_probability) {
    ++duplicated_;
    it->second(payload);  // the duplicate's response is lost in transit
  }
  bytes_ += response.size();
  return response;
}

}  // namespace alidrone::net
