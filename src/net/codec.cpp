#include "net/codec.h"

#include <bit>
#include <cstring>
#include <utility>

#include "net/buffer_pool.h"

namespace alidrone::net {

Writer::Writer(BufferPool& pool) : out_(pool.acquire()), pool_(&pool) {}

Writer::~Writer() {
  if (pool_ != nullptr && !taken_) pool_->release(std::move(out_));
}

crypto::Bytes Writer::take() && {
  taken_ = true;
  return std::move(out_);
}

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
}

void Writer::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void Writer::bytes(std::span<const std::uint8_t> data) {
  u32(static_cast<std::uint32_t>(data.size()));
  out_.insert(out_.end(), data.begin(), data.end());
}

void Writer::str(std::string_view s) {
  bytes({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
}

std::optional<std::uint8_t> Reader::u8() {
  if (remaining() < 1) return std::nullopt;
  return data_[pos_++];
}

std::optional<std::uint32_t> Reader::u32() {
  if (remaining() < 4) return std::nullopt;
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 4;
  return v;
}

std::optional<std::uint64_t> Reader::u64() {
  if (remaining() < 8) return std::nullopt;
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 8;
  return v;
}

std::optional<std::int64_t> Reader::i64() {
  const auto v = u64();
  if (!v) return std::nullopt;
  return static_cast<std::int64_t>(*v);
}

std::optional<double> Reader::f64() {
  const auto v = u64();
  if (!v) return std::nullopt;
  return std::bit_cast<double>(*v);
}

std::optional<std::span<const std::uint8_t>> Reader::bytes_view() {
  const auto len = u32();
  if (!len || remaining() < *len) return std::nullopt;
  auto view = data_.subspan(pos_, *len);
  pos_ += *len;
  return view;
}

std::optional<crypto::Bytes> Reader::bytes() {
  const auto view = bytes_view();
  if (!view) return std::nullopt;
  return crypto::Bytes(view->begin(), view->end());
}

std::optional<std::string_view> Reader::str_view() {
  const auto view = bytes_view();
  if (!view) return std::nullopt;
  return std::string_view(reinterpret_cast<const char*>(view->data()), view->size());
}

std::optional<std::string> Reader::str() {
  const auto v = str_view();
  if (!v) return std::nullopt;
  return std::string(*v);
}

}  // namespace alidrone::net
