// Binary message codec: a small, deterministic writer/reader pair used for
// every protocol message between the drone client and the AliDrone server.
//
// Encoding: little-endian fixed-width integers, IEEE-754 doubles by bit
// pattern, and length-prefixed byte strings. Readers are strict: reading
// past the end or trailing garbage are errors (a hostile peer must not be
// able to smuggle data past the parser).
//
// Two allocation disciplines coexist:
//   - owning accessors (`bytes()`, `str()`) copy out of the frame — the
//     safe default for cold paths and anything that outlives the frame;
//   - borrowing accessors (`bytes_view()`, `str_view()`) return spans into
//     the frame with identical strictness — the Auditor's ingestion path
//     decodes thousands of messages per second and must not pay a heap
//     allocation per field. Views die with the frame.
// Writers can `reserve()` the exact encoded size up front (see the
// `encoded_size_hint()` methods on the message structs) and can borrow
// their backing buffer from a BufferPool so steady-state encoding reuses
// capacity instead of allocating.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "crypto/bytes.h"

namespace alidrone::net {

class BufferPool;

class Writer {
 public:
  Writer() = default;
  /// Checks the backing buffer out of `pool` (capacity retained from its
  /// previous use). The destructor returns it unless take() was called —
  /// the taker then owns the buffer and may release() it back.
  explicit Writer(BufferPool& pool);
  ~Writer();

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  /// Pre-size the buffer for `total_bytes` of output so a whole message
  /// encodes without reallocation (size it with encoded_size_hint()).
  void reserve(std::size_t total_bytes) { out_.reserve(total_bytes); }
  std::size_t size() const { return out_.size(); }
  std::size_t capacity() const { return out_.capacity(); }

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void bytes(std::span<const std::uint8_t> data);  ///< length-prefixed
  void str(std::string_view s);

  const crypto::Bytes& data() const& { return out_; }
  crypto::Bytes take() &&;

  /// Encoded size of one length-prefixed byte/string field.
  static constexpr std::size_t field_size(std::size_t payload_len) {
    return 4 + payload_len;
  }

 private:
  crypto::Bytes out_;
  BufferPool* pool_ = nullptr;
  bool taken_ = false;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::optional<std::uint8_t> u8();
  std::optional<std::uint32_t> u32();
  std::optional<std::uint64_t> u64();
  std::optional<std::int64_t> i64();
  std::optional<double> f64();
  std::optional<crypto::Bytes> bytes();
  std::optional<std::string> str();

  /// Zero-copy variants of bytes()/str(): the same length-prefix format
  /// and strictness, but the result borrows the frame — valid only while
  /// the frame outlives the view and is not mutated.
  std::optional<std::span<const std::uint8_t>> bytes_view();
  std::optional<std::string_view> str_view();

  bool at_end() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace alidrone::net
