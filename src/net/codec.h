// Binary message codec: a small, deterministic writer/reader pair used for
// every protocol message between the drone client and the AliDrone server.
//
// Encoding: little-endian fixed-width integers, IEEE-754 doubles by bit
// pattern, and length-prefixed byte strings. Readers are strict: reading
// past the end or trailing garbage are errors (a hostile peer must not be
// able to smuggle data past the parser).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "crypto/bytes.h"

namespace alidrone::net {

class Writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void bytes(std::span<const std::uint8_t> data);  ///< length-prefixed
  void str(std::string_view s);

  const crypto::Bytes& data() const& { return out_; }
  crypto::Bytes take() && { return std::move(out_); }

 private:
  crypto::Bytes out_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::optional<std::uint8_t> u8();
  std::optional<std::uint32_t> u32();
  std::optional<std::uint64_t> u64();
  std::optional<std::int64_t> i64();
  std::optional<double> f64();
  std::optional<crypto::Bytes> bytes();
  std::optional<std::string> str();

  bool at_end() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace alidrone::net
