#include "net/buffer_pool.h"

#include <utility>

namespace alidrone::net {

crypto::Bytes BufferPool::acquire() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.acquires;
  if (free_.empty()) return {};
  ++stats_.reuses;
  crypto::Bytes out = std::move(free_.back());
  free_.pop_back();
  return out;
}

void BufferPool::release(crypto::Bytes&& buffer) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.releases;
  if (free_.size() >= max_pooled_) {
    ++stats_.discards;
    return;  // `buffer` is freed here, bounding resident capacity.
  }
  buffer.clear();  // keeps capacity
  free_.push_back(std::move(buffer));
}

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.pooled = free_.size();
  return s;
}

}  // namespace alidrone::net
