#include "net/buffer_pool.h"

#include <utility>

namespace alidrone::net {

BufferPool::BufferPool(std::size_t max_pooled, obs::MetricsRegistry* registry)
    : max_pooled_(max_pooled) {
  obs::MetricsRegistry& reg =
      registry != nullptr ? *registry : obs::MetricsRegistry::global();
  const std::string scope = reg.instance_scope("net.buffer_pool");
  acquires_ = &reg.counter(scope + ".acquires");
  reuses_ = &reg.counter(scope + ".reuses");
  releases_ = &reg.counter(scope + ".releases");
  discards_ = &reg.counter(scope + ".discards");
}

crypto::Bytes BufferPool::acquire() {
  acquires_->increment();
  std::lock_guard<std::mutex> lock(mu_);
  if (free_.empty()) return {};
  reuses_->increment();
  crypto::Bytes out = std::move(free_.back());
  free_.pop_back();
  return out;
}

void BufferPool::release(crypto::Bytes&& buffer) {
  releases_->increment();
  std::lock_guard<std::mutex> lock(mu_);
  if (free_.size() >= max_pooled_) {
    discards_->increment();
    return;  // `buffer` is freed here, bounding resident capacity.
  }
  buffer.clear();  // keeps capacity
  free_.push_back(std::move(buffer));
}

BufferPool::Stats BufferPool::stats() const {
  Stats s;
  s.acquires = acquires_->value();
  s.reuses = reuses_->value();
  s.releases = releases_->value();
  s.discards = discards_->value();
  std::lock_guard<std::mutex> lock(mu_);
  s.pooled = free_.size();
  return s;
}

}  // namespace alidrone::net
