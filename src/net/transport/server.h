// TransportServer — the socket-side implementation of net::Transport.
//
// Topology: one acceptor thread polls the listen sockets (any mix of
// "tcp:..." and "uds:..." addresses) and deals each accepted connection
// to one of N worker EventLoops round-robin. Workers parse frames with
// pooled buffers, run endpoint handlers inline, and write framed
// responses back — the same request/response contract MessageBus
// implements in-process, so an Auditor binds its endpoints to either
// without knowing which.
//
// TransportServer also *implements* request(): a direct local dispatch
// to its own endpoint table. That is the in-process loopback a
// ReplicatedAuditor inside the daemon uses to talk to its peers without
// a socket round-trip.
//
// Chaos: the same net::FaultWindow schedule the bus interprets, but with
// real-transport teeth — kOutage kills the connection before the handler
// runs, kStall parks the finished response until the window closes (the
// caller's deadline expires first), kLatency delays it, kResponseLoss
// discards it, kCorruptResponse bit-flips the body before framing (the
// frame CRC covers the corrupted bytes, so the client sees a valid frame
// carrying a corrupt payload — exactly the bus's semantics). The window
// clock defaults to a SteadyClock born with the server; set_clock()
// substitutes a scenario clock.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "crypto/bytes.h"
#include "crypto/random.h"
#include "net/buffer_pool.h"
#include "net/message_bus.h"
#include "net/transport.h"
#include "net/transport/reactor.h"
#include "obs/clock.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace alidrone::net::transport {

/// Scripted faults for the socket path: the bus's FaultWindow schedule,
/// drawn from one seeded stream (probability < 1 windows only).
struct ChaosConfig {
  std::uint64_t seed = 1;
  std::vector<FaultWindow> schedule;
};

class TransportServer : public Transport {
 public:
  struct Config {
    /// Listen addresses ("tcp:host:port", "uds:path"); "tcp:host:0"
    /// binds an ephemeral port — read it back via bound_addresses().
    std::vector<std::string> listen;
    std::size_t workers = 2;
    std::size_t pool_buffers = 256;  ///< BufferPool free-list bound
    obs::MetricsRegistry* registry = nullptr;
  };

  explicit TransportServer(Config config);
  ~TransportServer() override;

  // -- lifecycle ---------------------------------------------------------
  /// Bind, listen, spin up workers + acceptor. Throws on bind failure.
  void start();
  /// Graceful drain: stop accepting, let in-flight requests finish and
  /// flush, close everything. Idempotent; the destructor calls it.
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Canonical bound addresses, ephemeral ports resolved. Valid after
  /// start().
  std::vector<std::string> bound_addresses() const { return bound_; }

  // -- Transport ---------------------------------------------------------
  void register_endpoint(const std::string& name, Handler handler) override;
  /// Local loopback dispatch straight into the endpoint table (no socket,
  /// no chaos). Throws std::out_of_range on unknown endpoints.
  crypto::Bytes request(const std::string& endpoint,
                        const crypto::Bytes& payload) override;
  using Transport::request;

  /// Chaos-window time authority (must be set before start()).
  void set_clock(obs::VirtualClock* clock) override {
    clock_ = clock != nullptr ? static_cast<const obs::Clock*>(clock)
                              : &steady_;
  }
  /// Trace connections + chaos (must be set before start()).
  void set_trace(obs::FlightRecorder* recorder) override {
    recorder_ = recorder;
  }

  /// Install the fault schedule (before start()).
  void set_faults(const ChaosConfig& chaos);

  // -- stats -------------------------------------------------------------
  struct Stats {
    std::uint64_t conns_opened = 0;
    std::uint64_t conns_closed = 0;
    std::uint64_t frames_in = 0;
    std::uint64_t frames_out = 0;
    std::uint64_t torn_frames = 0;
    std::uint64_t protocol_errors = 0;
    std::uint64_t requests_handled = 0;
    std::uint64_t unknown_endpoints = 0;
    std::uint64_t chaos_kills = 0;
    std::uint64_t chaos_drops = 0;
    std::uint64_t chaos_corruptions = 0;
    std::uint64_t chaos_delays = 0;
    std::uint64_t chaos_stalls = 0;
  };
  Stats stats() const;

  BufferPool& buffer_pool() { return pool_; }

 private:
  DispatchResult dispatch(const RequestEnvelope& request,
                          const crypto::Bytes& body);
  void accept_loop();
  void trace_chaos(FaultKind kind, double now, std::string_view endpoint);

  Config config_;
  obs::SteadyClock steady_;
  const obs::Clock* clock_ = nullptr;
  obs::FlightRecorder* recorder_ = nullptr;
  BufferPool pool_;

  mutable std::shared_mutex endpoints_mu_;
  std::map<std::string, Handler> endpoints_;

  ChaosConfig chaos_;
  std::mutex rng_mu_;  ///< probabilistic windows + corruption draws
  crypto::DeterministicRandom rng_{1};

  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::vector<int> listen_fds_;
  std::vector<std::string> bound_;
  std::thread acceptor_;
  int acceptor_wake_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<std::size_t> next_loop_{0};

  // Registry-backed counters shared by every worker.
  obs::Counter* conns_opened_;
  obs::Counter* conns_closed_;
  obs::Counter* frames_in_;
  obs::Counter* frames_out_;
  obs::Counter* torn_frames_;
  obs::Counter* protocol_errors_;
  obs::Counter* requests_handled_;
  obs::Counter* unknown_endpoints_;
  obs::Counter* chaos_kills_;
  obs::Counter* chaos_drops_;
  obs::Counter* chaos_corruptions_;
  obs::Counter* chaos_delays_;
  obs::Counter* chaos_stalls_;
};

}  // namespace alidrone::net::transport
