// Wire framing for the socket transport.
//
// A TCP or Unix-domain stream has no message boundaries, so every
// transport message travels as one frame:
//
//   u32 payload_len (LE) | u32 crc32(payload) (LE) | payload
//
// The CRC is not a security boundary (the protocol's signatures are) — it
// catches torn or corrupted frames at the transport layer so a damaged
// stream is rejected with an exact, testable error instead of feeding
// garbage into the protocol parsers. Inside the payload, an envelope
// multiplexes request/response messages with correlation ids:
//
//   request  := 0x01 | u64 correlation_id | u32 endpoint_len | endpoint | body
//   response := 0x02 | u64 correlation_id | u8 status          | body
//
// status: 0 = ok (body is the handler's reply), 1 = unknown endpoint
// (body empty; the caller surfaces std::out_of_range, matching the
// in-process bus).
//
// FrameAssembler is the incremental parser both the reactor and the
// client reader use: feed it whatever chunk sizes the socket produces —
// a frame split at every byte boundary reassembles identically — and it
// yields complete payload spans *borrowing its internal buffer*, so the
// zero-copy decode_view path runs straight off the wire. The buffer is
// checked out of a net::BufferPool; steady-state traffic recycles its
// capacity instead of allocating.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>

#include "crypto/bytes.h"
#include "ledger/crc32.h"
#include "net/buffer_pool.h"

namespace alidrone::net::transport {

/// Hard ceiling on one frame's payload. Bigger lengths are rejected
/// before any buffering, so a hostile or corrupted length prefix cannot
/// make the peer allocate unbounded memory.
inline constexpr std::size_t kMaxFramePayload = 16u * 1024u * 1024u;

inline constexpr std::size_t kFrameHeaderBytes = 8;

/// Envelope type bytes (first payload byte).
inline constexpr std::uint8_t kEnvelopeRequest = 0x01;
inline constexpr std::uint8_t kEnvelopeResponse = 0x02;

/// Response status bytes.
inline constexpr std::uint8_t kStatusOk = 0;
inline constexpr std::uint8_t kStatusUnknownEndpoint = 1;
/// Handler threw; body carries what() and the client rethrows it as a
/// std::runtime_error (the bus propagates handler exceptions in-process).
inline constexpr std::uint8_t kStatusHandlerError = 2;

// ---- encoding ----------------------------------------------------------

/// Append one framed request to `out`: header + request envelope.
void append_request_frame(crypto::Bytes& out, std::uint64_t correlation_id,
                          std::string_view endpoint,
                          std::span<const std::uint8_t> body);

/// Append one framed response to `out`: header + response envelope.
void append_response_frame(crypto::Bytes& out, std::uint64_t correlation_id,
                           std::uint8_t status,
                           std::span<const std::uint8_t> body);

// ---- decoding ----------------------------------------------------------

/// A request envelope parsed out of a frame payload. Views borrow the
/// frame (valid until the assembler consumes the next chunk).
struct RequestEnvelope {
  std::uint64_t correlation_id = 0;
  std::string_view endpoint;
  std::span<const std::uint8_t> body;
};

/// A response envelope parsed out of a frame payload (body borrows).
struct ResponseEnvelope {
  std::uint64_t correlation_id = 0;
  std::uint8_t status = kStatusOk;
  std::span<const std::uint8_t> body;
};

/// Parse one envelope; returns "" on success or the exact reject string
/// ("envelope: truncated", "envelope: unknown type",
/// "envelope: bad endpoint length").
std::string parse_request(std::span<const std::uint8_t> payload,
                          RequestEnvelope& out);
std::string parse_response(std::span<const std::uint8_t> payload,
                           ResponseEnvelope& out);

/// Incremental frame reassembly. Not thread-safe: one assembler per
/// connection, driven by that connection's reader.
class FrameAssembler {
 public:
  /// The internal accumulation buffer is checked out of `pool` (capacity
  /// retained from its previous use) and returned on destruction; without
  /// a pool it is plain heap memory.
  explicit FrameAssembler(BufferPool* pool = nullptr);
  ~FrameAssembler();

  FrameAssembler(const FrameAssembler&) = delete;
  FrameAssembler& operator=(const FrameAssembler&) = delete;

  /// Feed `chunk` (any size, any split) and invoke
  /// `on_frame(std::span<const std::uint8_t> payload)` for every complete
  /// frame, in order. `on_frame` returns an error string ("" = keep
  /// going); the payload span borrows the assembler and dies with the
  /// call. Returns "" or the first error — the assembler's own exact
  /// strings are "frame: oversized length" and "frame: bad crc". After an
  /// error the assembler is poisoned: every further absorb() returns the
  /// same error (the stream is unrecoverable once framing is lost).
  template <typename OnFrame>
  std::string absorb(std::span<const std::uint8_t> chunk, OnFrame&& on_frame) {
    if (!error_.empty()) return error_;
    buf_.insert(buf_.end(), chunk.begin(), chunk.end());
    return parse_buffered(on_frame);
  }

  /// Zero-copy ingest path for the reactor: writable(n) grows the buffer
  /// and returns the n-byte tail for recv() to land in; commit(n) shrinks
  /// to the bytes actually read and parses. Reads go straight into the
  /// pooled buffer — no intermediate chunk copy.
  std::span<std::uint8_t> writable(std::size_t chunk) {
    const std::size_t used = buf_.size();
    buf_.resize(used + chunk);
    return {buf_.data() + used, chunk};
  }

  template <typename OnFrame>
  std::string commit(std::size_t written, std::size_t chunk,
                     OnFrame&& on_frame) {
    buf_.resize(buf_.size() - (chunk - written));
    if (!error_.empty()) return error_;
    return parse_buffered(on_frame);
  }

  /// True while bytes of an incomplete frame are buffered — an EOF here
  /// is a torn frame (the peer died mid-message).
  bool mid_frame() const { return !buf_.empty(); }
  std::size_t buffered() const { return buf_.size(); }
  std::uint64_t frames() const { return frames_; }
  const std::string& error() const { return error_; }

 private:
  template <typename OnFrame>
  std::string parse_buffered(OnFrame&& on_frame) {
    std::size_t pos = 0;
    while (buf_.size() - pos >= kFrameHeaderBytes) {
      std::uint32_t len = 0;
      std::uint32_t crc = 0;
      std::memcpy(&len, buf_.data() + pos, 4);
      std::memcpy(&crc, buf_.data() + pos + 4, 4);
      if (len > kMaxFramePayload) {
        error_ = "frame: oversized length";
        break;
      }
      if (buf_.size() - pos - kFrameHeaderBytes < len) break;  // incomplete
      const std::span<const std::uint8_t> payload(
          buf_.data() + pos + kFrameHeaderBytes, len);
      if (ledger::crc32(payload) != crc) {
        error_ = "frame: bad crc";
        break;
      }
      ++frames_;
      error_ = on_frame(payload);
      pos += kFrameHeaderBytes + len;
      if (!error_.empty()) break;
    }
    // Compact: move the incomplete tail to the front so the buffer never
    // grows past one frame + one chunk (capacity then recycles).
    if (pos > 0) buf_.erase(buf_.begin(), buf_.begin() + pos);
    return error_;
  }

  crypto::Bytes buf_;
  BufferPool* pool_;
  std::uint64_t frames_ = 0;
  std::string error_;
};

}  // namespace alidrone::net::transport
