// TransportClient — the caller-side net::Transport over a socket.
//
// A client owns a small pool of connections to one server address.
// Requests pick a channel round-robin and multiplex on it: each request
// carries a fresh correlation id, a per-channel reader thread demuxes
// response frames back to the waiting callers, so many threads share a
// few sockets without head-of-line blocking on the wire.
//
// Failure semantics mirror the in-process bus so ReliableChannel's retry
// logic transfers unchanged:
//   - connection refused / reset / torn mid-request  -> TimeoutError
//     (the caller cannot know whether the handler ran — the dedup-or-die
//     ambiguity the protocol already defends against)
//   - per-attempt deadline elapsed with the socket hung -> DeadlineExpired
//     (a TimeoutError subclass; ReliableChannel counts it separately)
//   - server answered "unknown endpoint"              -> std::out_of_range
// Channels reconnect lazily on the next request after a death.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "crypto/bytes.h"
#include "net/buffer_pool.h"
#include "net/transport.h"
#include "obs/metrics.h"

namespace alidrone::net::transport {

class TransportClient : public Transport {
 public:
  struct Config {
    std::string address;         ///< "tcp:host:port" or "uds:path"
    std::size_t connections = 1; ///< pool size (multiplexed channels)
    double connect_timeout_s = 5.0;
    /// Deadline applied by the 2-arg request(); 0 = wait forever.
    double default_deadline_s = 0.0;
    obs::MetricsRegistry* registry = nullptr;
  };

  explicit TransportClient(Config config);
  ~TransportClient() override;

  TransportClient(const TransportClient&) = delete;
  TransportClient& operator=(const TransportClient&) = delete;

  /// Clients have no server side.
  void register_endpoint(const std::string& name, Handler handler) override;

  crypto::Bytes request(const std::string& endpoint,
                        const crypto::Bytes& payload) override;
  crypto::Bytes request(const std::string& endpoint,
                        const crypto::Bytes& payload,
                        double deadline_s) override;

  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t connects = 0;   ///< successful (re)connections
    std::uint64_t resets = 0;     ///< requests failed by a dead connection
    std::uint64_t deadline_expired = 0;
  };
  Stats stats() const;

 private:
  struct Pending {
    bool done = false;
    bool failed = false;  ///< connection died before the response
    std::uint8_t status = 0;
    crypto::Bytes body;
  };
  struct Channel {
    std::mutex conn_mu;  ///< serialized (re)connects and socket writes
    std::mutex mu;       ///< guards everything below
    std::condition_variable cv;
    int fd = -1;
    bool dead = true;
    std::thread reader;
    std::map<std::uint64_t, Pending> pending;
  };

  /// Throws std::runtime_error when the server is unreachable.
  void ensure_connected(Channel& channel);
  void reader_loop(Channel& channel);
  /// False on any write error (channel marked dead, waiters failed).
  bool write_frame(Channel& channel, const crypto::Bytes& frame);
  void fail_channel(Channel& channel);

  Config config_;
  BufferPool pool_;
  std::vector<std::unique_ptr<Channel>> channels_;
  std::atomic<std::uint64_t> next_channel_{0};
  std::atomic<std::uint64_t> next_correlation_{1};
  std::atomic<bool> closing_{false};

  obs::Counter* requests_;
  obs::Counter* connects_;
  obs::Counter* resets_;
  obs::Counter* deadline_expired_;
};

}  // namespace alidrone::net::transport
