#include "net/transport/reactor.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace alidrone::net::transport {

namespace {

/// recv() chunk size. One frame of typical submission size (~hundreds of
/// bytes) plus headroom; large frames just take several edges.
constexpr std::size_t kReadChunk = 16 * 1024;

/// Internal absorb() sentinel: the dispatch asked for a connection kill.
/// It rides the assembler's error channel (which also stops parsing any
/// frames queued behind the killed request — they die with the socket)
/// but is not a protocol error.
const char kChaosKill[] = "chaos: kill";

constexpr int kIdleTimeoutMs = 50;

}  // namespace

EventLoop::EventLoop(std::size_t index, BufferPool* pool, Dispatch dispatch,
                     Counters counters, const obs::Clock* clock,
                     obs::FlightRecorder* recorder)
    : index_(index),
      pool_(pool),
      dispatch_(std::move(dispatch)),
      counters_(counters),
      clock_(clock),
      recorder_(recorder) {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    throw std::runtime_error("transport: epoll/eventfd setup failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = 0;  // reserved id for the wake eventfd
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
}

EventLoop::~EventLoop() {
  stop();
  if (wake_fd_ >= 0) close(wake_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
}

void EventLoop::start() {
  if (thread_.joinable()) return;
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { run(); });
}

void EventLoop::stop(double drain_deadline_s) {
  if (!thread_.joinable()) return;
  drain_deadline_s_ = drain_deadline_s;
  stop_.store(true, std::memory_order_release);
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = write(wake_fd_, &one, sizeof(one));
  thread_.join();
}

void EventLoop::adopt(int fd) {
  {
    std::lock_guard<std::mutex> lock(inbox_mu_);
    inbox_.push_back(fd);
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = write(wake_fd_, &one, sizeof(one));
}

void EventLoop::drain_inbox() {
  std::vector<int> fds;
  {
    std::lock_guard<std::mutex> lock(inbox_mu_);
    fds.swap(inbox_);
  }
  for (const int fd : fds) {
    if (stop_.load(std::memory_order_acquire)) {
      close(fd);
      continue;
    }
    const std::uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Conn>(fd, pool_);
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLET;
    ev.data.u64 = id;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      close(fd);
      continue;
    }
    counters_.conns_opened->increment();
    if (recorder_ != nullptr) {
      recorder_->record(obs::TraceKind::kTransportConn, clock_->now(), 1,
                        index_, "");
    }
    Conn& ref = *conn;
    conns_.emplace(id, std::move(conn));
    // Edge-triggered: data that raced the EPOLL_CTL_ADD may never edge
    // again, so always attempt the first read eagerly.
    handle_readable(id, ref);
  }
}

void EventLoop::update_interest(std::uint64_t id, Conn& conn, bool want_write) {
  if (conn.want_write == want_write) return;
  conn.want_write = want_write;
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLET | (want_write ? EPOLLOUT : 0u);
  ev.data.u64 = id;
  epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void EventLoop::close_conn(std::uint64_t id, Conn& conn, bool torn) {
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
  close(conn.fd);
  counters_.conns_closed->increment();
  if (torn) counters_.torn_frames->increment();
  if (recorder_ != nullptr) {
    recorder_->record(obs::TraceKind::kTransportConn, clock_->now(), 0, index_,
                      torn ? "torn" : "");
  }
  conns_.erase(id);
}

bool EventLoop::flush(std::uint64_t id, Conn& conn) {
  while (conn.out_off < conn.out.size()) {
    const ssize_t n =
        send(conn.fd, conn.out.data() + conn.out_off,
             conn.out.size() - conn.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      update_interest(id, conn, true);
      return true;
    }
    close_conn(id, conn, false);  // peer reset mid-write
    return false;
  }
  conn.out.clear();  // capacity retained for the next response
  conn.out_off = 0;
  update_interest(id, conn, false);
  return true;
}

void EventLoop::handle_readable(std::uint64_t id, Conn& conn) {
  for (;;) {
    const std::span<std::uint8_t> dst = conn.in.writable(kReadChunk);
    const ssize_t n = recv(conn.fd, dst.data(), dst.size(), 0);
    if (n < 0 && errno == EINTR) {
      conn.in.commit(0, kReadChunk, [](std::span<const std::uint8_t>) {
        return std::string();
      });
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      conn.in.commit(0, kReadChunk, [](std::span<const std::uint8_t>) {
        return std::string();
      });
      return;
    }
    if (n <= 0) {  // EOF or hard error
      conn.in.commit(0, kReadChunk, [](std::span<const std::uint8_t>) {
        return std::string();
      });
      close_conn(id, conn, conn.in.mid_frame());
      return;
    }

    const std::string err = conn.in.commit(
        static_cast<std::size_t>(n), kReadChunk,
        [&](std::span<const std::uint8_t> payload) -> std::string {
          counters_.frames_in->increment();
          RequestEnvelope req;
          const std::string perr = parse_request(payload, req);
          if (!perr.empty()) return perr;
          // Stage the body in the pooled scratch so the handler sees a
          // crypto::Bytes without a fresh allocation per request.
          conn.scratch.assign(req.body.begin(), req.body.end());
          DispatchResult result = dispatch_(req, conn.scratch);
          switch (result.action) {
            case DispatchResult::Action::kKill:
              return kChaosKill;
            case DispatchResult::Action::kDrop:
              return std::string();
            case DispatchResult::Action::kDelay:
              timers_.push(Timer{clock_->now() + result.delay_s, id,
                                 req.correlation_id, result.status,
                                 std::move(result.body)});
              return std::string();
            case DispatchResult::Action::kRespond:
              append_response_frame(conn.out, req.correlation_id,
                                    result.status, result.body);
              counters_.frames_out->increment();
              return std::string();
          }
          return std::string();
        });
    if (!err.empty()) {
      if (err != kChaosKill) counters_.protocol_errors->increment();
      close_conn(id, conn, false);
      return;
    }
    if (!flush(id, conn)) return;  // conn died mid-write
  }
}

void EventLoop::fire_due_timers() {
  const double now = clock_->now();
  while (!timers_.empty() && timers_.top().due <= now) {
    Timer timer = timers_.top();
    timers_.pop();
    const auto it = conns_.find(timer.conn_id);
    if (it == conns_.end()) continue;  // connection died while parked
    Conn& conn = *it->second;
    append_response_frame(conn.out, timer.correlation_id, timer.status,
                          timer.body);
    counters_.frames_out->increment();
    flush(timer.conn_id, conn);
  }
}

int EventLoop::next_timeout_ms() const {
  if (timers_.empty()) return kIdleTimeoutMs;
  const double wait_s = timers_.top().due - clock_->now();
  if (wait_s <= 0.0) return 0;
  return std::min(kIdleTimeoutMs,
                  static_cast<int>(wait_s * 1000.0) + 1);
}

void EventLoop::run() {
  epoll_event events[64];
  obs::SteadyClock drain_clock;
  double drain_started = -1.0;
  for (;;) {
    const int n =
        epoll_wait(epoll_fd_, events, 64, next_timeout_ms());
    for (int i = 0; i < n; ++i) {
      const std::uint64_t id = events[i].data.u64;
      if (id == 0) {
        std::uint64_t drained = 0;
        [[maybe_unused]] ssize_t r =
            read(wake_fd_, &drained, sizeof(drained));
        continue;
      }
      const auto it = conns_.find(id);
      if (it == conns_.end()) continue;  // closed earlier this batch
      Conn& conn = *it->second;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0 &&
          (events[i].events & EPOLLIN) == 0) {
        close_conn(id, conn, conn.in.mid_frame());
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) {
        if (!flush(id, conn)) continue;
      }
      if ((events[i].events & EPOLLIN) != 0) {
        handle_readable(id, conn);
      }
    }
    drain_inbox();
    fire_due_timers();

    if (stop_.load(std::memory_order_acquire)) {
      if (drain_started < 0.0) drain_started = drain_clock.now();
      // Drain: flush what is pending, then close. Parked chaos timers are
      // abandoned (their callers' deadlines expired long ago).
      bool pending = false;
      for (auto it = conns_.begin(); it != conns_.end();) {
        const std::uint64_t id = it->first;
        Conn& conn = *it->second;
        ++it;  // flush/close may erase
        if (conn.out_off >= conn.out.size()) {
          close_conn(id, conn, false);
        } else if (flush(id, conn) && conn.out_off < conn.out.size()) {
          pending = true;
        }
      }
      if (!pending || drain_clock.now() - drain_started > drain_deadline_s_) {
        for (auto it = conns_.begin(); it != conns_.end();) {
          const std::uint64_t id = it->first;
          Conn& conn = *it->second;
          ++it;
          close_conn(id, conn, false);
        }
        break;
      }
    }
  }
}

}  // namespace alidrone::net::transport
