#include "net/transport/frame.h"

namespace alidrone::net::transport {

namespace {

void append_u32(crypto::Bytes& out, std::uint32_t v) {
  const std::size_t at = out.size();
  out.resize(at + 4);
  std::memcpy(out.data() + at, &v, 4);
}

void append_u64(crypto::Bytes& out, std::uint64_t v) {
  const std::size_t at = out.size();
  out.resize(at + 8);
  std::memcpy(out.data() + at, &v, 8);
}

std::uint64_t read_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  std::memcpy(&v, p, 8);
  return v;
}

std::uint32_t read_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  std::memcpy(&v, p, 4);
  return v;
}

/// Patch the header in after the payload is written: the frame was
/// appended as [8 zero bytes][payload], so one pass computes length and
/// CRC without a scratch copy of the payload.
void finish_frame(crypto::Bytes& out, std::size_t header_at) {
  const std::size_t payload_len = out.size() - header_at - kFrameHeaderBytes;
  const std::uint32_t len = static_cast<std::uint32_t>(payload_len);
  const std::uint32_t crc = ledger::crc32(
      {out.data() + header_at + kFrameHeaderBytes, payload_len});
  std::memcpy(out.data() + header_at, &len, 4);
  std::memcpy(out.data() + header_at + 4, &crc, 4);
}

}  // namespace

void append_request_frame(crypto::Bytes& out, std::uint64_t correlation_id,
                          std::string_view endpoint,
                          std::span<const std::uint8_t> body) {
  const std::size_t header_at = out.size();
  out.reserve(out.size() + kFrameHeaderBytes + 13 + endpoint.size() +
              body.size());
  out.resize(out.size() + kFrameHeaderBytes);  // header patched below
  out.push_back(kEnvelopeRequest);
  append_u64(out, correlation_id);
  append_u32(out, static_cast<std::uint32_t>(endpoint.size()));
  out.insert(out.end(), endpoint.begin(), endpoint.end());
  out.insert(out.end(), body.begin(), body.end());
  finish_frame(out, header_at);
}

void append_response_frame(crypto::Bytes& out, std::uint64_t correlation_id,
                           std::uint8_t status,
                           std::span<const std::uint8_t> body) {
  const std::size_t header_at = out.size();
  out.reserve(out.size() + kFrameHeaderBytes + 10 + body.size());
  out.resize(out.size() + kFrameHeaderBytes);
  out.push_back(kEnvelopeResponse);
  append_u64(out, correlation_id);
  out.push_back(status);
  out.insert(out.end(), body.begin(), body.end());
  finish_frame(out, header_at);
}

std::string parse_request(std::span<const std::uint8_t> payload,
                          RequestEnvelope& out) {
  if (payload.size() < 13) return "envelope: truncated";
  if (payload[0] != kEnvelopeRequest) return "envelope: unknown type";
  out.correlation_id = read_u64(payload.data() + 1);
  const std::uint32_t endpoint_len = read_u32(payload.data() + 9);
  if (payload.size() - 13 < endpoint_len) {
    return "envelope: bad endpoint length";
  }
  out.endpoint = std::string_view(
      reinterpret_cast<const char*>(payload.data() + 13), endpoint_len);
  out.body = payload.subspan(13 + endpoint_len);
  return "";
}

std::string parse_response(std::span<const std::uint8_t> payload,
                           ResponseEnvelope& out) {
  if (payload.size() < 10) return "envelope: truncated";
  if (payload[0] != kEnvelopeResponse) return "envelope: unknown type";
  out.correlation_id = read_u64(payload.data() + 1);
  out.status = payload[9];
  out.body = payload.subspan(10);
  return "";
}

FrameAssembler::FrameAssembler(BufferPool* pool) : pool_(pool) {
  if (pool_ != nullptr) buf_ = pool_->acquire();
}

FrameAssembler::~FrameAssembler() {
  if (pool_ != nullptr) pool_->release(std::move(buf_));
}

}  // namespace alidrone::net::transport
