#include "net/transport/server.h"

#include <poll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <stdexcept>

#include "net/transport/sockets.h"

namespace alidrone::net::transport {

TransportServer::TransportServer(Config config)
    : config_(std::move(config)),
      clock_(&steady_),
      pool_(config_.pool_buffers, config_.registry) {
  obs::MetricsRegistry& reg = config_.registry != nullptr
                                  ? *config_.registry
                                  : obs::MetricsRegistry::global();
  const std::string scope = reg.instance_scope("net.transport.server");
  conns_opened_ = &reg.counter(scope + ".conns_opened");
  conns_closed_ = &reg.counter(scope + ".conns_closed");
  frames_in_ = &reg.counter(scope + ".frames_in");
  frames_out_ = &reg.counter(scope + ".frames_out");
  torn_frames_ = &reg.counter(scope + ".torn_frames");
  protocol_errors_ = &reg.counter(scope + ".protocol_errors");
  requests_handled_ = &reg.counter(scope + ".requests_handled");
  unknown_endpoints_ = &reg.counter(scope + ".unknown_endpoints");
  chaos_kills_ = &reg.counter(scope + ".chaos_kills");
  chaos_drops_ = &reg.counter(scope + ".chaos_drops");
  chaos_corruptions_ = &reg.counter(scope + ".chaos_corruptions");
  chaos_delays_ = &reg.counter(scope + ".chaos_delays");
  chaos_stalls_ = &reg.counter(scope + ".chaos_stalls");
}

TransportServer::~TransportServer() { stop(); }

void TransportServer::set_faults(const ChaosConfig& chaos) {
  chaos_ = chaos;
  rng_ = crypto::DeterministicRandom(chaos.seed);
}

void TransportServer::register_endpoint(const std::string& name,
                                        Handler handler) {
  std::unique_lock lock(endpoints_mu_);
  endpoints_[name] = std::move(handler);
}

crypto::Bytes TransportServer::request(const std::string& endpoint,
                                       const crypto::Bytes& payload) {
  Handler handler;
  {
    std::shared_lock lock(endpoints_mu_);
    const auto it = endpoints_.find(endpoint);
    if (it == endpoints_.end()) {
      throw std::out_of_range("TransportServer: unknown endpoint '" +
                              endpoint + "'");
    }
    handler = it->second;
  }
  return handler(payload);
}

void TransportServer::trace_chaos(FaultKind kind, double now,
                                  std::string_view endpoint) {
  if (recorder_ == nullptr) return;
  recorder_->record(obs::TraceKind::kTransportChaos, now,
                    static_cast<std::uint64_t>(kind), 0,
                    to_string(kind) + ":" + std::string(endpoint));
}

DispatchResult TransportServer::dispatch(const RequestEnvelope& request,
                                         const crypto::Bytes& body) {
  DispatchResult out;
  const std::string endpoint(request.endpoint);
  const double now = clock_->now();

  bool lose_response = false;
  bool corrupt_response = false;
  double delay = 0.0;
  for (const FaultWindow& window : chaos_.schedule) {
    if (!window.matches(endpoint, now)) continue;
    if (window.probability < 1.0) {
      std::lock_guard<std::mutex> lock(rng_mu_);
      if (rng_.uniform_double() >= window.probability) continue;
    }
    trace_chaos(window.kind, now, endpoint);
    switch (window.kind) {
      case FaultKind::kOutage:
        // The request never reaches the handler — and on a real socket
        // "never reaches" means the connection dies under the caller.
        chaos_kills_->increment();
        out.action = DispatchResult::Action::kKill;
        return out;
      case FaultKind::kResponseLoss:
        chaos_drops_->increment();
        lose_response = true;
        break;
      case FaultKind::kCorruptResponse:
        chaos_corruptions_->increment();
        corrupt_response = true;
        break;
      case FaultKind::kLatency:
        chaos_delays_->increment();
        delay += window.latency_s;
        break;
      case FaultKind::kStall:
        // Peer goes silent: the handler runs (work happens server-side)
        // but the response is parked until the window closes. The
        // caller's deadline fires first; its retry must hit dedup.
        chaos_stalls_->increment();
        delay = std::max(delay, window.end - now);
        break;
    }
  }

  Handler handler;
  {
    std::shared_lock lock(endpoints_mu_);
    const auto it = endpoints_.find(endpoint);
    if (it != endpoints_.end()) handler = it->second;
  }
  if (!handler) {
    unknown_endpoints_->increment();
    out.status = kStatusUnknownEndpoint;
    return out;
  }

  requests_handled_->increment();
  try {
    out.body = handler(body);
  } catch (const std::exception& e) {
    out.status = kStatusHandlerError;
    const std::string_view what(e.what());
    out.body.assign(what.begin(), what.end());
  }

  if (lose_response) {
    out.action = DispatchResult::Action::kDrop;
    return out;
  }
  if (corrupt_response) {
    std::lock_guard<std::mutex> lock(rng_mu_);
    if (out.body.empty()) {
      out.body.push_back(static_cast<std::uint8_t>(rng_.uniform(256)));
    } else {
      const std::size_t flips = 1 + rng_.uniform(4);
      for (std::size_t i = 0; i < flips; ++i) {
        out.body[rng_.uniform(out.body.size())] ^=
            static_cast<std::uint8_t>(1u << rng_.uniform(8));
      }
    }
  }
  if (delay > 0.0) {
    out.action = DispatchResult::Action::kDelay;
    out.delay_s = delay;
  }
  return out;
}

void TransportServer::start() {
  if (running_.load(std::memory_order_acquire)) return;
  if (config_.listen.empty()) {
    throw std::invalid_argument("TransportServer: no listen addresses");
  }

  listen_fds_.clear();
  bound_.clear();
  for (const std::string& address : config_.listen) {
    const int fd = listen_socket(address);
    listen_fds_.push_back(fd);
    bound_.push_back(bound_address(fd, address));
  }

  const EventLoop::Counters counters{conns_opened_, conns_closed_,
                                     frames_in_,   frames_out_,
                                     torn_frames_, protocol_errors_};
  const std::size_t workers = std::max<std::size_t>(config_.workers, 1);
  loops_.clear();
  for (std::size_t i = 0; i < workers; ++i) {
    loops_.push_back(std::make_unique<EventLoop>(
        i, &pool_,
        [this](const RequestEnvelope& request, const crypto::Bytes& body) {
          return dispatch(request, body);
        },
        counters, clock_, recorder_));
    loops_.back()->start();
  }

  acceptor_wake_ = eventfd(0, EFD_CLOEXEC);
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { accept_loop(); });
}

void TransportServer::accept_loop() {
  std::vector<pollfd> pfds;
  for (const int fd : listen_fds_) pfds.push_back({fd, POLLIN, 0});
  pfds.push_back({acceptor_wake_, POLLIN, 0});

  while (running_.load(std::memory_order_acquire)) {
    for (pollfd& pfd : pfds) pfd.revents = 0;
    const int ready = poll(pfds.data(), pfds.size(), 500);
    if (ready <= 0) continue;
    for (std::size_t i = 0; i + 1 < pfds.size(); ++i) {
      if ((pfds[i].revents & POLLIN) == 0) continue;
      for (;;) {
        const int conn = accept4(pfds[i].fd, nullptr, nullptr,
                                 SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (conn < 0) break;  // EAGAIN (or transient error): next poll
        const std::size_t slot =
            next_loop_.fetch_add(1, std::memory_order_relaxed) % loops_.size();
        loops_[slot]->adopt(conn);
      }
    }
  }
}

void TransportServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  if (acceptor_wake_ >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = write(acceptor_wake_, &one, sizeof(one));
  }
  if (acceptor_.joinable()) acceptor_.join();
  for (const int fd : listen_fds_) close(fd);
  listen_fds_.clear();
  if (acceptor_wake_ >= 0) {
    close(acceptor_wake_);
    acceptor_wake_ = -1;
  }
  for (auto& loop : loops_) loop->stop();
  loops_.clear();
}

TransportServer::Stats TransportServer::stats() const {
  Stats s;
  s.conns_opened = conns_opened_->value();
  s.conns_closed = conns_closed_->value();
  s.frames_in = frames_in_->value();
  s.frames_out = frames_out_->value();
  s.torn_frames = torn_frames_->value();
  s.protocol_errors = protocol_errors_->value();
  s.requests_handled = requests_handled_->value();
  s.unknown_endpoints = unknown_endpoints_->value();
  s.chaos_kills = chaos_kills_->value();
  s.chaos_drops = chaos_drops_->value();
  s.chaos_corruptions = chaos_corruptions_->value();
  s.chaos_delays = chaos_delays_->value();
  s.chaos_stalls = chaos_stalls_->value();
  return s;
}

}  // namespace alidrone::net::transport
