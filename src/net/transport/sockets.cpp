#include "net/transport/sockets.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace alidrone::net::transport {

namespace {

[[noreturn]] void raise_errno(const std::string& what) {
  throw std::runtime_error("transport: " + what + ": " +
                           std::strerror(errno));
}

sockaddr_in tcp_sockaddr(const ParsedAddress& addr) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(addr.port);
  if (inet_pton(AF_INET, addr.host.c_str(), &sa.sin_addr) != 1) {
    throw std::invalid_argument("transport: bad tcp host '" + addr.host + "'");
  }
  return sa;
}

sockaddr_un uds_sockaddr(const ParsedAddress& addr) {
  sockaddr_un sa{};
  sa.sun_family = AF_UNIX;
  if (addr.path.size() >= sizeof(sa.sun_path)) {
    throw std::invalid_argument("transport: uds path too long '" + addr.path +
                                "'");
  }
  std::memcpy(sa.sun_path, addr.path.c_str(), addr.path.size() + 1);
  return sa;
}

}  // namespace

ParsedAddress parse_address(const std::string& address) {
  ParsedAddress out;
  if (address.rfind("uds:", 0) == 0) {
    out.is_tcp = false;
    out.path = address.substr(4);
    if (out.path.empty()) {
      throw std::invalid_argument("transport: empty uds path in '" + address +
                                  "'");
    }
    return out;
  }
  if (address.rfind("tcp:", 0) == 0) {
    const std::size_t colon = address.rfind(':');
    if (colon == 3) {
      throw std::invalid_argument("transport: missing port in '" + address +
                                  "'");
    }
    out.is_tcp = true;
    out.host = address.substr(4, colon - 4);
    const std::string port = address.substr(colon + 1);
    char* end = nullptr;
    const long value = std::strtol(port.c_str(), &end, 10);
    if (port.empty() || *end != '\0' || value < 0 || value > 65535) {
      throw std::invalid_argument("transport: bad port in '" + address + "'");
    }
    out.port = static_cast<std::uint16_t>(value);
    return out;
  }
  throw std::invalid_argument("transport: unknown address scheme '" + address +
                              "' (want tcp:host:port or uds:path)");
}

void make_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    raise_errno("fcntl(O_NONBLOCK)");
  }
}

int listen_socket(const std::string& address, int backlog) {
  const ParsedAddress addr = parse_address(address);
  const int fd = socket(addr.is_tcp ? AF_INET : AF_UNIX,
                        SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) raise_errno("socket");
  if (addr.is_tcp) {
    const int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    const sockaddr_in sa = tcp_sockaddr(addr);
    if (bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) < 0) {
      close(fd);
      raise_errno("bind " + address);
    }
  } else {
    unlink(addr.path.c_str());  // stale socket from a dead server
    const sockaddr_un sa = uds_sockaddr(addr);
    if (bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) < 0) {
      close(fd);
      raise_errno("bind " + address);
    }
  }
  if (listen(fd, backlog) < 0) {
    close(fd);
    raise_errno("listen " + address);
  }
  make_nonblocking(fd);
  return fd;
}

std::string bound_address(int listen_fd, const std::string& requested) {
  const ParsedAddress addr = parse_address(requested);
  if (!addr.is_tcp) return requested;
  sockaddr_in sa{};
  socklen_t len = sizeof(sa);
  if (getsockname(listen_fd, reinterpret_cast<sockaddr*>(&sa), &len) < 0) {
    raise_errno("getsockname");
  }
  return "tcp:" + addr.host + ":" + std::to_string(ntohs(sa.sin_port));
}

int connect_socket(const std::string& address, double timeout_s) {
  const ParsedAddress addr = parse_address(address);
  const int fd = socket(addr.is_tcp ? AF_INET : AF_UNIX,
                        SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) raise_errno("socket");
  make_nonblocking(fd);

  int rc;
  if (addr.is_tcp) {
    const sockaddr_in sa = tcp_sockaddr(addr);
    rc = connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa));
  } else {
    const sockaddr_un sa = uds_sockaddr(addr);
    rc = connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa));
  }
  if (rc < 0 && errno == EINPROGRESS) {
    pollfd pfd{fd, POLLOUT, 0};
    const int timeout_ms =
        timeout_s > 0.0 ? static_cast<int>(timeout_s * 1000.0) : -1;
    const int ready = poll(&pfd, 1, timeout_ms);
    if (ready <= 0) {
      close(fd);
      throw std::runtime_error("transport: connect to '" + address +
                               "' timed out");
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len);
    if (err != 0) {
      close(fd);
      errno = err;
      raise_errno("connect " + address);
    }
  } else if (rc < 0) {
    close(fd);
    raise_errno("connect " + address);
  }

  // Back to blocking: the client's reader thread uses plain read(), and
  // writes go through a poll()-guarded loop.
  const int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
  if (addr.is_tcp) {
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return fd;
}

std::size_t raise_fd_limit(std::size_t needed) {
  rlimit lim{};
  if (getrlimit(RLIMIT_NOFILE, &lim) != 0) return 0;
  if (lim.rlim_cur < needed) {
    rlimit want = lim;
    want.rlim_cur = needed > lim.rlim_max ? lim.rlim_max
                                          : static_cast<rlim_t>(needed);
    if (setrlimit(RLIMIT_NOFILE, &want) == 0) lim = want;
  }
  return static_cast<std::size_t>(lim.rlim_cur);
}

}  // namespace alidrone::net::transport
