// The transport's event loop: one epoll instance, edge-triggered, driven
// by one worker thread. A TransportServer runs N of these; an acceptor
// hands each new connection to a loop round-robin via adopt(), which
// enqueues the fd and pokes the loop's eventfd.
//
// Per connection the loop keeps a FrameAssembler whose accumulation
// buffer is checked out of the server's BufferPool — recv() lands
// directly in that pooled buffer (writable()/commit()), so a decoded
// request body is a span over pooled memory and the zero-copy
// decode_view path runs straight off the wire.
//
// Chaos hooks: the dispatch callback returns an action, and the loop is
// the mechanism — kKill closes the socket mid-conversation, kDelay parks
// the finished response on a timer heap until its due time (used for
// both injected latency and stalled-peer windows), kDrop discards it.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "crypto/bytes.h"
#include "net/buffer_pool.h"
#include "net/transport/frame.h"
#include "obs/clock.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace alidrone::net::transport {

/// What the server decided to do with one parsed request.
struct DispatchResult {
  enum class Action : std::uint8_t {
    kRespond,  ///< send status+body now
    kDelay,    ///< send status+body after delay_s (latency / stall chaos)
    kDrop,     ///< handler ran, response discarded (response-loss chaos)
    kKill,     ///< close the connection without answering (outage chaos)
  };
  Action action = Action::kRespond;
  std::uint8_t status = kStatusOk;
  crypto::Bytes body;
  double delay_s = 0.0;
};

class EventLoop {
 public:
  /// Runs on the loop thread for every request frame. `body` is the
  /// request body copied into a pooled per-connection scratch buffer
  /// (steady-state: capacity reuse, no allocation).
  using Dispatch =
      std::function<DispatchResult(const RequestEnvelope&, const crypto::Bytes&)>;

  /// Registry handles owned by the server; every loop bumps the same set.
  struct Counters {
    obs::Counter* conns_opened = nullptr;
    obs::Counter* conns_closed = nullptr;
    obs::Counter* frames_in = nullptr;
    obs::Counter* frames_out = nullptr;
    obs::Counter* torn_frames = nullptr;
    obs::Counter* protocol_errors = nullptr;
  };

  EventLoop(std::size_t index, BufferPool* pool, Dispatch dispatch,
            Counters counters, const obs::Clock* clock,
            obs::FlightRecorder* recorder);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  void start();
  /// Graceful drain: in-flight requests (frames already received) finish
  /// and their responses flush, bounded by `drain_deadline_s`; then every
  /// connection closes and the thread joins. Idempotent.
  void stop(double drain_deadline_s = 2.0);

  /// Hand a non-blocking connected socket to this loop (thread-safe;
  /// takes ownership of the fd).
  void adopt(int fd);

  std::size_t index() const { return index_; }

 private:
  struct Conn {
    explicit Conn(int f, BufferPool* pool)
        : fd(f), in(pool), scratch_pool(pool) {
      if (pool != nullptr) {
        out = pool->acquire();
        scratch = pool->acquire();
      }
    }
    ~Conn() {
      if (scratch_pool != nullptr) {
        scratch_pool->release(std::move(out));
        scratch_pool->release(std::move(scratch));
      }
    }
    int fd;
    FrameAssembler in;
    crypto::Bytes out;        ///< pooled pending-write buffer
    std::size_t out_off = 0;  ///< flushed prefix of `out`
    crypto::Bytes scratch;    ///< pooled request-body staging for dispatch
    bool want_write = false;  ///< EPOLLOUT armed
    BufferPool* scratch_pool;
  };

  /// A chaos-delayed response waiting for its due time.
  struct Timer {
    double due = 0.0;
    std::uint64_t conn_id = 0;
    std::uint64_t correlation_id = 0;
    std::uint8_t status = kStatusOk;
    crypto::Bytes body;
  };
  struct TimerLater {
    bool operator()(const Timer& a, const Timer& b) const {
      return a.due > b.due;
    }
  };

  void run();
  void drain_inbox();
  void handle_readable(std::uint64_t id, Conn& conn);
  /// Returns false when the connection died mid-flush (already closed).
  bool flush(std::uint64_t id, Conn& conn);
  void fire_due_timers();
  void close_conn(std::uint64_t id, Conn& conn, bool torn);
  void update_interest(std::uint64_t id, Conn& conn, bool want_write);
  int next_timeout_ms() const;

  std::size_t index_;
  BufferPool* pool_;
  Dispatch dispatch_;
  Counters counters_;
  const obs::Clock* clock_;
  obs::FlightRecorder* recorder_;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  double drain_deadline_s_ = 2.0;

  std::mutex inbox_mu_;
  std::vector<int> inbox_;

  std::uint64_t next_conn_id_ = 1;  ///< 0 is the wake eventfd
  std::map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  std::priority_queue<Timer, std::vector<Timer>, TimerLater> timers_;
};

}  // namespace alidrone::net::transport
