// Low-level socket plumbing for the transport: address parsing, listener
// and connector setup, non-blocking mode. Addresses are strings so they
// can ride in flags and configs:
//
//   "tcp:127.0.0.1:9000"   TCP on host:port ("tcp:127.0.0.1:0" binds an
//                          ephemeral port; bound_address() reports it)
//   "uds:/tmp/auditor.sock" Unix-domain stream socket at a path
//
// Everything here throws std::runtime_error with a "transport: ..."
// message on syscall failure — socket setup errors are configuration
// bugs, not protocol faults, so they are loud.
#pragma once

#include <cstdint>
#include <string>

namespace alidrone::net::transport {

struct ParsedAddress {
  bool is_tcp = false;
  std::string host;     ///< tcp only
  std::uint16_t port = 0;  ///< tcp only
  std::string path;     ///< uds only
};

/// Parse "tcp:host:port" / "uds:path"; throws std::invalid_argument with
/// the offending address on anything else.
ParsedAddress parse_address(const std::string& address);

/// Bind + listen a non-blocking socket for `address`. For "uds:" any
/// stale socket file at the path is removed first. Returns the fd.
int listen_socket(const std::string& address, int backlog = 1024);

/// The canonical string of a bound listener — resolves "tcp:host:0" to
/// the actual port so clients can be pointed at an ephemeral listener.
std::string bound_address(int listen_fd, const std::string& requested);

/// Connect (blocking, bounded by `timeout_s`) and return a socket left in
/// blocking mode with TCP_NODELAY set. Throws TimeoutError-compatible
/// std::runtime_error on refusal/timeout.
int connect_socket(const std::string& address, double timeout_s);

/// Set O_NONBLOCK.
void make_nonblocking(int fd);

/// Raise RLIMIT_NOFILE's soft limit toward `needed` (capped at the hard
/// limit). Returns the resulting soft limit. High-connection benches call
/// this so 4096 sockets do not trip a 1024 default.
std::size_t raise_fd_limit(std::size_t needed);

}  // namespace alidrone::net::transport
