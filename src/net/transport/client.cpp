#include "net/transport/client.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <stdexcept>

#include "net/transport/frame.h"
#include "net/transport/sockets.h"

namespace alidrone::net::transport {

TransportClient::TransportClient(Config config)
    : config_(std::move(config)), pool_(64, config_.registry) {
  obs::MetricsRegistry& reg = config_.registry != nullptr
                                  ? *config_.registry
                                  : obs::MetricsRegistry::global();
  const std::string scope = reg.instance_scope("net.transport.client");
  requests_ = &reg.counter(scope + ".requests");
  connects_ = &reg.counter(scope + ".connects");
  resets_ = &reg.counter(scope + ".resets");
  deadline_expired_ = &reg.counter(scope + ".deadline_expired");

  const std::size_t n = std::max<std::size_t>(config_.connections, 1);
  channels_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    channels_.push_back(std::make_unique<Channel>());
  }
}

TransportClient::~TransportClient() {
  closing_.store(true, std::memory_order_release);
  for (auto& channel : channels_) {
    std::lock_guard<std::mutex> conn_lock(channel->conn_mu);
    if (channel->fd >= 0) shutdown(channel->fd, SHUT_RDWR);
    if (channel->reader.joinable()) channel->reader.join();
    if (channel->fd >= 0) {
      close(channel->fd);
      channel->fd = -1;
    }
  }
}

void TransportClient::register_endpoint(const std::string& name, Handler) {
  throw std::logic_error("TransportClient: cannot register endpoint '" + name +
                         "' on the client side");
}

void TransportClient::ensure_connected(Channel& channel) {
  std::lock_guard<std::mutex> conn_lock(channel.conn_mu);
  {
    std::lock_guard<std::mutex> lock(channel.mu);
    if (!channel.dead) return;
  }
  // The reader marks the channel dead just before returning, so the join
  // below only ever waits out that last instant.
  if (channel.reader.joinable()) channel.reader.join();
  if (channel.fd >= 0) {
    close(channel.fd);
    channel.fd = -1;
  }
  const int fd = connect_socket(config_.address, config_.connect_timeout_s);
  {
    std::lock_guard<std::mutex> lock(channel.mu);
    channel.fd = fd;
    channel.dead = false;
  }
  connects_->increment();
  channel.reader = std::thread([this, &channel] { reader_loop(channel); });
}

void TransportClient::fail_channel(Channel& channel) {
  std::lock_guard<std::mutex> lock(channel.mu);
  channel.dead = true;
  for (auto& [correlation, pending] : channel.pending) {
    if (!pending.done) {
      pending.done = true;
      pending.failed = true;
    }
  }
  channel.cv.notify_all();
}

void TransportClient::reader_loop(Channel& channel) {
  constexpr std::size_t kChunk = 16 * 1024;
  FrameAssembler assembler(&pool_);
  const int fd = channel.fd;  // stable until this thread exits
  const auto noop = [](std::span<const std::uint8_t>) {
    return std::string();
  };
  for (;;) {
    const std::span<std::uint8_t> dst = assembler.writable(kChunk);
    const ssize_t n = read(fd, dst.data(), dst.size());
    if (n < 0 && errno == EINTR) {
      assembler.commit(0, kChunk, noop);
      continue;
    }
    if (n <= 0) break;  // EOF / reset: torn frame if assembler.mid_frame()
    const std::string err = assembler.commit(
        static_cast<std::size_t>(n), kChunk,
        [&](std::span<const std::uint8_t> payload) -> std::string {
          ResponseEnvelope response;
          const std::string perr = parse_response(payload, response);
          if (!perr.empty()) return perr;
          std::lock_guard<std::mutex> lock(channel.mu);
          const auto it = channel.pending.find(response.correlation_id);
          if (it != channel.pending.end()) {
            it->second.status = response.status;
            it->second.body.assign(response.body.begin(), response.body.end());
            it->second.done = true;
            channel.cv.notify_all();
          }
          // Unmatched id: a chaos-stalled response outliving its waiter's
          // deadline. Dropped — the retry is in flight with a fresh id.
          return std::string();
        });
    if (!err.empty()) break;  // framing lost — the stream is unrecoverable
  }
  fail_channel(channel);
}

bool TransportClient::write_frame(Channel& channel, const crypto::Bytes& frame) {
  std::lock_guard<std::mutex> conn_lock(channel.conn_mu);
  {
    std::lock_guard<std::mutex> lock(channel.mu);
    if (channel.dead) return false;
  }
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = send(channel.fd, frame.data() + off, frame.size() - off,
                           MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    fail_channel(channel);
    return false;
  }
  return true;
}

crypto::Bytes TransportClient::request(const std::string& endpoint,
                                       const crypto::Bytes& payload) {
  return request(endpoint, payload, config_.default_deadline_s);
}

crypto::Bytes TransportClient::request(const std::string& endpoint,
                                       const crypto::Bytes& payload,
                                       double deadline_s) {
  Channel& channel = *channels_[next_channel_.fetch_add(
                                   1, std::memory_order_relaxed) %
                               channels_.size()];
  try {
    ensure_connected(channel);
  } catch (const std::exception&) {
    // Unreachable server == dropped request: retryable ambiguity.
    resets_->increment();
    throw TimeoutError(endpoint);
  }
  requests_->increment();

  const std::uint64_t correlation =
      next_correlation_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(channel.mu);
    channel.pending.emplace(correlation, Pending{});
  }

  crypto::Bytes frame = pool_.acquire();
  append_request_frame(frame, correlation, endpoint, payload);
  const bool written = write_frame(channel, frame);
  frame.clear();
  pool_.release(std::move(frame));
  if (!written) {
    std::lock_guard<std::mutex> lock(channel.mu);
    channel.pending.erase(correlation);
    resets_->increment();
    throw TimeoutError(endpoint);
  }

  std::unique_lock<std::mutex> lock(channel.mu);
  Pending& pending = channel.pending[correlation];
  const auto ready = [&] { return pending.done; };
  if (deadline_s > 0.0) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::duration<double>(deadline_s));
    if (!channel.cv.wait_until(lock, deadline, ready)) {
      channel.pending.erase(correlation);
      deadline_expired_->increment();
      throw DeadlineExpired(endpoint);
    }
  } else {
    channel.cv.wait(lock, ready);
  }

  Pending result = std::move(channel.pending[correlation]);
  channel.pending.erase(correlation);
  lock.unlock();

  if (result.failed) {
    resets_->increment();
    throw TimeoutError(endpoint);
  }
  switch (result.status) {
    case kStatusOk:
      return std::move(result.body);
    case kStatusUnknownEndpoint:
      throw std::out_of_range("TransportClient: unknown endpoint '" + endpoint +
                              "'");
    default:
      throw std::runtime_error(
          std::string(result.body.begin(), result.body.end()));
  }
}

TransportClient::Stats TransportClient::stats() const {
  Stats s;
  s.requests = requests_->value();
  s.connects = connects_->value();
  s.resets = resets_->value();
  s.deadline_expired = deadline_expired_->value();
  return s;
}

}  // namespace alidrone::net::transport
