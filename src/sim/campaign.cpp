#include "sim/campaign.h"

#include <cmath>
#include <limits>
#include <memory>
#include <sstream>
#include <utility>

#include "core/attacks.h"
#include "core/audit_log.h"
#include "core/auditor.h"
#include "core/drone_client.h"
#include "core/flight.h"
#include "core/flight_actor.h"
#include "core/zone_owner.h"
#include "crypto/bytes.h"
#include "geo/units.h"
#include "geo/zone.h"
#include "ledger/ledger.h"
#include "net/message_bus.h"
#include "obs/metrics.h"
#include "resilience/sim_clock.h"
#include "sim/route.h"

namespace alidrone::sim {

namespace {

constexpr std::size_t kTestKeyBits = 512;
constexpr double kZoneRadiusM = 300.0;
constexpr double kFamilySpacingM = 4000.0;
constexpr std::size_t kStaggerGroups = 8;

const char* const kFamilyNames[3] = {"swarm", "delivery", "corridor"};

std::string seed_tag(std::uint64_t seed, std::size_t i, const char* what) {
  return "campaign-" + std::to_string(seed) + "-" + std::string(what) + "-" +
         std::to_string(i);
}

/// Family zone center in the shared local frame: three geographically
/// separated zones, one per route family.
geo::Vec2 family_zone_center(std::size_t family) {
  return {static_cast<double>(family) * kFamilySpacingM, 1000.0};
}

/// One route of `family`'s shape, jittered laterally by `jitter_y`
/// (meters, away from the zone). Every family skirts its zone — closest
/// boundary approach 120–205 m, near enough that cutting the approach
/// window out of a PoA (or over-thinning it) violates eq. (1), far
/// enough that the honest trace stays compliant.
Route make_family_route(const geo::LocalFrame& frame, std::size_t family,
                        double take_off, double jitter_y) {
  const double fx = family_zone_center(family).x;
  std::vector<Waypoint> wps;
  switch (family) {
    case 0:  // swarm staging loop: dip toward the zone mid-route
      wps = {{{fx - 800.0, 1450.0 + jitter_y}, 40.0},
             {{fx, 1420.0 + jitter_y}, 40.0},
             {{fx + 800.0, 1450.0 + jitter_y}, 40.0}};
      break;
    case 1:  // delivery out-and-back with the drop point nearest the zone
      wps = {{{fx - 700.0, 1500.0 + jitter_y}, 35.0},
             {{fx, 1430.0 + jitter_y}, 35.0},
             {{fx + 700.0, 1500.0 + jitter_y}, 35.0}};
      break;
    default:  // transit corridor: straight traverse past the zone
      wps = {{{fx - 900.0, 1480.0 + jitter_y}, 42.0},
             {{fx + 900.0, 1480.0 + jitter_y}, 42.0}};
  }
  return Route(frame, std::move(wps), take_off);
}

/// Innocuous fabricated trace for the chain-forge operator: a straight
/// line 5 km north of every zone, spanning the flight window.
std::vector<gps::GpsFix> fake_route_fixes(const geo::LocalFrame& frame,
                                          double start, double end,
                                          double rate_hz) {
  std::vector<gps::GpsFix> fixes;
  const double period = 1.0 / rate_hz;
  for (double t = start; t <= end + 1e-9; t += period) {
    gps::GpsFix fix;
    fix.position = frame.to_geo({(t - start) * 10.0, 6000.0});
    fix.unix_time = t;
    fix.speed_mps = 10.0;
    fixes.push_back(fix);
  }
  return fixes;
}

/// Cut the zone-approach window out of the PoA — the drop-window
/// operator hiding where the flight came closest. Drops every sample
/// within ±`half_window_s` of `t_mid` and always at least the three
/// interior samples nearest the approach: adaptive sampling spaces
/// near-zone samples at the sufficiency threshold, so the window can
/// straddle a single long recording interval and catch nothing — but
/// removing the nearest samples merges threshold-tight pairs, whose
/// combined allowance exceeds the surviving focal sum by roughly twice
/// the dropped samples' boundary distances (eq. (1) margin). First and
/// last samples survive, keeping the claimed flight window anchored.
core::ProofOfAlibi drop_approach_window(const core::ProofOfAlibi& poa,
                                        double t_mid, double half_window_s) {
  const std::size_t n = poa.samples.size();
  if (n < 3) return poa;  // nothing interior to hide
  std::size_t from = n;
  std::size_t to = 0;
  std::size_t nearest = 1;
  double nearest_gap = std::numeric_limits<double>::infinity();
  for (std::size_t i = 1; i + 1 < n; ++i) {
    const auto fix = poa.samples[i].fix();
    if (!fix) continue;
    const double gap = std::abs(fix->unix_time - t_mid);
    if (gap < nearest_gap) {
      nearest_gap = gap;
      nearest = i;
    }
    if (gap <= half_window_s) {
      from = std::min(from, i);
      to = std::max(to, i + 1);
    }
  }
  from = std::min(from, nearest >= 2 ? nearest - 1 : 1);
  to = std::max(to, std::min(nearest + 2, n - 1));
  return core::attacks::drop_samples(poa, from, to);
}

struct Rig {
  std::unique_ptr<tee::DroneTee> tee;
  std::unique_ptr<crypto::DeterministicRandom> operator_rng;
  std::unique_ptr<core::DroneClient> client;
  std::unique_ptr<Route> route;
  std::unique_ptr<gps::GpsReceiverSim> receiver;
  std::unique_ptr<core::AdaptiveSampler> policy;
  std::unique_ptr<core::FlightActor> actor;
  AttackClass attack = AttackClass::kHonest;
  std::size_t family = 0;
};

}  // namespace

const char* attack_class_name(AttackClass c) {
  switch (c) {
    case AttackClass::kHonest:
      return "honest";
    case AttackClass::kChainForge:
      return "chain-forge";
    case AttackClass::kReplay:
      return "replay";
    case AttackClass::kTamper:
      return "tamper";
    case AttackClass::kDropWindow:
      return "drop-window";
    case AttackClass::kNavDeviation:
      return "nav-deviation";
    case AttackClass::kThinningAbuse:
      return "thinning-abuse";
  }
  return "unknown";
}

std::string CampaignReport::fingerprint() const {
  std::ostringstream out;
  out << "alidrone-campaign v1 seed=" << seed << " flights=" << outcomes.size()
      << "\n";
  for (const FlightOutcome& o : outcomes) {
    out << o.drone_id << " class=" << attack_class_name(o.attack)
        << " family=" << o.route_family;
    if (o.verdict) {
      out << " accepted=" << (o.verdict->accepted ? 1 : 0)
          << " compliant=" << (o.verdict->compliant ? 1 : 0)
          << " violations=" << o.verdict->violation_count;
    } else {
      out << " verdict=none";
    }
    out << " attempts=" << o.submit_attempts << "\n";
  }
  out << "ingest submitted=" << ingest.submitted
      << " admitted=" << ingest.admitted << " committed=" << ingest.committed
      << " duplicates=" << ingest.duplicates
      << " malformed=" << ingest.malformed
      << " retry_later=" << ingest.retry_later << "\n";
  out << "audit events=" << audit_events << "\n";
  out << "ledger entries=" << ledger_entries << " root=" << ledger_root_hex
      << "\n";
  return out.str();
}

CampaignReport run_campaign(const CampaignConfig& config) {
  // ---- Deployment: one Auditor, batched ingest, ledger-anchored audit ----
  obs::MetricsRegistry metrics;
  resilience::SimClock clock(config.start_time);
  net::MessageBus bus(&metrics);

  crypto::DeterministicRandom auditor_rng(seed_tag(config.seed, 0, "auditor"));
  core::ProtocolParams params;
  params.auditor_shards = config.auditor_shards;
  params.metrics = &metrics;
  core::Auditor auditor(kTestKeyBits, auditor_rng, params);

  auto audit_log = std::make_shared<core::AuditLog>();
  auto audit_ledger = std::make_shared<ledger::Ledger>(
      ledger::Ledger::Config{{}, 256, &metrics});
  audit_log->attach_ledger(audit_ledger);
  auditor.attach_audit_log(audit_log);
  auditor.bind(bus);

  core::AuditorIngest::Config ingest_config;
  ingest_config.queue_capacity = config.ingest_queue_capacity;
  ingest_config.max_batch = config.ingest_max_batch;
  ingest_config.verify_threads = config.ingest_verify_threads;
  core::AuditorIngest ingest(auditor, ingest_config);
  ingest.bind(bus);

  const geo::LocalFrame frame(geo::GeoPoint{47.60, -122.33});
  crypto::DeterministicRandom owner_rng(seed_tag(config.seed, 0, "owner"));
  core::ZoneOwner owner(kTestKeyBits, owner_rng);
  std::vector<geo::GeoZone> zones;
  std::vector<geo::Circle> local_zones;
  for (std::size_t family = 0; family < 3; ++family) {
    const geo::GeoZone zone{frame.to_geo(family_zone_center(family)),
                            kZoneRadiusM};
    owner.register_zone(bus, zone,
                        std::string(kFamilyNames[family]) + " exclusion zone");
    zones.push_back(zone);
    local_zones.push_back(geo::to_local(frame, zone));
  }

  // ---- The replay donor: one honest pre-campaign flight whose PoA the
  // replay operators relabel. Registered first, so fleet drone ids are
  // stable offsets of the flight index. ----
  auto donor_poa = std::make_shared<core::ProofOfAlibi>();
  {
    tee::DroneTee::Config tee_config;
    tee_config.key_bits = kTestKeyBits;
    tee_config.manufacturing_seed = seed_tag(config.seed, 0, "donor-tee");
    tee::DroneTee donor_tee(tee_config);
    crypto::DeterministicRandom donor_rng(seed_tag(config.seed, 0, "donor"));
    core::DroneClient donor(donor_tee, kTestKeyBits, donor_rng, &metrics);
    donor.register_with_auditor(bus);

    const Route route =
        make_family_route(frame, 0, config.start_time - 300.0, 5.0);
    gps::GpsReceiverSim::Config rc;
    rc.update_rate_hz = config.update_rate_hz;
    rc.start_time = route.start_time();
    rc.seed = config.seed;
    gps::GpsReceiverSim receiver(rc, route.as_position_source());
    core::AdaptiveSampler policy(frame, local_zones, geo::kFaaMaxSpeedMps,
                                 config.update_rate_hz);
    core::FlightConfig fc;
    fc.end_time = route.end_time();
    fc.frame = frame;
    fc.local_zones = local_zones;
    *donor_poa = donor.fly(receiver, policy, fc);
  }

  // ---- Fleet assembly ----
  const std::size_t n = config.flights;
  const std::size_t adversaries = static_cast<std::size_t>(
      std::llround(static_cast<double>(n) * config.adversary_fraction));

  std::vector<Rig> rigs(n);
  FleetScheduler scheduler(FleetScheduler::Config{
      config.seed, config.scheduler_workers, &clock, &bus});

  std::size_t adversary_index = 0;
  for (std::size_t i = 0; i < n; ++i) {
    Rig& rig = rigs[i];
    rig.family = i % 3;

    // Bresenham spread: `adversaries` attackers distributed evenly over
    // the fleet, cycling the six attack classes in order.
    const bool adversarial = ((i + 1) * adversaries) / n > (i * adversaries) / n;
    if (adversarial) {
      rig.attack = static_cast<AttackClass>(1 + (adversary_index % 6));
      ++adversary_index;
    }

    tee::DroneTee::Config tee_config;
    tee_config.key_bits = kTestKeyBits;
    tee_config.manufacturing_seed = seed_tag(config.seed, i, "tee");
    rig.tee = std::make_unique<tee::DroneTee>(tee_config);
    rig.operator_rng = std::make_unique<crypto::DeterministicRandom>(
        seed_tag(config.seed, i, "operator"));
    rig.client = std::make_unique<core::DroneClient>(*rig.tee, kTestKeyBits,
                                                     *rig.operator_rng, &metrics);
    rig.client->register_with_auditor(bus);

    crypto::DeterministicRandom route_rng(seed_tag(config.seed, i, "route"));
    const double jitter_y = route_rng.uniform_double() * 25.0;
    const double take_off =
        config.start_time +
        static_cast<double>(i % kStaggerGroups) * config.stagger_s;
    rig.route = std::make_unique<Route>(
        make_family_route(frame, rig.family, take_off, jitter_y));

    gps::PositionSource source = rig.route->as_position_source();
    if (rig.attack == AttackClass::kNavDeviation) {
      // Gradual spoofing from 2 s after take-off drifts the drone into
      // its family zone around mid-flight; the TEE signs the deviation.
      source = core::attacks::spoofed_drift_source(
          std::move(source), frame, family_zone_center(rig.family),
          take_off + 2.0, 15.0);
    }

    gps::GpsReceiverSim::Config rc;
    rc.update_rate_hz = config.update_rate_hz;
    rc.start_time = rig.route->start_time();
    rc.seed = config.seed ^ (i * 0x9E3779B97F4A7C15ULL);
    rig.receiver = std::make_unique<gps::GpsReceiverSim>(rc, std::move(source));
    rig.policy = std::make_unique<core::AdaptiveSampler>(
        frame, local_zones, geo::kFaaMaxSpeedMps, config.update_rate_hz);

    core::FlightConfig fc;
    fc.end_time = rig.route->end_time();
    fc.frame = frame;
    fc.local_zones = local_zones;
    // No drone-side audit log: actors step concurrently under workers>1
    // and must not share a mutable sink during the step phase.
    rig.actor = std::make_unique<core::FlightActor>(*rig.tee, *rig.receiver,
                                                    *rig.policy, fc);

    core::FlightActor::Submission submission;
    submission.drone_id = rig.client->id();
    submission.backoff_seed = seed_tag(config.seed, i, "backoff");
    const double t_mid = rig.route->start_time() + rig.route->duration() / 2.0;
    switch (rig.attack) {
      case AttackClass::kHonest:
      case AttackClass::kNavDeviation:
        break;  // submit what the TEE signed
      case AttackClass::kChainForge:
        submission.mutate = [drone_id = rig.client->id(),
                             fixes = fake_route_fixes(frame,
                                                      rig.route->start_time(),
                                                      rig.route->end_time(),
                                                      config.update_rate_hz),
                             seed = seed_tag(config.seed, i, "forge")](
                                core::ProofOfAlibi) {
          crypto::DeterministicRandom rng(seed);
          return core::attacks::forge_trace(
              drone_id, fixes, crypto::HashAlgorithm::kSha1, kTestKeyBits, rng);
        };
        break;
      case AttackClass::kReplay:
        submission.mutate = [donor_poa, drone_id = rig.client->id()](
                                core::ProofOfAlibi) {
          return core::attacks::relay(*donor_poa, drone_id);
        };
        break;
      case AttackClass::kTamper:
        submission.mutate = [center = zones[rig.family].center](
                                core::ProofOfAlibi poa) {
          return core::attacks::tamper_position(poa, poa.samples.size() / 2,
                                                center);
        };
        break;
      case AttackClass::kDropWindow:
        submission.mutate = [t_mid](core::ProofOfAlibi poa) {
          return drop_approach_window(poa, t_mid, 10.0);
        };
        break;
      case AttackClass::kThinningAbuse:
        submission.mutate = [](core::ProofOfAlibi poa) {
          return core::attacks::thinning_abuse(poa, 2);
        };
        break;
    }
    rig.actor->set_submission(std::move(submission));
    scheduler.add(*rig.actor);
  }

  // ---- Fly the campaign ----
  scheduler.run();
  ingest.stop();  // drain before reading counters / the ledger root

  // ---- Score ----
  CampaignReport report;
  report.seed = config.seed;
  report.outcomes.reserve(n);
  for (const Rig& rig : rigs) {
    FlightOutcome outcome;
    outcome.drone_id = rig.client->id();
    outcome.attack = rig.attack;
    outcome.route_family = kFamilyNames[rig.family];
    outcome.verdict = rig.actor->submission_verdict();
    outcome.submit_attempts = rig.actor->submission_attempts();
    report.outcomes.push_back(std::move(outcome));
  }

  for (const FlightOutcome& o : report.outcomes) {
    ClassMetrics& m = report.per_class[static_cast<std::size_t>(o.attack)];
    ++m.flights;
    if (o.flagged()) ++m.flagged;
  }
  const std::size_t honest_fp =
      report.per_class[static_cast<std::size_t>(AttackClass::kHonest)].flagged;
  for (std::size_t c = 0; c < kAttackClassCount; ++c) {
    ClassMetrics& m = report.per_class[c];
    if (c == static_cast<std::size_t>(AttackClass::kHonest)) {
      // For the honest cohort, "recall" is the correct-accept rate; the
      // precision slot is unused and stays 1.0.
      if (m.flights > 0) {
        m.recall = static_cast<double>(m.flights - m.flagged) /
                   static_cast<double>(m.flights);
      }
      continue;
    }
    if (m.flights > 0) {
      m.recall = static_cast<double>(m.flagged) / static_cast<double>(m.flights);
    }
    if (m.flagged + honest_fp > 0) {
      m.precision = static_cast<double>(m.flagged) /
                    static_cast<double>(m.flagged + honest_fp);
    }
  }

  report.ingest = ingest.counters();
  report.audit_events = audit_log->events().size();
  report.ledger_entries = audit_ledger->entry_count();
  report.ledger_root_hex = crypto::to_hex(audit_ledger->root_hash());
  report.scheduler = scheduler.stats();
  return report;
}

}  // namespace alidrone::sim
