// NFZ-aware route planning (paper Section IV-B, step 2-3: the drone uses
// the Auditor's zone list "to compute a viable route to its destination").
//
// Plans a shortest collision-free polyline around circular no-fly-zones
// using an approximate visibility graph: nodes are the start, the goal and
// discretized points on each inflated zone boundary; edges connect every
// node pair whose straight segment clears all zones; Dijkstra extracts the
// shortest path. With enough boundary samples the result converges to the
// true tangent-graph optimum.
#pragma once

#include <optional>
#include <vector>

#include "geo/circle.h"
#include "geo/units.h"
#include "geo/vec2.h"

namespace alidrone::sim {

struct PlannerConfig {
  /// Safety margin added to every zone radius, meters. Keeping a margin
  /// also keeps the adaptive sampler's required rate bounded.
  double clearance_m = 15.0;
  /// Boundary discretization per zone; higher = closer to optimal.
  int samples_per_zone = 24;

  /// PoA-aware routing (paper Section VIII-D: routing "can be used to
  /// optimize the Proof-of-Alibi"). Edge cost becomes
  ///   length + poa_sample_weight * expected_poa_samples(edge),
  /// so a positive weight buys clearance from zones with extra distance,
  /// reducing TEE signatures (energy) along the flight. 0 = pure shortest
  /// path.
  double poa_sample_weight = 0.0;
  double cruise_speed_mps = 10.0;    ///< used to convert rate to samples
  double vmax_mps = geo::kFaaMaxSpeedMps;  ///< the alibi speed bound
  double gps_rate_hz = 5.0;          ///< sampling rate ceiling
};

struct PlanResult {
  bool found = false;
  std::vector<geo::Vec2> path;  ///< start .. goal, collision-free
  double length_m = 0.0;
  /// Expected number of PoA samples Algorithm 1 records along the path
  /// (estimated by the same integral the preflight analyzer uses).
  double expected_poa_samples = 0.0;
};

/// Expected PoA samples recorded while flying segment [a, b] at
/// `cruise_speed` past `zones`: the integral of the required sampling
/// rate min(v_max / 2d, R) over travel time.
double segment_poa_samples(geo::Vec2 a, geo::Vec2 b,
                           const std::vector<geo::Circle>& zones,
                           const PlannerConfig& config);

/// Plan from `start` to `goal` avoiding all `zones` (inflated by the
/// clearance). Fails (found == false) when start/goal are inside an
/// inflated zone or no connected path exists.
PlanResult plan_route(geo::Vec2 start, geo::Vec2 goal,
                      const std::vector<geo::Circle>& zones,
                      const PlannerConfig& config = {});

/// True if the polyline stays clear of every zone (no inflation).
bool path_is_collision_free(const std::vector<geo::Vec2>& path,
                            const std::vector<geo::Circle>& zones);

}  // namespace alidrone::sim
