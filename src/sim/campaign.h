// Campaign — the adversarial fleet experiment (ROADMAP item 5).
//
// run_campaign stands up one complete AliDrone deployment in-process —
// Auditor (sharded), batched AuditorIngest, Merkle-anchored audit ledger,
// MessageBus — registers a fleet of TEE-equipped drones, and flies them
// concurrently on a deterministic FleetScheduler. Flights split across
// three route families (swarm staging loops, delivery out-and-backs, a
// transit corridor), each skirting its own no-fly zone; a configurable
// fraction of the fleet attacks, cycling through the operator's whole
// playbook from core/attacks:
//
//   chain-forge     fabricated trace under an attacker key  -> rejected
//   replay          another drone's honest PoA, relabeled   -> rejected
//   tamper          one sample moved without re-signing     -> rejected
//   drop-window     zone-approach window cut from the PoA   -> insufficient
//   nav-deviation   gradual GPS spoofing drifts the drone
//                   into the zone; the TEE honestly signs
//                   the deviated path                       -> violation
//   thinning-abuse  PoA over-thinned to its two endpoints   -> insufficient
//
// The report scores the Auditor as a detector per attack class
// (precision/recall against the flagged = !(accepted && compliant)
// signal) and carries a canonical fingerprint — per-flight verdicts,
// deterministic ingest counters, audit-event count and the ledger root —
// that is a pure function of the campaign seed: any worker count, verify
// thread count or shard count must reproduce it byte-identically.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/ingest.h"
#include "core/messages.h"
#include "sim/fleet_scheduler.h"

namespace alidrone::sim {

enum class AttackClass : std::uint8_t {
  kHonest = 0,
  kChainForge,
  kReplay,
  kTamper,
  kDropWindow,
  kNavDeviation,
  kThinningAbuse,
};
inline constexpr std::size_t kAttackClassCount = 7;

/// Stable lowercase name ("honest", "chain-forge", ...), used in the
/// fingerprint — renaming a class is a format change.
const char* attack_class_name(AttackClass c);

struct CampaignConfig {
  std::size_t flights = 64;
  /// Seeds everything: routes, TEE manufacturing, operator keys, the
  /// scheduler tie-break and the attack assignments.
  std::uint64_t seed = 1;
  /// FleetScheduler step-phase workers (1 = serial).
  std::size_t scheduler_workers = 1;
  /// Auditor lock stripes and ingest verifier threads — the knobs the
  /// determinism contract quantifies over.
  std::size_t auditor_shards = 8;
  std::size_t ingest_verify_threads = 0;
  std::size_t ingest_queue_capacity = 256;
  std::size_t ingest_max_batch = 32;
  /// Fraction of flights that attack, spread evenly over the fleet and
  /// cycled across the six attack classes.
  double adversary_fraction = 0.375;
  double update_rate_hz = 2.0;       ///< GPS receiver rate, [1, 5] Hz
  double start_time = 1528400000.0;  ///< unix time of the first takeoff
  /// Takeoffs stagger across eight groups at this spacing, so batches of
  /// co-scheduled actors and interleaved singletons both occur.
  double stagger_s = 3.125;
};

struct FlightOutcome {
  core::DroneId drone_id;
  AttackClass attack = AttackClass::kHonest;
  std::string route_family;  ///< "swarm" | "delivery" | "corridor"
  std::optional<core::PoaVerdict> verdict;
  std::uint32_t submit_attempts = 0;
  /// The detection signal: anything short of accepted-and-compliant.
  bool flagged() const {
    return !(verdict.has_value() && verdict->accepted && verdict->compliant);
  }
};

/// Detector quality for one attack class. recall = flagged attacks of
/// this class / attacks of this class; precision = those true positives
/// against the campaign's honest false positives:
/// TP / (TP + honest_flagged). Both are 1.0 on an empty denominator.
struct ClassMetrics {
  std::size_t flights = 0;
  std::size_t flagged = 0;
  double precision = 1.0;
  double recall = 1.0;
};

struct CampaignReport {
  std::uint64_t seed = 0;
  std::vector<FlightOutcome> outcomes;
  std::array<ClassMetrics, kAttackClassCount> per_class{};
  core::AuditorIngest::Counters ingest;
  std::size_t audit_events = 0;
  std::uint64_t ledger_entries = 0;
  std::string ledger_root_hex;
  FleetScheduler::Stats scheduler;

  /// Canonical replay fingerprint: per-flight verdict lines plus the
  /// deterministic ingest counters, the audit-event count and the ledger
  /// root. Excludes anything timing-dependent (ingest batch sizes,
  /// scheduler parallelism) — two runs of the same seed must produce the
  /// same string for any worker/shard/verify-thread configuration.
  std::string fingerprint() const;
};

/// Run one campaign to completion (registration, flights, submissions,
/// scoring). Everything is in-process and deterministic in config.seed.
CampaignReport run_campaign(const CampaignConfig& config);

}  // namespace alidrone::sim
