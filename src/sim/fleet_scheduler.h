// FleetScheduler — deterministic discrete-event executor for FlightActors.
//
// The FlightActor refactor cut the two flight loops at the GPS update
// grid; this scheduler is the other half of ROADMAP item 5: it interleaves
// N resumable flights on one shared virtual clock, so a single process
// can fly an entire fleet against the real Auditor/ingest pipeline. Each
// actor sits in a min-heap keyed by (next_wakeup, tiebreak, index); the
// scheduler pops every actor due at the earliest instant, advances the
// clock once to that instant, steps the batch, then flushes each actor's
// outbox through the Transport *serially in batch order* — the commit
// barrier that makes the Auditor-visible request sequence (and therefore
// every verdict, counter, audit event and ledger root) a pure function of
// the seed, independent of how many workers stepped the batch.
//
// Two actors due at the same instant are ordered by a per-actor tiebreak
// drawn from the seed (splitmix64(seed ^ index)), not by insertion order
// alone — so "same seed ⇒ same schedule" is an explicit contract rather
// than an accident of heap internals.
//
// With workers > 1 the step phase of each batch runs on a thread pool.
// This is safe because step() never touches the Transport (sends are only
// enqueued) — actors share no mutable state until the serial flush — but
// each actor's TEE/receiver/policy must be private to it, and per-flight
// FlightConfig::audit must not point at a log shared across actors being
// stepped concurrently (the campaign driver wires drone-side audit off
// for exactly this reason).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <queue>
#include <vector>

#include "core/flight_actor.h"
#include "net/transport.h"
#include "obs/clock.h"
#include "runtime/thread_pool.h"

namespace alidrone::sim {

class FleetScheduler {
 public:
  struct Config {
    /// Drives the equal-time tie-break ordering (and nothing else): two
    /// runs with the same seed and the same actors execute the same
    /// schedule; different seeds permute only same-instant batches.
    std::uint64_t seed = 1;
    /// Step-phase parallelism. 1 = fully serial; > 1 steps each batch on
    /// a worker pool, with the flush phase always serial (commit barrier).
    std::size_t workers = 1;
    /// Advanced to each batch instant before stepping (never rewound);
    /// optional — a campaign without time-sensitive verifier logic can
    /// run clockless.
    obs::VirtualClock* clock = nullptr;
    /// Outbox flush target; required before run().
    net::Transport* transport = nullptr;
  };

  struct Stats {
    std::uint64_t steps = 0;            ///< total actor step() calls
    std::uint64_t batches = 0;          ///< distinct wakeup instants executed
    std::uint64_t max_batch = 0;        ///< largest same-instant batch
    std::uint64_t parallel_batches = 0; ///< batches stepped on the pool
  };

  explicit FleetScheduler(Config config);

  /// Register a borrowed actor; it must outlive run(). Returns its index
  /// (stable handle into actor()).
  std::size_t add(core::FlightActor& actor);

  /// Register an owned actor (kept alive by the scheduler).
  std::size_t adopt(std::unique_ptr<core::FlightActor> actor);

  /// Run every registered actor to completion. May be called once; actors
  /// added after a run() are not picked up.
  void run();

  std::size_t size() const { return actors_.size(); }
  core::FlightActor& actor(std::size_t index) { return *actors_[index]; }
  const core::FlightActor& actor(std::size_t index) const {
    return *actors_[index];
  }
  const Stats& stats() const { return stats_; }

 private:
  struct Entry {
    double time = 0.0;
    std::uint64_t tiebreak = 0;
    std::size_t index = 0;
    /// Min-heap order on (time, tiebreak, index) — index last so the
    /// order is total even on a tiebreak collision.
    bool operator>(const Entry& o) const {
      if (time != o.time) return time > o.time;
      if (tiebreak != o.tiebreak) return tiebreak > o.tiebreak;
      return index > o.index;
    }
  };

  std::uint64_t tiebreak_for(std::size_t index) const;

  Config config_;
  std::vector<core::FlightActor*> actors_;
  std::vector<std::unique_ptr<core::FlightActor>> owned_;
  std::optional<runtime::ThreadPool> pool_;
  Stats stats_;
};

}  // namespace alidrone::sim
