#include "sim/route.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace alidrone::sim {

Route::Route(geo::LocalFrame frame, std::vector<Waypoint> waypoints,
             double start_time, double max_speed_mps)
    : frame_(frame), waypoints_(std::move(waypoints)), start_time_(start_time) {
  if (waypoints_.size() < 2) {
    throw std::invalid_argument("Route: need at least two waypoints");
  }
  leg_start_times_.reserve(waypoints_.size());
  leg_start_times_.push_back(start_time);
  for (std::size_t i = 1; i < waypoints_.size(); ++i) {
    Waypoint& wp = waypoints_[i];
    if (wp.speed_mps <= 0.0) {
      throw std::invalid_argument("Route: leg speeds must be positive");
    }
    wp.speed_mps = std::min(wp.speed_mps, max_speed_mps);
    const double leg = geo::distance(waypoints_[i - 1].position, wp.position);
    length_ += leg;
    leg_start_times_.push_back(leg_start_times_.back() + leg / wp.speed_mps);
  }
  duration_ = leg_start_times_.back() - start_time;
}

geo::Vec2 Route::local_position_at(double unix_time) const {
  if (unix_time <= start_time_) return waypoints_.front().position;
  if (unix_time >= end_time()) return waypoints_.back().position;

  const auto it = std::upper_bound(leg_start_times_.begin(), leg_start_times_.end(),
                                   unix_time);
  const std::size_t leg = static_cast<std::size_t>(it - leg_start_times_.begin());
  // leg >= 1 because unix_time > start_time_.
  const double t0 = leg_start_times_[leg - 1];
  const double t1 = leg_start_times_[leg];
  const double w = t1 > t0 ? (unix_time - t0) / (t1 - t0) : 1.0;
  const geo::Vec2 a = waypoints_[leg - 1].position;
  const geo::Vec2 b = waypoints_[leg].position;
  return a + (b - a) * w;
}

gps::GpsFix Route::state_at(double unix_time) const {
  const double t = std::clamp(unix_time, start_time_, end_time());

  gps::GpsFix fix;
  fix.unix_time = unix_time;
  fix.position = frame_.to_geo(local_position_at(t));
  fix.altitude_m = altitude_at(t);
  fix.valid = true;

  // Speed and course from the active leg (zero past the ends).
  if (unix_time < start_time_ || unix_time > end_time()) {
    fix.speed_mps = 0.0;
    return fix;
  }
  const auto it = std::upper_bound(leg_start_times_.begin(), leg_start_times_.end(), t);
  std::size_t leg = static_cast<std::size_t>(it - leg_start_times_.begin());
  leg = std::clamp<std::size_t>(leg, 1, waypoints_.size() - 1);
  fix.speed_mps = waypoints_[leg].speed_mps;
  const geo::Vec2 dir = waypoints_[leg].position - waypoints_[leg - 1].position;
  // Course: degrees clockwise from north.
  double course = 90.0 - dir.angle() * 180.0 / std::numbers::pi;
  if (course < 0.0) course += 360.0;
  fix.course_deg = course;
  return fix;
}

double Route::altitude_at(double unix_time) const {
  const double t = std::clamp(unix_time, start_time_, end_time());
  if (t <= start_time_) return waypoints_.front().altitude_m;
  const auto it = std::upper_bound(leg_start_times_.begin(), leg_start_times_.end(), t);
  std::size_t leg = static_cast<std::size_t>(it - leg_start_times_.begin());
  leg = std::clamp<std::size_t>(leg, 1, waypoints_.size() - 1);
  const double t0 = leg_start_times_[leg - 1];
  const double t1 = leg_start_times_[leg];
  const double w = t1 > t0 ? (t - t0) / (t1 - t0) : 1.0;
  return waypoints_[leg - 1].altitude_m +
         w * (waypoints_[leg].altitude_m - waypoints_[leg - 1].altitude_m);
}

gps::PositionSource Route::as_position_source() const {
  return [route = *this](double t) { return route.state_at(t); };
}

}  // namespace alidrone::sim
