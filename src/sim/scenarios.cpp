#include "sim/scenarios.h"

#include <cmath>

#include "crypto/random.h"
#include "geo/units.h"

namespace alidrone::sim {

std::vector<geo::Circle> Scenario::local_zones() const {
  std::vector<geo::Circle> out;
  out.reserve(zones.size());
  for (const geo::GeoZone& z : zones) out.push_back(geo::to_local(frame, z));
  return out;
}

Scenario make_airport_scenario(double start_time) {
  // Anchor the local frame at the airport (the NFZ center).
  const geo::GeoPoint airport{40.0393, -88.2781};
  const geo::LocalFrame frame(airport);

  const double nfz_radius = geo::miles_to_meters(5.0);  // FAA airport rule

  // Start 30 ft outside the NFZ boundary, due east of the airport, then
  // drive away for ~3 miles over ~12 minutes on a gently bending road.
  const double start_r = nfz_radius + geo::feet_to_meters(30.0);
  std::vector<Waypoint> wps;
  wps.push_back({{start_r, 0.0}, 6.0});

  crypto::DeterministicRandom rng("airport-route");
  double x = start_r;
  double y = 0.0;
  const double total = geo::miles_to_meters(3.0);
  const int segments = 12;
  for (int i = 1; i <= segments; ++i) {
    const double leg = total / segments;
    // Mostly radial (east), with mild lateral drift like a county road.
    const double drift = (rng.uniform_double() - 0.5) * 0.3;
    x += leg * std::cos(drift);
    y += leg * std::sin(drift);
    // Car speed varies between ~5 and ~8.4 m/s (12-19 mph with stops),
    // giving ~12 minutes for the 3 miles.
    const double speed = 5.0 + 3.4 * rng.uniform_double();
    wps.push_back({{x, y}, speed});
  }

  Scenario s{
      "airport",
      Route(frame, std::move(wps), start_time),
      {geo::GeoZone{airport, nfz_radius}},
      frame,
  };
  return s;
}

Scenario make_residential_scenario(double start_time) {
  // Anchor at the start of the drive; streets run east then north.
  const geo::GeoPoint corner{40.1100, -88.2200};
  const geo::LocalFrame frame(corner);

  const double house_radius = geo::feet_to_meters(20.0);

  std::vector<geo::GeoZone> zones;
  crypto::DeterministicRandom rng("residential-houses");

  // Street 1: 800 m east, sparser houses with deeper setbacks.
  // Boundary distance when abreast = setback - radius, targeted at the
  // 50-100 ft band of Fig. 8(a)'s opening phase.
  const double street1_len = 800.0;
  const int street1_houses = 30;
  for (int i = 0; i < street1_houses; ++i) {
    const double along = (i + 0.5) * street1_len / street1_houses;
    const double setback_ft = 70.0 + 50.0 * rng.uniform_double();  // 70-120 ft
    const double side = (i % 2 == 0) ? 1.0 : -1.0;
    const geo::Vec2 center{along, side * geo::feet_to_meters(setback_ft)};
    zones.push_back({frame.to_geo(center), house_radius});
  }

  // Street 2: 810 m north, dense houses with shallow setbacks
  // (boundary 20-70 ft band). One house is placed at a 41 ft setback to
  // reproduce the paper's 21 ft closest approach.
  const double street2_len = 810.0;
  const int street2_houses = 64;
  const int closest_house = 40;
  for (int i = 0; i < street2_houses; ++i) {
    const double along = (i + 0.5) * street2_len / street2_houses;
    double setback_ft = 45.0 + 45.0 * rng.uniform_double();  // 45-90 ft
    if (i == closest_house) setback_ft = 41.0;               // min distance 21 ft
    const double side = (i % 2 == 0) ? 1.0 : -1.0;
    const geo::Vec2 center{street1_len + side * geo::feet_to_meters(setback_ft),
                           along};
    zones.push_back({frame.to_geo(center), house_radius});
  }

  // The drive: east along street 1 (~11 m/s), turn, north along street 2
  // (~9.5 m/s). Roughly one mile in ~155 s, matching Fig. 8's time axis.
  std::vector<Waypoint> wps;
  wps.push_back({{0.0, 0.0}, 11.0});
  wps.push_back({{street1_len * 0.5, 0.0}, 11.5});
  wps.push_back({{street1_len, 0.0}, 10.5});
  wps.push_back({{street1_len, street2_len * 0.3}, 9.5});
  wps.push_back({{street1_len, street2_len * 0.7}, 9.8});
  wps.push_back({{street1_len, street2_len}, 9.2});

  Scenario s{
      "residential",
      Route(frame, std::move(wps), start_time),
      std::move(zones),
      frame,
  };
  return s;
}

}  // namespace alidrone::sim
