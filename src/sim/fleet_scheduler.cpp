#include "sim/fleet_scheduler.h"

#include <stdexcept>

#include "runtime/parallel_for.h"

namespace alidrone::sim {

namespace {

/// splitmix64 — the standard 64-bit finalizer; decorrelates consecutive
/// actor indices under any seed so equal-time ordering is not simply
/// registration order.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

FleetScheduler::FleetScheduler(Config config) : config_(config) {
  if (config_.workers > 1) {
    pool_.emplace(runtime::ThreadPool::Config{config_.workers,
                                              "fleet-scheduler-pool"});
  }
}

std::size_t FleetScheduler::add(core::FlightActor& actor) {
  actors_.push_back(&actor);
  return actors_.size() - 1;
}

std::size_t FleetScheduler::adopt(std::unique_ptr<core::FlightActor> actor) {
  actors_.push_back(actor.get());
  owned_.push_back(std::move(actor));
  return actors_.size() - 1;
}

std::uint64_t FleetScheduler::tiebreak_for(std::size_t index) const {
  return splitmix64(config_.seed ^ static_cast<std::uint64_t>(index));
}

void FleetScheduler::run() {
  if (config_.transport == nullptr) {
    throw std::invalid_argument("FleetScheduler: transport is required");
  }

  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  for (std::size_t i = 0; i < actors_.size(); ++i) {
    if (!actors_[i]->done()) {
      heap.push(Entry{actors_[i]->next_wakeup(), tiebreak_for(i), i});
    }
  }

  std::vector<std::size_t> batch;
  while (!heap.empty()) {
    // Gather every actor due at the earliest instant. Exact double
    // equality is deliberate: co-scheduled actors share wakeups computed
    // from identical float accumulations, and near-misses *should* stay
    // distinct batches (they were distinct instants). Pops come out
    // already sorted by (time, tiebreak, index).
    batch.clear();
    const double t = heap.top().time;
    while (!heap.empty() && heap.top().time == t) {
      batch.push_back(heap.top().index);
      heap.pop();
    }

    if (config_.clock != nullptr) {
      const double delta = t - config_.clock->now();
      if (delta > 0.0) config_.clock->advance(delta);
    }

    // Step phase: mutually independent, so it may fan out. step() only
    // enqueues outbox sends — no transport I/O happens here.
    if (pool_ && batch.size() > 1) {
      ++stats_.parallel_batches;
      runtime::parallel_for(*pool_, 0, batch.size(),
                            [&](std::size_t i) { actors_[batch[i]]->step(); });
    } else {
      for (const std::size_t index : batch) actors_[index]->step();
    }
    stats_.steps += batch.size();
    ++stats_.batches;
    stats_.max_batch = std::max(stats_.max_batch,
                                static_cast<std::uint64_t>(batch.size()));

    // Commit barrier: flush serially in batch order. The Auditor-visible
    // request sequence — hence verdicts, dedup decisions, audit events
    // and the ledger — depends only on this order, never on which worker
    // stepped which actor first. Reply callbacks may move an actor's
    // wakeup (submission backoff), so next_wakeup() is read after flush.
    for (const std::size_t index : batch) {
      core::FlightActor& actor = *actors_[index];
      actor.flush(*config_.transport);
      if (!actor.done()) {
        heap.push(Entry{actor.next_wakeup(), tiebreak_for(index), index});
      }
    }
  }
}

}  // namespace alidrone::sim
