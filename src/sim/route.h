// Routes and kinematics for simulated flights/drives.
//
// A Route is a polyline of waypoints in a local planar frame with a speed
// per leg. state_at(t) yields the exact position, speed and course at any
// time — the ground truth the GPS receiver simulator samples. Speeds are
// clamped to a configurable maximum (the FAA 100 mph cap by default) so
// synthetic routes are always v_max-feasible, like a real drone's.
#pragma once

#include <vector>

#include "geo/geopoint.h"
#include "geo/units.h"
#include "geo/vec2.h"
#include "gps/fix.h"
#include "gps/receiver_sim.h"

namespace alidrone::sim {

struct Waypoint {
  geo::Vec2 position;      ///< local frame, meters
  double speed_mps = 10.0; ///< speed while traveling the leg *ending* here
  double altitude_m = 0.0; ///< AGL altitude at this waypoint (3D extension)
};

class Route {
 public:
  /// `frame` anchors the local coordinates; `start_time` is the unix time
  /// at the first waypoint. Throws std::invalid_argument for < 2 waypoints
  /// or non-positive speeds.
  Route(geo::LocalFrame frame, std::vector<Waypoint> waypoints,
        double start_time, double max_speed_mps = geo::kFaaMaxSpeedMps);

  double start_time() const { return start_time_; }
  double end_time() const { return start_time_ + duration_; }
  double duration() const { return duration_; }
  double length_m() const { return length_; }
  const geo::LocalFrame& frame() const { return frame_; }
  const std::vector<Waypoint>& waypoints() const { return waypoints_; }

  /// Ground-truth state at time t (clamped to the route's time span).
  gps::GpsFix state_at(double unix_time) const;

  /// Local-frame position at time t.
  geo::Vec2 local_position_at(double unix_time) const;

  /// Interpolated altitude at time t (clamped to the route's time span).
  double altitude_at(double unix_time) const;

  /// Adapter for GpsReceiverSim.
  gps::PositionSource as_position_source() const;

 private:
  geo::LocalFrame frame_;
  std::vector<Waypoint> waypoints_;
  double start_time_;
  std::vector<double> leg_start_times_;  // arrival time at each waypoint
  double duration_ = 0.0;
  double length_ = 0.0;
};

}  // namespace alidrone::sim
