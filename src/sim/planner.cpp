#include "sim/planner.h"

#include <cmath>
#include <limits>
#include <numbers>
#include <queue>

namespace alidrone::sim {

namespace {

bool segment_clear(geo::Vec2 a, geo::Vec2 b, const std::vector<geo::Circle>& zones,
                   double shrink_eps) {
  for (const geo::Circle& z : zones) {
    // Shrink by a hair so boundary nodes (which sit exactly on inflated
    // circles) can connect.
    const geo::Circle tight{z.center, z.radius - shrink_eps};
    if (tight.radius > 0.0 && geo::segment_intersects_circle(a, b, tight)) {
      return false;
    }
  }
  return true;
}

}  // namespace

double segment_poa_samples(geo::Vec2 a, geo::Vec2 b,
                           const std::vector<geo::Circle>& zones,
                           const PlannerConfig& config) {
  if (zones.empty()) return 0.0;
  const double length = geo::distance(a, b);
  if (length <= 0.0) return 0.0;

  // Integrate the required rate along the segment (trapezoid-free fixed
  // step; 5 m resolution is far finer than zone scales).
  const int steps = std::max(2, static_cast<int>(length / 5.0));
  double samples = 0.0;
  const double dt = length / steps / config.cruise_speed_mps;
  for (int i = 0; i <= steps; ++i) {
    const geo::Vec2 p = a + (b - a) * (static_cast<double>(i) / steps);
    double nearest = std::numeric_limits<double>::infinity();
    for (const geo::Circle& z : zones) {
      nearest = std::min(nearest, z.boundary_distance(p));
    }
    if (nearest <= 0.0) {
      samples += config.gps_rate_hz * dt;  // inside: max-rate best effort
      continue;
    }
    const double rate =
        std::min(config.vmax_mps / (2.0 * nearest), config.gps_rate_hz);
    samples += rate * dt;
  }
  return samples;
}

bool path_is_collision_free(const std::vector<geo::Vec2>& path,
                            const std::vector<geo::Circle>& zones) {
  for (std::size_t i = 1; i < path.size(); ++i) {
    for (const geo::Circle& z : zones) {
      if (geo::segment_intersects_circle(path[i - 1], path[i], z)) return false;
    }
  }
  return true;
}

PlanResult plan_route(geo::Vec2 start, geo::Vec2 goal,
                      const std::vector<geo::Circle>& zones,
                      const PlannerConfig& config) {
  std::vector<geo::Circle> inflated;
  inflated.reserve(zones.size());
  for (const geo::Circle& z : zones) {
    inflated.push_back({z.center, z.radius + config.clearance_m});
  }
  for (const geo::Circle& z : inflated) {
    if (z.contains(start) || z.contains(goal)) return {};
  }

  // Node set: start, goal, and ring samples around each inflated zone.
  // The ring sits at radius R/cos(pi/m) so the chord between adjacent
  // samples stays tangent to (never dips inside) the inflated circle —
  // straight chords between ring nodes are then usable as path segments,
  // which is what lets the graph route *around* a zone.
  std::vector<geo::Vec2> nodes{start, goal};
  const double ring_factor =
      1.0 / std::cos(std::numbers::pi / config.samples_per_zone) + 1e-9;
  for (const geo::Circle& z : inflated) {
    const double ring_radius = z.radius * ring_factor;
    for (int k = 0; k < config.samples_per_zone; ++k) {
      const double a = 2.0 * std::numbers::pi * k / config.samples_per_zone;
      const geo::Vec2 p{z.center.x + ring_radius * std::cos(a),
                        z.center.y + ring_radius * std::sin(a)};
      // Skip samples that land inside another inflated zone.
      bool free = true;
      for (const geo::Circle& other : inflated) {
        if (&other != &z && other.contains(p)) {
          free = false;
          break;
        }
      }
      if (free) nodes.push_back(p);
    }
  }

  const std::size_t n = nodes.size();
  constexpr double kEps = 1e-6;

  // Dijkstra over the implicit visibility graph (edges tested lazily).
  std::vector<double> dist(n, std::numeric_limits<double>::infinity());
  std::vector<std::size_t> prev(n, n);
  using Entry = std::pair<double, std::size_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  dist[0] = 0.0;
  pq.emplace(0.0, 0);

  std::vector<bool> done(n, false);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (done[u]) continue;
    done[u] = true;
    if (u == 1) break;  // goal settled

    for (std::size_t v = 0; v < n; ++v) {
      if (done[v]) continue;
      double w = geo::distance(nodes[u], nodes[v]);
      if (config.poa_sample_weight > 0.0) {
        // Cheap admissible pre-check first: the PoA term only adds cost.
        if (d + w >= dist[v]) continue;
        w += config.poa_sample_weight *
             segment_poa_samples(nodes[u], nodes[v], zones, config);
      }
      if (d + w >= dist[v]) continue;  // cannot improve; skip clearance test
      if (!segment_clear(nodes[u], nodes[v], inflated, kEps)) continue;
      dist[v] = d + w;
      prev[v] = u;
      pq.emplace(dist[v], v);
    }
  }

  if (!std::isfinite(dist[1])) return {};

  PlanResult result;
  result.found = true;
  std::vector<geo::Vec2> reversed;
  for (std::size_t at = 1; at != n; at = prev[at]) {
    reversed.push_back(nodes[at]);
    if (at == 0) break;
  }
  result.path.assign(reversed.rbegin(), reversed.rend());
  for (std::size_t i = 1; i < result.path.size(); ++i) {
    result.length_m += geo::distance(result.path[i - 1], result.path[i]);
    result.expected_poa_samples +=
        segment_poa_samples(result.path[i - 1], result.path[i], zones, config);
  }
  return result;
}

}  // namespace alidrone::sim
