// The paper's two field-study scenarios, rebuilt synthetically
// (Section VI-A; substitution for the authors' car-recorded GPS traces).
//
// Airport (Fig. 6): one NFZ of 5-mile radius centered on an airport. The
// trace starts ~30 ft outside the boundary and recedes ~3 miles over ~12
// minutes.
//
// Residential (Fig. 7/8): a ~1 mile drive past 94 house NFZs of 20 ft
// radius. Nearest-NFZ distance starts in the 50-100 ft band and tightens
// to 20-70 ft in the dense stretch, with a closest approach of ~21 ft —
// the profile Fig. 8(a) reports.
#pragma once

#include <vector>

#include "geo/zone.h"
#include "sim/route.h"

namespace alidrone::sim {

struct Scenario {
  std::string name;
  Route route;
  std::vector<geo::GeoZone> zones;
  geo::LocalFrame frame;

  /// Zones projected into the scenario's local frame.
  std::vector<geo::Circle> local_zones() const;
};

/// Fig. 6 setting. `start_time` is the unix time at the start of the drive.
Scenario make_airport_scenario(double start_time = 1528400000.0);

/// Fig. 7/8 setting.
Scenario make_residential_scenario(double start_time = 1528400000.0);

}  // namespace alidrone::sim
