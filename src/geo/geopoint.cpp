#include "geo/geopoint.h"

#include <cmath>
#include <numbers>

namespace alidrone::geo {

namespace {
constexpr double kDegToRad = std::numbers::pi / 180.0;
constexpr double kRadToDeg = 180.0 / std::numbers::pi;
}  // namespace

double haversine_distance(GeoPoint a, GeoPoint b) {
  const double lat1 = a.lat_deg * kDegToRad;
  const double lat2 = b.lat_deg * kDegToRad;
  const double dlat = (b.lat_deg - a.lat_deg) * kDegToRad;
  const double dlon = (b.lon_deg - a.lon_deg) * kDegToRad;

  const double s1 = std::sin(dlat / 2.0);
  const double s2 = std::sin(dlon / 2.0);
  const double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  return 2.0 * kEarthRadiusMeters * std::asin(std::min(1.0, std::sqrt(h)));
}

double initial_bearing_deg(GeoPoint a, GeoPoint b) {
  const double lat1 = a.lat_deg * kDegToRad;
  const double lat2 = b.lat_deg * kDegToRad;
  const double dlon = (b.lon_deg - a.lon_deg) * kDegToRad;

  const double y = std::sin(dlon) * std::cos(lat2);
  const double x =
      std::cos(lat1) * std::sin(lat2) - std::sin(lat1) * std::cos(lat2) * std::cos(dlon);
  double bearing = std::atan2(y, x) * kRadToDeg;
  if (bearing < 0.0) bearing += 360.0;
  return bearing;
}

GeoPoint destination_point(GeoPoint origin, double bearing_deg, double distance_m) {
  const double lat1 = origin.lat_deg * kDegToRad;
  const double lon1 = origin.lon_deg * kDegToRad;
  const double brg = bearing_deg * kDegToRad;
  const double ang = distance_m / kEarthRadiusMeters;

  const double lat2 = std::asin(std::sin(lat1) * std::cos(ang) +
                                std::cos(lat1) * std::sin(ang) * std::cos(brg));
  const double lon2 =
      lon1 + std::atan2(std::sin(brg) * std::sin(ang) * std::cos(lat1),
                        std::cos(ang) - std::sin(lat1) * std::sin(lat2));
  return {lat2 * kRadToDeg, lon2 * kRadToDeg};
}

LocalFrame::LocalFrame(GeoPoint origin) : origin_(origin) {
  meters_per_deg_lat_ = kEarthRadiusMeters * kDegToRad;
  meters_per_deg_lon_ =
      kEarthRadiusMeters * kDegToRad * std::cos(origin.lat_deg * kDegToRad);
}

Vec2 LocalFrame::to_local(GeoPoint p) const {
  return {(p.lon_deg - origin_.lon_deg) * meters_per_deg_lon_,
          (p.lat_deg - origin_.lat_deg) * meters_per_deg_lat_};
}

GeoPoint LocalFrame::to_geo(Vec2 v) const {
  return {origin_.lat_deg + v.y / meters_per_deg_lat_,
          origin_.lon_deg + v.x / meters_per_deg_lon_};
}

}  // namespace alidrone::geo
