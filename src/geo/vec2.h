// Minimal 2D vector math for planar (local ENU) geometry.
#pragma once

#include <cmath>

namespace alidrone::geo {

/// A point or displacement in a local planar frame, in meters.
/// x = East, y = North when produced by LocalFrame.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Vec2 operator-() const { return {-x, -y}; }
  constexpr Vec2& operator+=(Vec2 o) { x += o.x; y += o.y; return *this; }
  constexpr Vec2& operator-=(Vec2 o) { x -= o.x; y -= o.y; return *this; }
  constexpr bool operator==(const Vec2&) const = default;

  constexpr double dot(Vec2 o) const { return x * o.x + y * o.y; }
  /// z-component of the 3D cross product; sign gives turn direction.
  constexpr double cross(Vec2 o) const { return x * o.y - y * o.x; }
  double norm() const { return std::hypot(x, y); }
  constexpr double norm2() const { return x * x + y * y; }

  /// Unit vector in the same direction; returns {0,0} for the zero vector.
  Vec2 normalized() const {
    const double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
  }
  /// Counter-clockwise perpendicular.
  constexpr Vec2 perp() const { return {-y, x}; }
  /// Angle from +x axis in radians, range (-pi, pi].
  double angle() const { return std::atan2(y, x); }
};

constexpr Vec2 operator*(double s, Vec2 v) { return v * s; }

inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }
inline constexpr double distance2(Vec2 a, Vec2 b) { return (a - b).norm2(); }

/// 3D counterpart used by the altitude extension (Section VII-B1).
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3 operator+(Vec3 o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(Vec3 o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr bool operator==(const Vec3&) const = default;

  constexpr double dot(Vec3 o) const { return x * o.x + y * o.y + z * o.z; }
  double norm() const { return std::sqrt(x * x + y * y + z * z); }
  constexpr double norm2() const { return x * x + y * y + z * z; }
};

constexpr Vec3 operator*(double s, Vec3 v) { return v * s; }

inline double distance(Vec3 a, Vec3 b) { return (a - b).norm(); }

}  // namespace alidrone::geo
