// Circles and segment/circle predicates in the local planar frame.
#pragma once

#include <algorithm>

#include "geo/vec2.h"

namespace alidrone::geo {

/// A disk in the local frame: the paper's planar no-fly-zone shape.
struct Circle {
  Vec2 center;
  double radius = 0.0;

  bool contains(Vec2 p) const { return distance2(p, center) <= radius * radius; }

  /// Signed distance from `p` to the circle boundary: negative inside.
  double boundary_distance(Vec2 p) const { return distance(p, center) - radius; }

  constexpr bool operator==(const Circle&) const = default;
};

/// Distance from point `p` to segment [a, b].
inline double point_segment_distance(Vec2 p, Vec2 a, Vec2 b) {
  const Vec2 ab = b - a;
  const double len2 = ab.norm2();
  if (len2 == 0.0) return distance(p, a);
  const double t = std::clamp((p - a).dot(ab) / len2, 0.0, 1.0);
  return distance(p, a + ab * t);
}

/// True if segment [a, b] passes through (or touches) the disk.
inline bool segment_intersects_circle(Vec2 a, Vec2 b, const Circle& c) {
  return point_segment_distance(c.center, a, b) <= c.radius;
}

}  // namespace alidrone::geo
