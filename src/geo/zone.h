// Geodetic no-fly-zone records shared by the simulator and the protocol.
#pragma once

#include "geo/circle.h"
#include "geo/geopoint.h"

namespace alidrone::geo {

/// A circular no-fly-zone in geodetic coordinates: the paper's
/// z = (lat, lon, r) (Section III-A).
struct GeoZone {
  GeoPoint center;
  double radius_m = 0.0;

  constexpr bool operator==(const GeoZone&) const = default;
};

/// Project a geodetic zone into a local planar frame.
inline Circle to_local(const LocalFrame& frame, const GeoZone& z) {
  return {frame.to_local(z.center), z.radius_m};
}

/// A cylindrical 3D zone for the altitude extension (Section VII-B1):
/// z' = (lat, lon, alt, r).
struct GeoZone3 {
  GeoPoint center;
  double radius_m = 0.0;
  double ceiling_m = 0.0;  ///< cylinder extends from ground to this altitude

  constexpr bool operator==(const GeoZone3&) const = default;
};

}  // namespace alidrone::geo
