// Possible-traveling-range ellipse (paper Section IV-C1).
//
// Given two GPS samples S1 = (p1, t1), S2 = (p2, t2) and a maximum speed
// v_max, the drone's location at any intermediate time lies inside the
// ellipse with foci p1, p2 and focal-sum v_max * (t2 - t1):
//
//   E(S1, S2) = { p : |p - p1| + |p - p2| <= v_max * (t2 - t1) }
//
// A sample pair proves alibi with respect to an NFZ disk z iff E does not
// intersect z. AliDrone's protocol (eq. 1/2 and Algorithm 1) uses the
// *focal-distance* criterion
//
//   D1 + D2 >= v_max * (t2 - t1),   Di = dist(pi, center) - radius,
//
// which is a conservative (sufficient) condition for disjointness: for any
// point q of the disk, |q - pi| >= Di + radius - radius = Di... more
// precisely |q - pi| >= |pi - c| - r = Di, so the focal sum of any disk
// point is at least D1 + D2. This header provides both the paper's focal
// test (the canonical protocol predicate) and an exact geometric
// intersection test used in tests/ablations to quantify the conservatism.
#pragma once

#include "geo/circle.h"
#include "geo/vec2.h"

namespace alidrone::geo {

/// The possible-traveling-range ellipse between two timestamped positions.
class TravelEllipse {
 public:
  /// `focal_sum` = v_max * (t2 - t1); must be >= 0. If focal_sum is less
  /// than the inter-focus distance the "ellipse" is empty (the two samples
  /// are themselves infeasible at v_max — e.g. forged data).
  TravelEllipse(Vec2 f1, Vec2 f2, double focal_sum);

  /// Convenience: build from positions, timestamps and a speed limit.
  static TravelEllipse from_samples(Vec2 p1, double t1, Vec2 p2, double t2,
                                    double vmax);

  Vec2 focus1() const { return f1_; }
  Vec2 focus2() const { return f2_; }
  double focal_sum() const { return focal_sum_; }

  /// True if the two end samples are physically consistent with v_max,
  /// i.e. the ellipse is non-empty.
  bool feasible() const { return focal_sum_ >= interfocal_distance_; }

  /// Sum of distances from `p` to the two foci.
  double focal_distance_sum(Vec2 p) const;

  /// True if `p` lies inside or on the ellipse.
  bool contains(Vec2 p) const { return focal_distance_sum(p) <= focal_sum_; }

  /// The paper's conservative disjointness test (eq. 2): true when
  /// D1 + D2 >= focal_sum, with Di the distance from focus i to the circle
  /// boundary. If this returns true the ellipse provably does not reach
  /// into the NFZ. A false result does NOT always mean intersection.
  bool focal_test_disjoint(const Circle& z) const;

  /// Exact test: true iff the ellipse region and the disk share no point.
  /// Computed by minimizing the focal-distance sum over the disk (golden
  /// section over the circle boundary plus center/containment checks).
  bool exactly_disjoint(const Circle& z) const;

  /// Minimum of the focal-distance sum over the closed disk `z`.
  double min_focal_sum_over_disk(const Circle& z) const;

  /// Semi-major / semi-minor axes (0 if infeasible).
  double semi_major() const;
  double semi_minor() const;

 private:
  Vec2 f1_;
  Vec2 f2_;
  double focal_sum_;
  double interfocal_distance_;
};

}  // namespace alidrone::geo
