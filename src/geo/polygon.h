// Polygons and the smallest enclosing circle (paper Section VII-B2).
//
// The arbitrary-NFZ extension lets a Zone Owner register a polygonal zone;
// at registration the Auditor replaces it by the smallest circle enclosing
// all vertices (the "smallest circle problem", solvable in linear time —
// Megiddo 1983; we implement Welzl's randomized algorithm, expected linear).
#pragma once

#include <span>
#include <vector>

#include "geo/circle.h"
#include "geo/vec2.h"

namespace alidrone::geo {

/// A simple polygon given by its vertices in order (either orientation).
class Polygon {
 public:
  Polygon() = default;
  explicit Polygon(std::vector<Vec2> vertices) : vertices_(std::move(vertices)) {}

  const std::vector<Vec2>& vertices() const { return vertices_; }
  bool empty() const { return vertices_.empty(); }
  std::size_t size() const { return vertices_.size(); }

  /// Even-odd rule point containment (boundary counts as inside).
  bool contains(Vec2 p) const;

  /// Signed area (positive for counter-clockwise vertex order).
  double signed_area() const;

  Vec2 centroid() const;

 private:
  std::vector<Vec2> vertices_;
};

/// Smallest circle enclosing all points (Welzl's algorithm, expected O(n)).
/// Returns a zero-radius circle at the point for n == 1 and a
/// default-constructed circle for n == 0. Deterministic: the internal
/// shuffle uses a fixed seed so results are reproducible.
Circle smallest_enclosing_circle(std::span<const Vec2> points);

/// Circle through 1, 2 (diameter) or 3 (circumcircle) boundary points.
Circle circle_from(Vec2 a);
Circle circle_from(Vec2 a, Vec2 b);
Circle circle_from(Vec2 a, Vec2 b, Vec2 c);

}  // namespace alidrone::geo
