// 3D possible-traveling-range ellipsoid and cylindrical no-fly regions
// (paper Section VII-B1, the altitude extension).
//
// With 4-tuple samples S = (lat, lon, alt, t), the travel range between two
// samples is the prolate spheroid { p : |p-f1| + |p-f2| <= v_max (t2-t1) },
// and an NFZ z' = (lat, lon, alt, r) is a solid upright cylinder from the
// ground to altitude `alt` with base radius `r`. The pair proves alibi iff
// the spheroid and cylinder are disjoint.
#pragma once

#include "geo/vec2.h"

namespace alidrone::geo {

/// A solid upright cylinder: base disk of `radius` centered at (center.x,
/// center.y, 0), extending from altitude 0 up to `height`.
struct Cylinder {
  Vec2 center;
  double radius = 0.0;
  double height = 0.0;

  bool contains(Vec3 p) const {
    if (p.z < 0.0 || p.z > height) return false;
    const Vec2 q{p.x, p.y};
    return distance2(q, center) <= radius * radius;
  }

  /// Euclidean distance from `p` to the (closed, solid) cylinder; 0 inside.
  double distance_to(Vec3 p) const;

  /// Closest point of the cylinder to `p` (is `p` itself when inside).
  Vec3 project(Vec3 p) const;
};

/// The 3D travel-range region between two timestamped 3D positions.
class TravelEllipsoid {
 public:
  TravelEllipsoid(Vec3 f1, Vec3 f2, double focal_sum);

  static TravelEllipsoid from_samples(Vec3 p1, double t1, Vec3 p2, double t2,
                                      double vmax);

  Vec3 focus1() const { return f1_; }
  Vec3 focus2() const { return f2_; }
  double focal_sum() const { return focal_sum_; }
  bool feasible() const { return focal_sum_ >= distance(f1_, f2_); }

  double focal_distance_sum(Vec3 p) const;
  bool contains(Vec3 p) const { return focal_distance_sum(p) <= focal_sum_; }

  /// Conservative focal test against a cylinder: disjoint when
  /// dist(f1, cyl) + dist(f2, cyl) >= focal_sum (cf. eq. 2 in 2D).
  bool focal_test_disjoint(const Cylinder& z) const;

  /// Exact disjointness by minimizing the (convex) focal-distance sum over
  /// the (convex) cylinder via projected subgradient descent.
  bool exactly_disjoint(const Cylinder& z) const;

  /// Minimum focal-distance sum over the solid cylinder.
  double min_focal_sum_over_cylinder(const Cylinder& z) const;

 private:
  Vec3 f1_;
  Vec3 f2_;
  double focal_sum_;
};

}  // namespace alidrone::geo
