#include "geo/polygon.h"

#include <algorithm>
#include <cmath>
#include <random>

namespace alidrone::geo {

bool Polygon::contains(Vec2 p) const {
  const std::size_t n = vertices_.size();
  if (n < 3) return false;

  bool inside = false;
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    const Vec2 a = vertices_[j];
    const Vec2 b = vertices_[i];
    // Boundary: point on segment counts as inside.
    if (point_segment_distance(p, a, b) < 1e-12) return true;
    const bool crosses = (b.y > p.y) != (a.y > p.y);
    if (crosses) {
      const double x_at = b.x + (p.y - b.y) * (a.x - b.x) / (a.y - b.y);
      if (p.x < x_at) inside = !inside;
    }
  }
  return inside;
}

double Polygon::signed_area() const {
  const std::size_t n = vertices_.size();
  if (n < 3) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    acc += vertices_[j].cross(vertices_[i]);
  }
  return acc / 2.0;
}

Vec2 Polygon::centroid() const {
  const std::size_t n = vertices_.size();
  if (n == 0) return {};
  if (n < 3 || std::abs(signed_area()) < 1e-12) {
    Vec2 sum{};
    for (const Vec2 v : vertices_) sum += v;
    return sum / static_cast<double>(n);
  }
  double a = 0.0;
  Vec2 c{};
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    const double w = vertices_[j].cross(vertices_[i]);
    a += w;
    c += (vertices_[j] + vertices_[i]) * w;
  }
  return c / (3.0 * a);
}

Circle circle_from(Vec2 a) { return {a, 0.0}; }

Circle circle_from(Vec2 a, Vec2 b) {
  const Vec2 center = (a + b) * 0.5;
  return {center, distance(a, b) / 2.0};
}

Circle circle_from(Vec2 a, Vec2 b, Vec2 c) {
  // Circumcircle via perpendicular bisector intersection.
  const double d = 2.0 * (a.x * (b.y - c.y) + b.x * (c.y - a.y) + c.x * (a.y - b.y));
  if (std::abs(d) < 1e-14) {
    // Degenerate (collinear): fall back to the widest diameter circle.
    Circle best = circle_from(a, b);
    for (const Circle cand : {circle_from(a, c), circle_from(b, c)}) {
      if (cand.radius > best.radius) best = cand;
    }
    return best;
  }
  const double a2 = a.norm2();
  const double b2 = b.norm2();
  const double c2 = c.norm2();
  const Vec2 center{
      (a2 * (b.y - c.y) + b2 * (c.y - a.y) + c2 * (a.y - b.y)) / d,
      (a2 * (c.x - b.x) + b2 * (a.x - c.x) + c2 * (b.x - a.x)) / d};
  return {center, distance(center, a)};
}

namespace {

constexpr double kEncloseEps = 1e-7;

bool encloses(const Circle& c, Vec2 p) {
  return distance(p, c.center) <= c.radius + kEncloseEps;
}

// Welzl's move-to-front algorithm, iterative over boundary-set size to keep
// stack depth constant.
Circle welzl(std::vector<Vec2>& pts) {
  Circle c{};
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (i == 0 || !encloses(c, pts[i])) {
      c = circle_from(pts[i]);
      for (std::size_t j = 0; j < i; ++j) {
        if (!encloses(c, pts[j])) {
          c = circle_from(pts[i], pts[j]);
          for (std::size_t k = 0; k < j; ++k) {
            if (!encloses(c, pts[k])) {
              c = circle_from(pts[i], pts[j], pts[k]);
            }
          }
        }
      }
    }
  }
  return c;
}

}  // namespace

Circle smallest_enclosing_circle(std::span<const Vec2> points) {
  if (points.empty()) return {};
  std::vector<Vec2> pts(points.begin(), points.end());
  std::mt19937 rng(0xA11D70E5u);  // fixed seed: deterministic results
  std::shuffle(pts.begin(), pts.end(), rng);
  return welzl(pts);
}

}  // namespace alidrone::geo
