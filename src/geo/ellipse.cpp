#include "geo/ellipse.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace alidrone::geo {

TravelEllipse::TravelEllipse(Vec2 f1, Vec2 f2, double focal_sum)
    : f1_(f1),
      f2_(f2),
      focal_sum_(std::max(0.0, focal_sum)),
      interfocal_distance_(distance(f1, f2)) {}

TravelEllipse TravelEllipse::from_samples(Vec2 p1, double t1, Vec2 p2, double t2,
                                          double vmax) {
  return TravelEllipse(p1, p2, vmax * (t2 - t1));
}

double TravelEllipse::focal_distance_sum(Vec2 p) const {
  return distance(p, f1_) + distance(p, f2_);
}

bool TravelEllipse::focal_test_disjoint(const Circle& z) const {
  const double d1 = z.boundary_distance(f1_);
  const double d2 = z.boundary_distance(f2_);
  // A focus inside the zone can never be disjoint.
  if (d1 < 0.0 || d2 < 0.0) return false;
  return d1 + d2 >= focal_sum_;
}

double TravelEllipse::min_focal_sum_over_disk(const Circle& z) const {
  // The focal-distance sum g(p) = |p-f1| + |p-f2| is convex with global
  // minimum value |f1-f2| attained on the segment [f1, f2]. Over a convex
  // disk, the minimum is either that global minimum (segment meets the
  // disk) or lies on the disk boundary.
  if (segment_intersects_circle(f1_, f2_, z)) return interfocal_distance_;

  const auto boundary_point = [&](double theta) {
    return Vec2{z.center.x + z.radius * std::cos(theta),
                z.center.y + z.radius * std::sin(theta)};
  };
  const auto g = [&](double theta) { return focal_distance_sum(boundary_point(theta)); };

  // Coarse scan to bracket the minimum, then golden-section refinement.
  constexpr int kScan = 128;
  constexpr double kTwoPi = 2.0 * std::numbers::pi;
  double best_theta = 0.0;
  double best_val = g(0.0);
  for (int i = 1; i < kScan; ++i) {
    const double theta = kTwoPi * static_cast<double>(i) / kScan;
    const double v = g(theta);
    if (v < best_val) {
      best_val = v;
      best_theta = theta;
    }
  }

  double lo = best_theta - kTwoPi / kScan;
  double hi = best_theta + kTwoPi / kScan;
  constexpr double kGolden = 0.618033988749894848;
  double x1 = hi - kGolden * (hi - lo);
  double x2 = lo + kGolden * (hi - lo);
  double g1 = g(x1);
  double g2 = g(x2);
  for (int it = 0; it < 80 && (hi - lo) > 1e-12; ++it) {
    if (g1 < g2) {
      hi = x2;
      x2 = x1;
      g2 = g1;
      x1 = hi - kGolden * (hi - lo);
      g1 = g(x1);
    } else {
      lo = x1;
      x1 = x2;
      g1 = g2;
      x2 = lo + kGolden * (hi - lo);
      g2 = g(x2);
    }
  }
  return std::min({best_val, g1, g2});
}

bool TravelEllipse::exactly_disjoint(const Circle& z) const {
  if (!feasible()) return true;  // empty region intersects nothing
  return min_focal_sum_over_disk(z) > focal_sum_;
}

double TravelEllipse::semi_major() const {
  return feasible() ? focal_sum_ / 2.0 : 0.0;
}

double TravelEllipse::semi_minor() const {
  if (!feasible()) return 0.0;
  const double a = focal_sum_ / 2.0;
  const double c = interfocal_distance_ / 2.0;
  return std::sqrt(std::max(0.0, a * a - c * c));
}

}  // namespace alidrone::geo
