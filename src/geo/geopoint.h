// Geodetic coordinates and conversion to a local planar frame.
//
// The paper represents GPS samples as (latitude, longitude, timestamp)
// tuples. All alibi geometry (travel-range ellipses, NFZ circles) is done
// in a local East-North frame anchored near the operating area; at the
// ranges drones cover in one flight (a few miles) an equirectangular
// projection is accurate to well under a meter, far below GPS noise.
#pragma once

#include "geo/vec2.h"

namespace alidrone::geo {

/// Mean Earth radius (WGS-84 sphere approximation), meters.
inline constexpr double kEarthRadiusMeters = 6371008.8;

/// A WGS-84 geodetic position in decimal degrees.
struct GeoPoint {
  double lat_deg = 0.0;
  double lon_deg = 0.0;

  constexpr bool operator==(const GeoPoint&) const = default;
};

/// Great-circle distance between two geodetic points, in meters (haversine).
double haversine_distance(GeoPoint a, GeoPoint b);

/// Initial great-circle bearing from `a` to `b`, degrees clockwise from north
/// in [0, 360).
double initial_bearing_deg(GeoPoint a, GeoPoint b);

/// Point reached by traveling `distance_m` meters from `origin` along the
/// given bearing (degrees clockwise from north) on the great circle.
GeoPoint destination_point(GeoPoint origin, double bearing_deg, double distance_m);

/// A local tangent-plane frame anchored at a reference geodetic point.
///
/// to_local() maps geodetic coordinates to planar East/North meters;
/// to_geo() inverts the mapping. Uses the equirectangular approximation,
/// which is exact at the anchor and degrades quadratically with distance.
class LocalFrame {
 public:
  explicit LocalFrame(GeoPoint origin);

  Vec2 to_local(GeoPoint p) const;
  GeoPoint to_geo(Vec2 v) const;
  GeoPoint origin() const { return origin_; }

 private:
  GeoPoint origin_;
  double meters_per_deg_lat_;
  double meters_per_deg_lon_;
};

}  // namespace alidrone::geo
