#include "geo/ellipsoid.h"

#include <algorithm>
#include <cmath>

namespace alidrone::geo {

double Cylinder::distance_to(Vec3 p) const {
  const Vec2 q{p.x, p.y};
  const double radial = std::max(0.0, distance(q, center) - radius);
  double axial = 0.0;
  if (p.z < 0.0) {
    axial = -p.z;
  } else if (p.z > height) {
    axial = p.z - height;
  }
  return std::hypot(radial, axial);
}

Vec3 Cylinder::project(Vec3 p) const {
  const double z = std::clamp(p.z, 0.0, height);
  Vec2 q{p.x, p.y};
  const double d = distance(q, center);
  if (d > radius) {
    q = d > 0.0 ? center + (q - center) * (radius / d)
                : center + Vec2{radius, 0.0};
  }
  return {q.x, q.y, z};
}

TravelEllipsoid::TravelEllipsoid(Vec3 f1, Vec3 f2, double focal_sum)
    : f1_(f1), f2_(f2), focal_sum_(std::max(0.0, focal_sum)) {}

TravelEllipsoid TravelEllipsoid::from_samples(Vec3 p1, double t1, Vec3 p2,
                                              double t2, double vmax) {
  return TravelEllipsoid(p1, p2, vmax * (t2 - t1));
}

double TravelEllipsoid::focal_distance_sum(Vec3 p) const {
  return distance(p, f1_) + distance(p, f2_);
}

bool TravelEllipsoid::focal_test_disjoint(const Cylinder& z) const {
  const double d1 = z.distance_to(f1_);
  const double d2 = z.distance_to(f2_);
  if (d1 <= 0.0 || d2 <= 0.0) return false;
  return d1 + d2 >= focal_sum_;
}

double TravelEllipsoid::min_focal_sum_over_cylinder(const Cylinder& z) const {
  // g(p) = |p - f1| + |p - f2| is convex; the cylinder is convex. Projected
  // subgradient descent therefore converges to the global minimum.
  const auto subgrad = [&](Vec3 p) {
    Vec3 g{0, 0, 0};
    const Vec3 a = p - f1_;
    const Vec3 b = p - f2_;
    const double na = a.norm();
    const double nb = b.norm();
    if (na > 1e-12) g = g + a * (1.0 / na);
    if (nb > 1e-12) g = g + b * (1.0 / nb);
    return g;
  };

  // Start from the projection of the segment midpoint (unconstrained
  // minimizer region) onto the cylinder.
  Vec3 p = z.project((f1_ + f2_) * 0.5);
  double best = focal_distance_sum(p);

  // Diminishing step sizes scaled by problem extent.
  const double scale =
      std::max({distance(f1_, f2_), z.radius, z.height, 1.0});
  for (int k = 1; k <= 600; ++k) {
    const Vec3 g = subgrad(p);
    const double gn = g.norm();
    if (gn < 1e-12) break;  // at the unconstrained minimum
    const double step = 0.5 * scale / (gn * std::sqrt(static_cast<double>(k)));
    p = z.project(p - g * step);
    best = std::min(best, focal_distance_sum(p));
  }
  return best;
}

bool TravelEllipsoid::exactly_disjoint(const Cylinder& z) const {
  if (!feasible()) return true;
  // Small tolerance: the subgradient minimum is approached from above.
  return min_focal_sum_over_cylinder(z) > focal_sum_ + 1e-9;
}

}  // namespace alidrone::geo
