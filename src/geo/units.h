// Unit constants and conversions used throughout AliDrone.
//
// The paper mixes imperial units (FAA regulations: 100 mph speed cap,
// 5 mile airport no-fly radius, distances in feet) with metric GPS
// computations. All internal geometry is carried out in SI units
// (meters, seconds, m/s); these helpers convert at the boundaries.
#pragma once

namespace alidrone::geo {

inline constexpr double kMetersPerMile = 1609.344;
inline constexpr double kMetersPerFoot = 0.3048;
inline constexpr double kMetersPerNauticalMile = 1852.0;
inline constexpr double kKnotsToMetersPerSecond = kMetersPerNauticalMile / 3600.0;

/// FAA Part 107 speed limit for small UAS: 100 mph (paper, Section IV-C1).
inline constexpr double kFaaMaxSpeedMph = 100.0;

constexpr double mph_to_mps(double mph) { return mph * kMetersPerMile / 3600.0; }
constexpr double mps_to_mph(double mps) { return mps * 3600.0 / kMetersPerMile; }
constexpr double miles_to_meters(double mi) { return mi * kMetersPerMile; }
constexpr double meters_to_miles(double m) { return m / kMetersPerMile; }
constexpr double feet_to_meters(double ft) { return ft * kMetersPerFoot; }
constexpr double meters_to_feet(double m) { return m / kMetersPerFoot; }
constexpr double knots_to_mps(double kn) { return kn * kKnotsToMetersPerSecond; }
constexpr double mps_to_knots(double mps) { return mps / kKnotsToMetersPerSecond; }

/// v_max used by the Proof-of-Alibi travel-range computation (100 mph in m/s).
inline constexpr double kFaaMaxSpeedMps = kFaaMaxSpeedMph * kMetersPerMile / 3600.0;

}  // namespace alidrone::geo
