// SecureWorld and SecureMonitor — the TrustZone split (paper Fig. 4).
//
// SecureWorld owns everything the normal world must not touch: the key
// vault (T-), the GPS driver (mapped GPIO), secure storage and the
// registered Trusted Applications. SecureMonitor is the single gateway —
// the software model of the Secure Monitor Call (SMC): every invocation
// crosses the world boundary twice (entry and exit), which the monitor
// counts and charges to the CPU cost model.
//
// DroneTee is the convenience facade that wires a complete AliDrone
// client TEE: manufactured key vault, GPS driver fed from the (hardware)
// UART, GPS Sampler TA.
#pragma once

#include <map>
#include <memory>
#include <string_view>

#include "crypto/random.h"
#include "gps/driver.h"
#include "obs/clock.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "resource/cost_model.h"
#include "tee/gps_sampler_ta.h"
#include "tee/key_vault.h"
#include "tee/secure_storage.h"
#include "tee/trusted_app.h"

namespace alidrone::tee {

class SecureWorld {
 public:
  explicit SecureWorld(KeyVault vault);

  void register_ta(std::unique_ptr<TrustedApp> ta);

  const KeyVault& vault() const { return vault_; }
  SecureStorage& storage() { return storage_; }
  gps::GpsDriver& gps_driver() { return gps_driver_; }
  const gps::GpsDriver& gps_driver() const { return gps_driver_; }
  crypto::RandomSource& rng() { return *rng_; }

  /// Dispatch to a registered TA. Called by the SecureMonitor only.
  InvokeResult dispatch(const Uuid& uuid, SessionId session, std::uint32_t command,
                        std::span<const crypto::Bytes> params);

  bool has_ta(const Uuid& uuid) const { return tas_.contains(uuid); }
  TrustedApp* find_ta(const Uuid& uuid);

 private:
  KeyVault vault_;
  SecureStorage storage_;
  gps::GpsDriver gps_driver_;
  std::unique_ptr<crypto::RandomSource> rng_;
  std::map<Uuid, std::unique_ptr<TrustedApp>> tas_;
};

/// The normal world's only path into the secure world. Counters register
/// under an instance scope of "tee.monitor" in `registry` (the
/// process-wide registry when null).
class SecureMonitor {
 public:
  explicit SecureMonitor(SecureWorld& world,
                         obs::MetricsRegistry* registry = nullptr);

  /// One SMC round trip on the default session: normal -> secure -> normal.
  InvokeResult invoke(const Uuid& uuid, std::uint32_t command,
                      std::span<const crypto::Bytes> params = {});

  // --- GlobalPlatform-style sessions (TEEC_OpenSession & friends) ---
  // Per-session TA state (HMAC keys, batch buffers) is isolated between
  // clients; closing a session releases it.

  /// Returns 0 on failure (unknown TA); valid ids are >= 1.
  SessionId open_session(const Uuid& uuid);
  InvokeResult invoke(SessionId session, std::uint32_t command,
                      std::span<const crypto::Bytes> params = {});
  bool close_session(SessionId session);
  std::size_t open_session_count() const { return sessions_.size(); }

  std::uint64_t world_switches() const { return switches_->value(); }
  std::uint64_t invocations() const { return invocations_->value(); }

  /// Transient world-switch fault injection: with probability
  /// `busy_probability`, an invocation burns its switch pair but returns
  /// TeeStatus::kBusy without reaching the TA — the secure world was
  /// busy. Deterministic from `seed`; callers recover with bounded
  /// retries (see core::run_flight).
  struct FaultConfig {
    double busy_probability = 0.0;
    std::uint64_t seed = 1;
  };
  void set_faults(const FaultConfig& config);
  std::uint64_t injected_busy_faults() const { return injected_busy_->value(); }

  /// Charge each world switch to a CPU accountant (may be null to stop).
  void set_cost_meter(resource::CpuAccountant* cpu, resource::CostProfile profile);

  /// Trace each SMC switch pair (with its cost charge) as a kWorldSwitch
  /// event (null stops tracing).
  void set_trace(obs::FlightRecorder* recorder) { recorder_ = recorder; }
  /// Time authority stamped onto trace events (0 when unbound).
  void bind_clock(const obs::Clock* clock) { clock_ = clock; }

 private:
  SecureWorld& world_;
  FaultConfig faults_;
  crypto::DeterministicRandom fault_rng_{1};
  // Registry-backed counters.
  obs::Counter* switches_;
  obs::Counter* invocations_;
  obs::Counter* injected_busy_;

  /// True when this invocation should fail transiently.
  bool inject_busy();
  SessionId next_session_ = 1;
  std::map<SessionId, Uuid> sessions_;
  resource::CpuAccountant* cpu_ = nullptr;
  resource::CostProfile cost_profile_{};
  obs::FlightRecorder* recorder_ = nullptr;
  const obs::Clock* clock_ = nullptr;

  void charge_switch_pair();
};

/// DroneTee configuration (namespace scope so it can default-construct as
/// a defaulted constructor argument).
struct DroneTeeConfig {
  std::size_t key_bits = 1024;  // the paper benchmarks 1024 and 2048
  crypto::HashAlgorithm hash = crypto::HashAlgorithm::kSha1;
  std::string manufacturing_seed = "alidrone-device-0001";
  /// Section VII-A2: secure-world GPS plausibility checks.
  bool enable_plausibility_check = false;
  /// Registry for the vault's and monitor's counters (process-wide when
  /// null).
  obs::MetricsRegistry* metrics = nullptr;
  /// Trace world switches and GPS fix drops (null disables tracing).
  obs::FlightRecorder* recorder = nullptr;
};

/// A fully wired AliDrone client TEE.
class DroneTee {
 public:
  using Config = DroneTeeConfig;

  explicit DroneTee(Config config = {});

  /// The hardware UART wire from the GPS receiver into the secure world.
  void feed_gps(std::string_view nmea_bytes);

  /// Observe secure-world GPS pending-queue overflows (evidence loss);
  /// forwarded to the secure driver. Pass nullptr to clear.
  void set_gps_drop_listener(gps::GpsDriver::DropListener listener);

  /// Fixes the secure-world driver lost to pending-queue overflow.
  std::uint64_t gps_fixes_dropped() const;

  /// T+, as read by the operator when the device is merchandised.
  const crypto::RsaPublicKey& verification_key() const;

  SecureMonitor& monitor() { return monitor_; }
  const Uuid& sampler_uuid() const { return sampler_uuid_; }

  /// Point the TEE's cost accounting at a CPU meter (sampler + monitor).
  void set_cost_meter(resource::CpuAccountant* cpu, resource::CostProfile profile);

 private:
  std::unique_ptr<SecureWorld> world_;
  SecureMonitor monitor_;
  Uuid sampler_uuid_;
  GpsSamplerTA* sampler_ = nullptr;  // owned by world_
};

}  // namespace alidrone::tee
