// KeyVault — the TEE sign key T = (T+, T-) of Table I.
//
// The paper requires the keypair to be generated at manufacturing time
// with the private half accessible only inside the TEE. KeyVault owns the
// private key; its signing entry point is deliberately NOT exported from
// the secure world — only the GPS Sampler TA (which lives inside
// SecureWorld) can reach it, and the only normal-world path to that TA is
// SecureMonitor::invoke. The public verification key T+ is freely
// exportable (it is handed to the Auditor at drone registration).
//
// The vault also owns the per-key RsaSigningPlan — window tables for the
// CRT exponents and the reusable blinding pair. All of that precomputed
// secret-derived state lives inside the secure world and never crosses
// the boundary; normal-world code only ever sees finished signatures.
#pragma once

#include <memory>
#include <mutex>
#include <span>

#include "crypto/rsa.h"
#include "obs/metrics.h"

namespace alidrone::tee {

class KeyVault {
 public:
  /// "Manufacturing": generate the device keypair inside the vault. Plan
  /// counters register under an instance scope of "tee.key_vault" in
  /// `registry` (the process-wide registry when null).
  static KeyVault manufacture(std::size_t key_bits, crypto::RandomSource& rng,
                              obs::MetricsRegistry* registry = nullptr);

  /// T+ — safe to export.
  const crypto::RsaPublicKey& verification_key() const { return pub_; }

  std::size_t key_bits() const { return pub_.modulus_bits(); }

  /// Sign with T-. Only reachable from secure-world components.
  crypto::Bytes sign(std::span<const std::uint8_t> message,
                     crypto::HashAlgorithm hash) const;

  /// Sign with Kocher blinding — the TEE signs attacker-influenced bytes
  /// (GPS data an adversary can shape through the UART), so the private
  /// exponentiation must not leak timing correlated with the message.
  crypto::Bytes sign_blinded(std::span<const std::uint8_t> message,
                             crypto::HashAlgorithm hash,
                             crypto::RandomSource& rng) const;

  /// Fast path: blinded signature through the vault's RsaSigningPlan
  /// (cached CRT window plans + blinding-pair reuse + CRT fault guard).
  /// Byte-identical to sign()/sign_blinded() output; serialized with an
  /// internal mutex because the plan state is mutable.
  crypto::Bytes sign_fast(std::span<const std::uint8_t> message,
                          crypto::HashAlgorithm hash,
                          crypto::RandomSource& rng) const;

  /// Plan introspection for tests/benches — a point-in-time view over the
  /// vault's registry counters (sign_fast publishes plan deltas there).
  struct PlanStats {
    std::uint64_t private_ops = 0;
    std::uint64_t blinding_refreshes = 0;
    std::uint64_t crt_fault_fallbacks = 0;
  };
  PlanStats plan_stats() const;

  /// Decrypt a message encrypted under T+ (used by the symmetric-key
  /// session establishment in the Section VII-A1a extension).
  std::optional<crypto::Bytes> decrypt(std::span<const std::uint8_t> ciphertext) const;

  KeyVault(const KeyVault&) = delete;  // the private key must not be copied out
  KeyVault& operator=(const KeyVault&) = delete;
  KeyVault(KeyVault&&) = default;
  KeyVault& operator=(KeyVault&&) = default;

 private:
  KeyVault(crypto::RsaKeyPair kp, obs::MetricsRegistry* registry);

  crypto::RsaPrivateKey priv_;
  crypto::RsaPublicKey pub_;
  // Plan state mutates on every signature, so sign_fast (const, like the
  // other sign entry points) guards it; unique_ptrs keep the vault movable.
  mutable std::unique_ptr<std::mutex> plan_mu_;
  mutable std::unique_ptr<crypto::RsaSigningPlan> plan_;
  // Registry-backed plan counters (what plan_stats() reads).
  obs::Counter* private_ops_;
  obs::Counter* blinding_refreshes_;
  obs::Counter* crt_fault_fallbacks_;
};

}  // namespace alidrone::tee
