#include "tee/secure_monitor.h"

namespace alidrone::tee {

SecureWorld::SecureWorld(KeyVault vault)
    : vault_(std::move(vault)),
      rng_(std::make_unique<crypto::SecureRandom>()) {}

void SecureWorld::register_ta(std::unique_ptr<TrustedApp> ta) {
  const Uuid id = ta->uuid();
  tas_[id] = std::move(ta);
}

InvokeResult SecureWorld::dispatch(const Uuid& uuid, SessionId session,
                                   std::uint32_t command,
                                   std::span<const crypto::Bytes> params) {
  const auto it = tas_.find(uuid);
  if (it == tas_.end()) return {TeeStatus::kNotFound, {}};
  return it->second->invoke(session, command, params);
}

TrustedApp* SecureWorld::find_ta(const Uuid& uuid) {
  const auto it = tas_.find(uuid);
  return it == tas_.end() ? nullptr : it->second.get();
}

SecureMonitor::SecureMonitor(SecureWorld& world, obs::MetricsRegistry* registry)
    : world_(world) {
  obs::MetricsRegistry& reg =
      registry != nullptr ? *registry : obs::MetricsRegistry::global();
  const std::string scope = reg.instance_scope("tee.monitor");
  switches_ = &reg.counter(scope + ".world_switches");
  invocations_ = &reg.counter(scope + ".invocations");
  injected_busy_ = &reg.counter(scope + ".busy_faults_injected");
}

void SecureMonitor::charge_switch_pair() {
  switches_->add(2);  // SMC entry + return
  double pair_cost = 0.0;
  if (cpu_ != nullptr) {
    cpu_->charge(resource::Op::kWorldSwitch, cost_profile_);
    cpu_->charge(resource::Op::kWorldSwitch, cost_profile_);
    pair_cost = 2.0 * cost_profile_.world_switch;
  }
  if (recorder_ != nullptr) {
    recorder_->record(obs::TraceKind::kWorldSwitch,
                      clock_ != nullptr ? clock_->now() : 0.0,
                      /*a=*/2,
                      /*b=*/static_cast<std::uint64_t>(pair_cost * 1e9),
                      "smc-pair");
  }
}

void SecureMonitor::set_faults(const FaultConfig& config) {
  faults_ = config;
  fault_rng_ = crypto::DeterministicRandom(config.seed);
}

bool SecureMonitor::inject_busy() {
  if (faults_.busy_probability <= 0.0) return false;
  if (fault_rng_.uniform_double() >= faults_.busy_probability) return false;
  injected_busy_->increment();
  return true;
}

InvokeResult SecureMonitor::invoke(const Uuid& uuid, std::uint32_t command,
                                   std::span<const crypto::Bytes> params) {
  invocations_->increment();
  charge_switch_pair();  // a refused SMC still crossed the boundary twice
  if (inject_busy()) return {TeeStatus::kBusy, {}};
  return world_.dispatch(uuid, kDefaultSession, command, params);
}

SessionId SecureMonitor::open_session(const Uuid& uuid) {
  charge_switch_pair();
  TrustedApp* ta = world_.find_ta(uuid);
  if (ta == nullptr) return 0;
  const SessionId id = next_session_++;
  sessions_[id] = uuid;
  ta->on_session_open(id);
  return id;
}

InvokeResult SecureMonitor::invoke(SessionId session, std::uint32_t command,
                                   std::span<const crypto::Bytes> params) {
  const auto it = sessions_.find(session);
  if (it == sessions_.end()) return {TeeStatus::kAccessDenied, {}};
  invocations_->increment();
  charge_switch_pair();
  if (inject_busy()) return {TeeStatus::kBusy, {}};
  return world_.dispatch(it->second, session, command, params);
}

bool SecureMonitor::close_session(SessionId session) {
  const auto it = sessions_.find(session);
  if (it == sessions_.end()) return false;
  charge_switch_pair();
  if (TrustedApp* ta = world_.find_ta(it->second)) ta->on_session_close(session);
  sessions_.erase(it);
  return true;
}

void SecureMonitor::set_cost_meter(resource::CpuAccountant* cpu,
                                   resource::CostProfile profile) {
  cpu_ = cpu;
  cost_profile_ = profile;
}

namespace {
std::unique_ptr<SecureWorld> make_world(const DroneTee::Config& config) {
  crypto::DeterministicRandom manufacturing_rng(config.manufacturing_seed);
  return std::make_unique<SecureWorld>(
      KeyVault::manufacture(config.key_bits, manufacturing_rng, config.metrics));
}
}  // namespace

DroneTee::DroneTee(Config config)
    : world_(make_world(config)), monitor_(*world_, config.metrics) {
  if (config.recorder != nullptr) {
    monitor_.set_trace(config.recorder);
    world_->gps_driver().set_trace(config.recorder);
  }
  GpsSamplerTA::Config sampler_config;
  sampler_config.hash = config.hash;
  sampler_config.enable_plausibility_check = config.enable_plausibility_check;
  auto sampler = std::make_unique<GpsSamplerTA>(
      world_->vault(), world_->gps_driver(), world_->storage(), world_->rng(),
      sampler_config);
  sampler_ = sampler.get();
  sampler_uuid_ = sampler->uuid();
  world_->register_ta(std::move(sampler));
}

void DroneTee::feed_gps(std::string_view nmea_bytes) {
  world_->gps_driver().feed_bytes(nmea_bytes);
}

void DroneTee::set_gps_drop_listener(gps::GpsDriver::DropListener listener) {
  world_->gps_driver().set_drop_listener(std::move(listener));
}

std::uint64_t DroneTee::gps_fixes_dropped() const {
  return world_->gps_driver().dropped_fixes();
}

const crypto::RsaPublicKey& DroneTee::verification_key() const {
  return world_->vault().verification_key();
}

void DroneTee::set_cost_meter(resource::CpuAccountant* cpu,
                              resource::CostProfile profile) {
  monitor_.set_cost_meter(cpu, profile);
  sampler_->set_cost_meter(cpu, profile);
}

}  // namespace alidrone::tee
