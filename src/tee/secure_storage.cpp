#include "tee/secure_storage.h"

namespace alidrone::tee {

bool SecureStorage::put(const std::string& key, crypto::Bytes value) {
  std::size_t new_used = used_ + value.size();
  const auto it = objects_.find(key);
  if (it != objects_.end()) new_used -= it->second.size();
  if (new_used > capacity_) return false;

  if (it != objects_.end()) {
    it->second = std::move(value);
  } else {
    objects_.emplace(key, std::move(value));
  }
  used_ = new_used;
  return true;
}

std::optional<crypto::Bytes> SecureStorage::get(const std::string& key) const {
  const auto it = objects_.find(key);
  if (it == objects_.end()) return std::nullopt;
  return it->second;
}

bool SecureStorage::erase(const std::string& key) {
  const auto it = objects_.find(key);
  if (it == objects_.end()) return false;
  used_ -= it->second.size();
  objects_.erase(it);
  return true;
}

void SecureStorage::clear() {
  objects_.clear();
  used_ = 0;
}

}  // namespace alidrone::tee
