#include "tee/sample_codec.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace alidrone::tee {

namespace {

void put_i64(crypto::Bytes& out, std::int64_t v) {
  const auto u = static_cast<std::uint64_t>(v);
  for (int i = 7; i >= 0; --i) {
    out.push_back(static_cast<std::uint8_t>((u >> (8 * i)) & 0xFF));
  }
}

std::int64_t get_i64(std::span<const std::uint8_t> data, std::size_t offset) {
  std::uint64_t u = 0;
  for (int i = 0; i < 8; ++i) u = (u << 8) | data[offset + static_cast<std::size_t>(i)];
  return static_cast<std::int64_t>(u);
}

std::int64_t scale(double v, double factor) {
  return static_cast<std::int64_t>(std::llround(v * factor));
}

}  // namespace

crypto::Bytes encode_sample(const gps::GpsFix& fix) {
  crypto::Bytes out;
  out.reserve(kEncodedSampleSize);
  put_i64(out, scale(fix.position.lat_deg, 1e9));
  put_i64(out, scale(fix.position.lon_deg, 1e9));
  put_i64(out, scale(fix.altitude_m, 1e3));
  put_i64(out, scale(fix.unix_time, 1e6));
  return out;
}

std::optional<gps::GpsFix> decode_sample(std::span<const std::uint8_t> data) {
  if (data.size() != kEncodedSampleSize) return std::nullopt;

  const std::int64_t lat_e9 = get_i64(data, 0);
  const std::int64_t lon_e9 = get_i64(data, 8);
  const std::int64_t alt_mm = get_i64(data, 16);
  const std::int64_t time_us = get_i64(data, 24);

  // Physical plausibility doubles as overflow protection: inside these
  // bounds every value is far below 2^53, so the int64 <-> double round
  // trip is exact and signatures re-verify bit-for-bit.
  if (lat_e9 < -90'000'000'000LL || lat_e9 > 90'000'000'000LL) return std::nullopt;
  if (lon_e9 < -180'000'000'000LL || lon_e9 > 180'000'000'000LL) return std::nullopt;
  if (alt_mm < -100'000'000LL || alt_mm > 100'000'000LL) return std::nullopt;  // +-100 km
  if (time_us < 0 || time_us > 4'102'444'800'000'000LL) return std::nullopt;  // <= year 2100

  gps::GpsFix fix;
  fix.position.lat_deg = static_cast<double>(lat_e9) / 1e9;
  fix.position.lon_deg = static_cast<double>(lon_e9) / 1e9;
  fix.altitude_m = static_cast<double>(alt_mm) / 1e3;
  fix.unix_time = static_cast<double>(time_us) / 1e6;
  return fix;
}

std::int64_t time_us_of(double unix_time) { return scale(unix_time, 1e6); }

std::optional<std::int64_t> sample_time_us(std::span<const std::uint8_t> data) {
  if (data.size() != kEncodedSampleSize) return std::nullopt;
  return get_i64(data, 24);
}

namespace {

constexpr std::array<std::uint8_t, 5> kTeslaMagic = {'A', 'T', 'S', 'L', '1'};

void put_u32(crypto::Bytes& out, std::uint32_t v) {
  for (int i = 3; i >= 0; --i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

std::uint32_t get_u32(std::span<const std::uint8_t> data, std::size_t offset) {
  std::uint32_t u = 0;
  for (int i = 0; i < 4; ++i) u = (u << 8) | data[offset + static_cast<std::size_t>(i)];
  return u;
}

}  // namespace

crypto::Bytes tesla_commit_payload(const TeslaCommit& commit) {
  crypto::Bytes out;
  out.reserve(kTeslaCommitPayloadSize);
  out.insert(out.end(), kTeslaMagic.begin(), kTeslaMagic.end());
  out.insert(out.end(), commit.anchor.begin(), commit.anchor.end());
  put_u32(out, commit.chain_length);
  put_u32(out, commit.disclosure_delay);
  put_i64(out, static_cast<std::int64_t>(commit.interval_us));
  put_i64(out, commit.t0_us);
  return out;
}

std::optional<TeslaCommit> parse_tesla_commit(std::span<const std::uint8_t> data) {
  if (data.size() != kTeslaCommitPayloadSize) return std::nullopt;
  for (std::size_t i = 0; i < kTeslaMagic.size(); ++i) {
    if (data[i] != kTeslaMagic[i]) return std::nullopt;
  }
  TeslaCommit commit;
  std::copy_n(data.begin() + 5, commit.anchor.size(), commit.anchor.begin());
  commit.chain_length = get_u32(data, 37);
  commit.disclosure_delay = get_u32(data, 41);
  commit.interval_us = static_cast<std::uint64_t>(get_i64(data, 45));
  commit.t0_us = get_i64(data, 53);
  if (commit.chain_length == 0 || commit.interval_us == 0) return std::nullopt;
  return commit;
}

}  // namespace alidrone::tee
