#include "tee/sample_codec.h"

#include <cmath>

namespace alidrone::tee {

namespace {

void put_i64(crypto::Bytes& out, std::int64_t v) {
  const auto u = static_cast<std::uint64_t>(v);
  for (int i = 7; i >= 0; --i) {
    out.push_back(static_cast<std::uint8_t>((u >> (8 * i)) & 0xFF));
  }
}

std::int64_t get_i64(std::span<const std::uint8_t> data, std::size_t offset) {
  std::uint64_t u = 0;
  for (int i = 0; i < 8; ++i) u = (u << 8) | data[offset + static_cast<std::size_t>(i)];
  return static_cast<std::int64_t>(u);
}

std::int64_t scale(double v, double factor) {
  return static_cast<std::int64_t>(std::llround(v * factor));
}

}  // namespace

crypto::Bytes encode_sample(const gps::GpsFix& fix) {
  crypto::Bytes out;
  out.reserve(kEncodedSampleSize);
  put_i64(out, scale(fix.position.lat_deg, 1e9));
  put_i64(out, scale(fix.position.lon_deg, 1e9));
  put_i64(out, scale(fix.altitude_m, 1e3));
  put_i64(out, scale(fix.unix_time, 1e6));
  return out;
}

std::optional<gps::GpsFix> decode_sample(std::span<const std::uint8_t> data) {
  if (data.size() != kEncodedSampleSize) return std::nullopt;

  const std::int64_t lat_e9 = get_i64(data, 0);
  const std::int64_t lon_e9 = get_i64(data, 8);
  const std::int64_t alt_mm = get_i64(data, 16);
  const std::int64_t time_us = get_i64(data, 24);

  // Physical plausibility doubles as overflow protection: inside these
  // bounds every value is far below 2^53, so the int64 <-> double round
  // trip is exact and signatures re-verify bit-for-bit.
  if (lat_e9 < -90'000'000'000LL || lat_e9 > 90'000'000'000LL) return std::nullopt;
  if (lon_e9 < -180'000'000'000LL || lon_e9 > 180'000'000'000LL) return std::nullopt;
  if (alt_mm < -100'000'000LL || alt_mm > 100'000'000LL) return std::nullopt;  // +-100 km
  if (time_us < 0 || time_us > 4'102'444'800'000'000LL) return std::nullopt;  // <= year 2100

  gps::GpsFix fix;
  fix.position.lat_deg = static_cast<double>(lat_e9) / 1e9;
  fix.position.lon_deg = static_cast<double>(lon_e9) / 1e9;
  fix.altitude_m = static_cast<double>(alt_mm) / 1e3;
  fix.unix_time = static_cast<double>(time_us) / 1e6;
  return fix;
}

}  // namespace alidrone::tee
