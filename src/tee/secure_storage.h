// Secure storage — OP-TEE's trusted storage service, simplified.
//
// A key/value object store reachable only from secure-world components.
// The batch-signing extension caches GPS samples here until the flight
// ends (Section VII-A1b).
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>

#include "crypto/bytes.h"

namespace alidrone::tee {

class SecureStorage {
 public:
  /// Storage capacity in bytes (secure RAM is a scarce resource on real
  /// TEEs; OP-TEE's default shared memory is a few MB).
  explicit SecureStorage(std::size_t capacity_bytes = 4 * 1024 * 1024)
      : capacity_(capacity_bytes) {}

  /// Returns false when the write would exceed capacity.
  bool put(const std::string& key, crypto::Bytes value);

  std::optional<crypto::Bytes> get(const std::string& key) const;
  bool erase(const std::string& key);
  void clear();

  std::size_t used_bytes() const { return used_; }
  std::size_t capacity_bytes() const { return capacity_; }
  std::size_t object_count() const { return objects_.size(); }

 private:
  std::size_t capacity_;
  std::size_t used_ = 0;
  std::map<std::string, crypto::Bytes> objects_;
};

}  // namespace alidrone::tee
