#include "tee/gps_sampler_ta.h"

#include <algorithm>
#include <vector>

#include "crypto/hmac.h"
#include "tee/sample_codec.h"

namespace alidrone::tee {

GpsSamplerTA::GpsSamplerTA(const KeyVault& vault, gps::GpsDriver& driver,
                           SecureStorage& storage, crypto::RandomSource& rng,
                           Config config)
    : vault_(vault),
      driver_(driver),
      storage_(storage),
      rng_(rng),
      config_(config),
      plausibility_(config.plausibility) {}

void GpsSamplerTA::set_cost_meter(resource::CpuAccountant* cpu,
                                  resource::CostProfile profile) {
  cpu_ = cpu;
  cost_profile_ = profile;
}

void GpsSamplerTA::charge(resource::Op op) const {
  if (cpu_ != nullptr) cpu_->charge(op, cost_profile_);
}

void GpsSamplerTA::charge_sign() const {
  charge(vault_.key_bits() >= 2048 ? resource::Op::kRsaSign2048
                                   : resource::Op::kRsaSign1024);
}

std::string GpsSamplerTA::batch_key(SessionId session) const {
  return "poa.batch." + std::to_string(session);
}

bool GpsSamplerTA::environment_trusted(const gps::GpsFix& fix) {
  if (!config_.enable_plausibility_check) return true;
  return plausibility_.observe(fix);
}

void GpsSamplerTA::on_session_close(SessionId session) {
  storage_.erase(batch_key(session));
  sessions_.erase(session);
}

InvokeResult GpsSamplerTA::invoke(SessionId session, std::uint32_t command,
                                  std::span<const crypto::Bytes> params) {
  switch (static_cast<SamplerCommand>(command)) {
    case SamplerCommand::kGetGpsAuth:
      return get_gps_auth();
    case SamplerCommand::kGetGpsAuthCoalesced:
      return get_gps_auth_coalesced(params);
    case SamplerCommand::kGetPublicKey:
      return get_public_key();
    case SamplerCommand::kEstablishHmacKey:
      return establish_hmac_key(session, params);
    case SamplerCommand::kGetGpsHmac:
      return get_gps_hmac(session);
    case SamplerCommand::kBatchBegin:
      return batch_begin(session);
    case SamplerCommand::kBatchAppend:
      return batch_append(session);
    case SamplerCommand::kBatchFinalize:
      return batch_finalize(session);
    case SamplerCommand::kTeslaBegin:
      return tesla_begin(session, params);
    case SamplerCommand::kGetGpsTesla:
      return get_gps_tesla(session);
    case SamplerCommand::kTeslaDisclose:
      return tesla_disclose(session, params);
  }
  return {TeeStatus::kBadCommand, {}};
}

InvokeResult GpsSamplerTA::get_gps_auth() {
  const auto fix = driver_.get_gps();
  if (!fix || !fix->valid) return {TeeStatus::kNotReady, {}};
  if (!environment_trusted(*fix)) return {TeeStatus::kAccessDenied, {}};

  charge(resource::Op::kGpsReadParse);
  const crypto::Bytes sample = encode_sample(*fix);
  charge_sign();
  // Blinded (the signed bytes are attacker-influenced, UART-fed GPS data),
  // through the vault's cached signing plan.
  crypto::Bytes signature = vault_.sign_fast(sample, config_.hash, rng_);
  return {TeeStatus::kSuccess, {sample, std::move(signature)}};
}

InvokeResult GpsSamplerTA::get_gps_auth_coalesced(
    std::span<const crypto::Bytes> params) {
  // Optional param 0: max samples to sign this invoke (4 bytes BE).
  std::size_t limit = config_.max_coalesced_samples;
  if (!params.empty()) {
    if (params[0].size() != 4) return {TeeStatus::kBadParameters, {}};
    const std::uint32_t requested = (std::uint32_t{params[0][0]} << 24) |
                                    (std::uint32_t{params[0][1]} << 16) |
                                    (std::uint32_t{params[0][2]} << 8) |
                                    std::uint32_t{params[0][3]};
    if (requested == 0) return {TeeStatus::kBadParameters, {}};
    limit = std::min<std::size_t>(limit, requested);
  }

  const std::vector<gps::GpsFix> fixes = driver_.take_pending(limit);
  if (fixes.empty()) return {TeeStatus::kNotReady, {}};

  // All signing happens inside this single invoke: the monitor charged
  // one world-switch pair on entry, so N samples amortize the SMC cost —
  // only the per-sample read/parse and sign work below scales with N.
  InvokeResult result{TeeStatus::kSuccess, {}};
  result.outputs.reserve(2 * fixes.size());
  for (const gps::GpsFix& fix : fixes) {
    if (!fix.valid) continue;
    // The plausibility monitor observes every fix (its jump/clock checks
    // need the full stream); a distrusted environment aborts the batch.
    if (!environment_trusted(fix)) return {TeeStatus::kAccessDenied, {}};
    charge(resource::Op::kGpsReadParse);
    crypto::Bytes sample = encode_sample(fix);
    charge_sign();
    crypto::Bytes signature = vault_.sign_fast(sample, config_.hash, rng_);
    result.outputs.push_back(std::move(sample));
    result.outputs.push_back(std::move(signature));
  }
  if (result.outputs.empty()) return {TeeStatus::kNotReady, {}};
  return result;
}

InvokeResult GpsSamplerTA::get_public_key() const {
  const crypto::RsaPublicKey& pub = vault_.verification_key();
  return {TeeStatus::kSuccess, {pub.n.to_bytes(), pub.e.to_bytes()}};
}

InvokeResult GpsSamplerTA::establish_hmac_key(SessionId session,
                                              std::span<const crypto::Bytes> params) {
  if (params.size() != 2 || params[0].empty() || params[1].empty()) {
    return {TeeStatus::kBadParameters, {}};
  }
  crypto::RsaPublicKey auditor_key;
  auditor_key.n = crypto::BigInt::from_bytes(params[0]);
  auditor_key.e = crypto::BigInt::from_bytes(params[1]);
  if (auditor_key.n.bit_length() < 512) return {TeeStatus::kBadParameters, {}};

  // Fresh session key, encrypted so only the Auditor can read it, and
  // signed with T- so the Auditor knows it came from this TEE.
  SessionState& st = state(session);
  st.hmac_key = rng_.bytes(32);
  crypto::Bytes encrypted;
  try {
    encrypted = crypto::rsa_encrypt(auditor_key, st.hmac_key, rng_);
  } catch (const std::length_error&) {
    st.hmac_key.clear();
    return {TeeStatus::kBadParameters, {}};
  }
  charge_sign();
  crypto::Bytes signature = vault_.sign(encrypted, config_.hash);
  return {TeeStatus::kSuccess, {encrypted, std::move(signature)}};
}

InvokeResult GpsSamplerTA::get_gps_hmac(SessionId session) {
  SessionState& st = state(session);
  if (st.hmac_key.empty()) return {TeeStatus::kNotReady, {}};
  const auto fix = driver_.get_gps();
  if (!fix || !fix->valid) return {TeeStatus::kNotReady, {}};
  if (!environment_trusted(*fix)) return {TeeStatus::kAccessDenied, {}};

  charge(resource::Op::kGpsReadParse);
  const crypto::Bytes sample = encode_sample(*fix);
  charge(resource::Op::kHmacSign);
  const auto tag = crypto::HmacSha256::mac(st.hmac_key, sample);
  return {TeeStatus::kSuccess, {sample, crypto::Bytes(tag.begin(), tag.end())}};
}

InvokeResult GpsSamplerTA::batch_begin(SessionId session) {
  SessionState& st = state(session);
  storage_.erase(batch_key(session));
  if (!storage_.put(batch_key(session), {})) return {TeeStatus::kOutOfResources, {}};
  st.batch_active = true;
  st.batch_count = 0;
  return {TeeStatus::kSuccess, {}};
}

InvokeResult GpsSamplerTA::batch_append(SessionId session) {
  SessionState& st = state(session);
  if (!st.batch_active) return {TeeStatus::kNotReady, {}};
  if (st.batch_count >= config_.batch_capacity_samples) {
    return {TeeStatus::kOutOfResources, {}};
  }
  const auto fix = driver_.get_gps();
  if (!fix || !fix->valid) return {TeeStatus::kNotReady, {}};
  if (!environment_trusted(*fix)) return {TeeStatus::kAccessDenied, {}};

  charge(resource::Op::kGpsReadParse);
  const crypto::Bytes sample = encode_sample(*fix);
  crypto::Bytes batch = storage_.get(batch_key(session)).value_or(crypto::Bytes{});
  batch.insert(batch.end(), sample.begin(), sample.end());
  if (!storage_.put(batch_key(session), std::move(batch))) {
    return {TeeStatus::kOutOfResources, {}};
  }
  ++st.batch_count;
  return {TeeStatus::kSuccess, {sample}};
}

InvokeResult GpsSamplerTA::batch_finalize(SessionId session) {
  SessionState& st = state(session);
  if (!st.batch_active) return {TeeStatus::kNotReady, {}};
  const auto batch = storage_.get(batch_key(session));
  if (!batch || batch->empty()) return {TeeStatus::kNotReady, {}};

  charge_sign();
  crypto::Bytes signature = vault_.sign_fast(*batch, config_.hash, rng_);
  st.batch_active = false;
  st.batch_count = 0;
  storage_.erase(batch_key(session));
  return {TeeStatus::kSuccess, {*batch, std::move(signature)}};
}

namespace {

std::uint64_t read_be(const crypto::Bytes& b, std::size_t offset,
                      std::size_t width) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < width; ++i) v = (v << 8) | b[offset + i];
  return v;
}

crypto::Bytes be64_bytes(std::uint64_t v) {
  crypto::Bytes out(8);
  for (int i = 0; i < 8; ++i) {
    out[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((v >> (8 * (7 - i))) & 0xFF);
  }
  return out;
}

}  // namespace

InvokeResult GpsSamplerTA::tesla_begin(SessionId session,
                                       std::span<const crypto::Bytes> params) {
  if (params.size() != 3 || params[0].size() != 4 || params[1].size() != 4 ||
      params[2].size() != 8) {
    return {TeeStatus::kBadParameters, {}};
  }
  const auto chain_length = static_cast<std::uint32_t>(read_be(params[0], 0, 4));
  const auto delay = static_cast<std::uint32_t>(read_be(params[1], 0, 4));
  const std::uint64_t interval_us = read_be(params[2], 0, 8);
  if (chain_length == 0 || chain_length > config_.tesla_max_chain_length ||
      delay == 0 || interval_us == 0) {
    return {TeeStatus::kBadParameters, {}};
  }
  // The flight epoch is the TA's own GPS time base; refusing to start
  // without a fix keeps both halves of the disclosure schedule (here and
  // at the Auditor) anchored to the same clock.
  const auto fix = driver_.get_gps();
  if (!fix || !fix->valid) return {TeeStatus::kNotReady, {}};
  if (!environment_trusted(*fix)) return {TeeStatus::kAccessDenied, {}};

  SessionState& st = state(session);
  crypto::ChainKey seed{};
  rng_.fill(seed);
  st.tesla_chain = std::make_unique<crypto::HashChain>(seed, chain_length);
  st.tesla_t0_us = time_us_of(fix->unix_time);
  st.tesla_interval_us = interval_us;
  st.tesla_delay = delay;

  TeslaCommit commit;
  commit.anchor = st.tesla_chain->anchor();
  commit.chain_length = chain_length;
  commit.disclosure_delay = delay;
  commit.interval_us = interval_us;
  commit.t0_us = st.tesla_t0_us;
  const crypto::Bytes payload = tesla_commit_payload(commit);
  charge_sign();
  // The one RSA private operation of the whole flight: every subsequent
  // sample costs one HMAC. Blinded + planned exactly like per-sample mode.
  crypto::Bytes signature = vault_.sign_fast(payload, config_.hash, rng_);
  return {TeeStatus::kSuccess, {payload, std::move(signature)}};
}

InvokeResult GpsSamplerTA::get_gps_tesla(SessionId session) {
  SessionState& st = state(session);
  if (st.tesla_chain == nullptr) return {TeeStatus::kNotReady, {}};
  const auto fix = driver_.get_gps();
  if (!fix || !fix->valid) return {TeeStatus::kNotReady, {}};
  if (!environment_trusted(*fix)) return {TeeStatus::kAccessDenied, {}};

  charge(resource::Op::kGpsReadParse);
  const crypto::Bytes sample = encode_sample(*fix);
  const auto t_us = sample_time_us(sample);
  const std::uint64_t interval =
      tesla_interval(t_us.value_or(-1), st.tesla_t0_us, st.tesla_interval_us);
  if (interval == 0) return {TeeStatus::kNotReady, {}};  // clock reversal
  if (interval > st.tesla_chain->length()) {
    return {TeeStatus::kOutOfResources, {}};  // chain exhausted
  }
  charge(resource::Op::kHmacSign);
  const crypto::ChainKey mac_key =
      crypto::tesla_mac_key(st.tesla_chain->key(interval));
  const crypto::ChainKey tag = crypto::tesla_tag(mac_key, interval, sample);
  return {TeeStatus::kSuccess,
          {sample, crypto::Bytes(tag.begin(), tag.end()),
           be64_bytes(interval)}};
}

InvokeResult GpsSamplerTA::tesla_disclose(SessionId session,
                                          std::span<const crypto::Bytes> params) {
  SessionState& st = state(session);
  if (st.tesla_chain == nullptr) return {TeeStatus::kNotReady, {}};
  if (params.size() != 1 || params[0].size() != 8) {
    return {TeeStatus::kBadParameters, {}};
  }
  const std::uint64_t index = read_be(params[0], 0, 8);
  if (index == 0 || index > st.tesla_chain->length()) {
    return {TeeStatus::kBadParameters, {}};
  }
  // Secure-world half of the TESLA security condition: K_index leaves the
  // TEE only after its scheduled disclosure time on the TA's GPS clock.
  const auto fix = driver_.get_gps();
  if (!fix || !fix->valid) return {TeeStatus::kNotReady, {}};
  const std::int64_t now_us = time_us_of(fix->unix_time);
  const std::int64_t release_us =
      st.tesla_t0_us +
      static_cast<std::int64_t>((index + st.tesla_delay) * st.tesla_interval_us);
  if (now_us < release_us) return {TeeStatus::kAccessDenied, {}};

  charge(resource::Op::kHmacSign);
  const crypto::ChainKey key = st.tesla_chain->key(index);
  return {TeeStatus::kSuccess, {crypto::Bytes(key.begin(), key.end())}};
}

}  // namespace alidrone::tee
