#include "tee/trusted_app.h"

#include <cstdio>

#include "crypto/sha256.h"

namespace alidrone::tee {

Uuid Uuid::from_name(std::string_view name) {
  const crypto::Sha256::Digest d = crypto::Sha256::hash(name);
  Uuid u;
  std::copy(d.begin(), d.begin() + 16, u.bytes.begin());
  return u;
}

std::string Uuid::to_string() const {
  char buf[40];
  std::snprintf(buf, sizeof(buf),
                "%02x%02x%02x%02x-%02x%02x-%02x%02x-%02x%02x-%02x%02x%02x%02x%02x%02x",
                bytes[0], bytes[1], bytes[2], bytes[3], bytes[4], bytes[5],
                bytes[6], bytes[7], bytes[8], bytes[9], bytes[10], bytes[11],
                bytes[12], bytes[13], bytes[14], bytes[15]);
  return buf;
}

std::string to_string(TeeStatus s) {
  switch (s) {
    case TeeStatus::kSuccess:
      return "success";
    case TeeStatus::kBadCommand:
      return "bad command";
    case TeeStatus::kBadParameters:
      return "bad parameters";
    case TeeStatus::kAccessDenied:
      return "access denied";
    case TeeStatus::kNotFound:
      return "not found";
    case TeeStatus::kNotReady:
      return "not ready";
    case TeeStatus::kOutOfResources:
      return "out of resources";
    case TeeStatus::kBusy:
      return "busy";
  }
  return "unknown";
}

}  // namespace alidrone::tee
