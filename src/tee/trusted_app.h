// Trusted Application model (paper Section II-C).
//
// Mirrors the GlobalPlatform TEE structure OP-TEE implements: every TA has
// a UUID, is invoked by (command id, parameter buffers) and returns a
// status plus output buffers. Normal-world code can only interact with a
// TA through the SecureMonitor — there is no other public path to the
// objects living in the secure world.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "crypto/bytes.h"

namespace alidrone::tee {

/// TA identity, formatted like OP-TEE UUIDs.
struct Uuid {
  std::array<std::uint8_t, 16> bytes{};

  auto operator<=>(const Uuid&) const = default;

  /// Deterministic UUID from a human-readable name (SHA-256 truncation).
  static Uuid from_name(std::string_view name);
  std::string to_string() const;
};

enum class TeeStatus : std::uint32_t {
  kSuccess = 0,
  kBadCommand,
  kBadParameters,
  kAccessDenied,
  kNotFound,
  kNotReady,       ///< e.g. no GPS fix available yet
  kOutOfResources,
  /// Transient: the secure world could not service the SMC right now
  /// (scheduler contention, interrupted world switch). Retrying the exact
  /// invocation a bounded number of times is the prescribed response.
  kBusy,
};

std::string to_string(TeeStatus s);

struct InvokeResult {
  TeeStatus status = TeeStatus::kSuccess;
  std::vector<crypto::Bytes> outputs;

  bool ok() const { return status == TeeStatus::kSuccess; }
};

/// Client session handle, as in the GlobalPlatform TEE Client API.
/// Session 0 is the implicit "default session" used by session-less
/// SecureMonitor::invoke calls.
using SessionId = std::uint64_t;
inline constexpr SessionId kDefaultSession = 0;

/// Interface every Trusted Application implements.
class TrustedApp {
 public:
  virtual ~TrustedApp() = default;

  virtual Uuid uuid() const = 0;
  virtual std::string name() const = 0;

  /// Handle one command invocation from the normal world within a
  /// session. Session-less monitors pass kDefaultSession.
  virtual InvokeResult invoke(SessionId session, std::uint32_t command,
                              std::span<const crypto::Bytes> params) = 0;

  /// Session lifecycle notifications (default: stateless TA, ignore).
  virtual void on_session_open(SessionId) {}
  virtual void on_session_close(SessionId) {}
};

}  // namespace alidrone::tee
