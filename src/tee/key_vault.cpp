#include "tee/key_vault.h"

namespace alidrone::tee {

KeyVault::KeyVault(crypto::RsaKeyPair kp)
    : priv_(std::move(kp.priv)),
      pub_(std::move(kp.pub)),
      plan_mu_(std::make_unique<std::mutex>()),
      plan_(std::make_unique<crypto::RsaSigningPlan>(priv_)) {}

KeyVault KeyVault::manufacture(std::size_t key_bits, crypto::RandomSource& rng) {
  return KeyVault(crypto::generate_rsa_keypair(key_bits, rng));
}

crypto::Bytes KeyVault::sign(std::span<const std::uint8_t> message,
                             crypto::HashAlgorithm hash) const {
  return crypto::rsa_sign(priv_, message, hash);
}

crypto::Bytes KeyVault::sign_blinded(std::span<const std::uint8_t> message,
                                     crypto::HashAlgorithm hash,
                                     crypto::RandomSource& rng) const {
  return crypto::rsa_sign_blinded(priv_, message, hash, rng);
}

crypto::Bytes KeyVault::sign_fast(std::span<const std::uint8_t> message,
                                  crypto::HashAlgorithm hash,
                                  crypto::RandomSource& rng) const {
  const std::lock_guard<std::mutex> lock(*plan_mu_);
  return plan_->sign(message, hash, rng);
}

KeyVault::PlanStats KeyVault::plan_stats() const {
  const std::lock_guard<std::mutex> lock(*plan_mu_);
  return {plan_->private_ops(), plan_->blinding_refreshes(),
          plan_->crt_fault_fallbacks()};
}

std::optional<crypto::Bytes> KeyVault::decrypt(
    std::span<const std::uint8_t> ciphertext) const {
  return crypto::rsa_decrypt(priv_, ciphertext);
}

}  // namespace alidrone::tee
