#include "tee/key_vault.h"

namespace alidrone::tee {

KeyVault::KeyVault(crypto::RsaKeyPair kp, obs::MetricsRegistry* registry)
    : priv_(std::move(kp.priv)),
      pub_(std::move(kp.pub)),
      plan_mu_(std::make_unique<std::mutex>()),
      plan_(std::make_unique<crypto::RsaSigningPlan>(priv_)) {
  obs::MetricsRegistry& reg =
      registry != nullptr ? *registry : obs::MetricsRegistry::global();
  const std::string scope = reg.instance_scope("tee.key_vault");
  private_ops_ = &reg.counter(scope + ".private_ops");
  blinding_refreshes_ = &reg.counter(scope + ".blinding_refreshes");
  crt_fault_fallbacks_ = &reg.counter(scope + ".crt_fault_fallbacks");
}

KeyVault KeyVault::manufacture(std::size_t key_bits, crypto::RandomSource& rng,
                               obs::MetricsRegistry* registry) {
  return KeyVault(crypto::generate_rsa_keypair(key_bits, rng), registry);
}

crypto::Bytes KeyVault::sign(std::span<const std::uint8_t> message,
                             crypto::HashAlgorithm hash) const {
  return crypto::rsa_sign(priv_, message, hash);
}

crypto::Bytes KeyVault::sign_blinded(std::span<const std::uint8_t> message,
                                     crypto::HashAlgorithm hash,
                                     crypto::RandomSource& rng) const {
  return crypto::rsa_sign_blinded(priv_, message, hash, rng);
}

crypto::Bytes KeyVault::sign_fast(std::span<const std::uint8_t> message,
                                  crypto::HashAlgorithm hash,
                                  crypto::RandomSource& rng) const {
  const std::lock_guard<std::mutex> lock(*plan_mu_);
  // Publish the plan's per-signature deltas to the registry — plan_stats()
  // reads only the registry, so the plan's internal tallies never become a
  // second externally visible source of truth.
  const std::uint64_t ops_before = plan_->private_ops();
  const std::uint64_t refreshes_before = plan_->blinding_refreshes();
  const std::uint64_t fallbacks_before = plan_->crt_fault_fallbacks();
  crypto::Bytes signature = plan_->sign(message, hash, rng);
  private_ops_->add(plan_->private_ops() - ops_before);
  blinding_refreshes_->add(plan_->blinding_refreshes() - refreshes_before);
  crt_fault_fallbacks_->add(plan_->crt_fault_fallbacks() - fallbacks_before);
  return signature;
}

KeyVault::PlanStats KeyVault::plan_stats() const {
  return {private_ops_->value(), blinding_refreshes_->value(),
          crt_fault_fallbacks_->value()};
}

std::optional<crypto::Bytes> KeyVault::decrypt(
    std::span<const std::uint8_t> ciphertext) const {
  return crypto::rsa_decrypt(priv_, ciphertext);
}

}  // namespace alidrone::tee
