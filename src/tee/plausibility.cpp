#include "tee/plausibility.h"

#include "geo/geopoint.h"

namespace alidrone::tee {

PlausibilityMonitor::PlausibilityMonitor(PlausibilityConfig config)
    : config_(config) {
  // A fresh monitor trusts its environment until evidence says otherwise.
  clean_streak_ = config_.quarantine_length;
}

void PlausibilityMonitor::reset() {
  has_last_ = false;
  clean_streak_ = config_.quarantine_length;
  anomalies_ = 0;
  last_reason_.clear();
}

bool PlausibilityMonitor::flag(const std::string& reason) {
  ++anomalies_;
  clean_streak_ = 0;
  last_reason_ = reason;
  return false;
}

bool PlausibilityMonitor::observe(const gps::GpsFix& fix) {
  bool ok = true;
  if (fix.speed_mps > config_.max_speed_mps) {
    ok = flag("reported speed exceeds physical limit");
  } else if (has_last_ && fix.unix_time < last_.unix_time - 1e-6) {
    ok = flag("timestamp went backwards");
  } else if (has_last_ && fix.unix_time > last_.unix_time + 1e-6) {
    const double dt = fix.unix_time - last_.unix_time;
    const double dist = geo::haversine_distance(last_.position, fix.position);
    if (dist > config_.max_speed_mps * dt + 1.0) {
      ok = flag("position jump implies impossible speed");
    }
  }

  has_last_ = true;
  last_ = fix;

  if (ok && clean_streak_ < config_.quarantine_length) {
    ++clean_streak_;  // serving quarantine
  }
  return ok && !suspicious();
}

}  // namespace alidrone::tee
