// GPS plausibility monitor (paper Section VII-A2).
//
// The paper proposes embedding a spoofing detector into the secure world:
// "if the hardware is running in a suspicious environment, the GPS
// Sampler can decline to provide authenticity services." This monitor
// implements the physical-consistency half of that idea: it watches the
// stream of fixes the driver produces and flags
//   - timestamps that go backwards,
//   - position jumps that imply speeds above the physical limit,
//   - reported ground speeds above the physical limit.
// After an anomaly the monitor stays suspicious until a run of
// consecutive clean observations passes (quarantine), so a spoofer cannot
// alternate good and bad fixes to slip signed samples through.
#pragma once

#include <cstdint>
#include <string>

#include "gps/fix.h"

namespace alidrone::tee {

struct PlausibilityConfig {
  /// Physical speed ceiling with margin; anything implying more is spoofed
  /// or broken. Default: 2x the FAA cap (drones legally top out at 100 mph
  /// but GPS noise and interpolation deserve headroom).
  double max_speed_mps = 89.4;
  /// Clean observations required to exit the suspicious state.
  int quarantine_length = 10;
};

class PlausibilityMonitor {
 public:
  explicit PlausibilityMonitor(PlausibilityConfig config = {});

  /// Feed the next fix; returns true when the fix (and the current state)
  /// is trustworthy enough to sign.
  bool observe(const gps::GpsFix& fix);

  bool suspicious() const { return clean_streak_ < config_.quarantine_length; }
  std::uint64_t anomalies() const { return anomalies_; }
  const std::string& last_reason() const { return last_reason_; }

  void reset();

 private:
  PlausibilityConfig config_;
  bool has_last_ = false;
  gps::GpsFix last_{};
  int clean_streak_ = 0;
  std::uint64_t anomalies_ = 0;
  std::string last_reason_;

  bool flag(const std::string& reason);
};

}  // namespace alidrone::tee
