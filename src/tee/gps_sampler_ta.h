// GPS Sampler — the Trusted Application at the heart of AliDrone
// (paper Sections IV-C2 and V-B).
//
// Runs in the secure world. On GetGPSAuth it reads the latest fix from the
// (secure-world) GPS driver, encodes it canonically and signs it with the
// TEE sign key T-. The private key never crosses the world boundary: the
// normal-world Adapter only ever sees (sample, signature) pairs.
//
// Beyond the paper's baseline command, this TA also implements the
// Section VII-A1 extensions:
//  - symmetric mode: an ephemeral HMAC session key established under the
//    Auditor's public encryption key, then per-sample MACs instead of RSA;
//  - batch mode: samples cached in secure storage, one signature over the
//    whole trace at flight end.
#pragma once

#include <map>
#include <memory>

#include "crypto/hash_chain.h"
#include "crypto/random.h"
#include "gps/driver.h"
#include "resource/cost_model.h"
#include "tee/key_vault.h"
#include "tee/plausibility.h"
#include "tee/secure_storage.h"
#include "tee/trusted_app.h"

namespace alidrone::tee {

/// Command identifiers for GpsSamplerTA::invoke.
enum class SamplerCommand : std::uint32_t {
  kGetGpsAuth = 1,        ///< out: [sample, rsa_signature]
  kGetPublicKey = 2,      ///< out: [modulus_n, exponent_e]
  kEstablishHmacKey = 3,  ///< in: [auditor_n, auditor_e]; out: [enc_key, signature]
  kGetGpsHmac = 4,        ///< out: [sample, hmac_tag]
  kBatchBegin = 5,        ///< start caching samples in secure storage
  kBatchAppend = 6,       ///< out: [sample]; cached, not signed
  kBatchFinalize = 7,     ///< out: [all_samples, one_signature]
  /// Coalesced GetGPSAuth: drain every GPS fix queued in the secure-world
  /// driver since the last invoke and sign each one, all inside a single
  /// world switch — the monitor charges one switch pair for N samples
  /// instead of N pairs. in: optionally [max_samples, 4 bytes BE];
  /// out: [sample_1, sig_1, sample_2, sig_2, ...], oldest first.
  kGetGpsAuthCoalesced = 8,
  /// TESLA mode (ROADMAP item 2): generate a per-flight hash chain inside
  /// the TEE and sign its commitment — the flight's ONE RSA private
  /// operation. in: [chain_length u32 BE, disclosure_delay u32 BE,
  /// interval_us u64 BE]; out: [commit_payload, rsa_signature] where the
  /// payload is tee::tesla_commit_payload (anchor, length, delay,
  /// interval, t0 = current-fix time).
  kTeslaBegin = 9,
  /// One authenticated TESLA sample: µs-class HMAC instead of an RSA
  /// sign. out: [sample, tag(32), interval u64 BE].
  kGetGpsTesla = 10,
  /// Disclose chain key K_index. The TA refuses until its own GPS time
  /// base has passed the key's scheduled disclosure time t0 + (index +
  /// delay) * interval — this is the secure-world half of the TESLA
  /// security condition: the normal world can never obtain a key early
  /// enough to forge a timely sample. in: [index u64 BE]; out: [key(32)].
  kTeslaDisclose = 11,
};

/// GpsSamplerTA configuration (defined at namespace scope so it can be a
/// defaulted constructor argument).
struct SamplerConfig {
  crypto::HashAlgorithm hash = crypto::HashAlgorithm::kSha1;  // paper default
  std::size_t batch_capacity_samples = 16384;
  /// Upper bound on samples signed by one kGetGpsAuthCoalesced invoke
  /// (bounds secure-world time per SMC; leftover fixes stay queued).
  std::size_t max_coalesced_samples = 32;
  /// Upper bound on a TESLA chain built by kTeslaBegin (bounds the
  /// secure-world memory/hash budget of a single flight).
  std::uint32_t tesla_max_chain_length = 1u << 20;
  /// Section VII-A2: refuse to sign fixes from a suspicious environment
  /// (impossible jumps/speeds, reversed clocks).
  bool enable_plausibility_check = false;
  PlausibilityConfig plausibility{};
};

class GpsSamplerTA final : public TrustedApp {
 public:
  using Config = SamplerConfig;

  /// All dependencies live in the secure world; the TA borrows them.
  /// The driver is mutable: the coalesced path drains its pending queue.
  GpsSamplerTA(const KeyVault& vault, gps::GpsDriver& driver,
               SecureStorage& storage, crypto::RandomSource& rng,
               Config config = {});

  Uuid uuid() const override { return Uuid::from_name("alidrone.gps_sampler"); }
  std::string name() const override { return "GPS Sampler"; }

  InvokeResult invoke(SessionId session, std::uint32_t command,
                      std::span<const crypto::Bytes> params) override;
  void on_session_close(SessionId session) override;

  /// Wire compute-cost accounting (may be null).
  void set_cost_meter(resource::CpuAccountant* cpu, resource::CostProfile profile);

 private:
  const KeyVault& vault_;
  gps::GpsDriver& driver_;
  SecureStorage& storage_;
  crypto::RandomSource& rng_;
  Config config_;

  /// Per-session client state, isolated as in OP-TEE: one client's HMAC
  /// key or batch buffer is invisible to another's session.
  struct SessionState {
    crypto::Bytes hmac_key;  // empty until established
    bool batch_active = false;
    std::size_t batch_count = 0;
    // TESLA mode: the flight's hash chain and commitment parameters live
    // only in the secure world; the normal world sees the anchor (in the
    // signed commit payload), tags, and keys it is allowed to learn.
    std::unique_ptr<crypto::HashChain> tesla_chain;
    std::int64_t tesla_t0_us = 0;
    std::uint64_t tesla_interval_us = 0;
    std::uint32_t tesla_delay = 0;
  };
  std::map<SessionId, SessionState> sessions_;

  // The physical environment is shared: one plausibility monitor.
  PlausibilityMonitor plausibility_;

  SessionState& state(SessionId session) { return sessions_[session]; }
  std::string batch_key(SessionId session) const;

  /// Returns false (and the caller must refuse service) when the
  /// plausibility monitor distrusts the environment.
  bool environment_trusted(const gps::GpsFix& fix);

  resource::CpuAccountant* cpu_ = nullptr;
  resource::CostProfile cost_profile_{};

  void charge(resource::Op op) const;
  void charge_sign() const;
  InvokeResult get_gps_auth();
  InvokeResult get_gps_auth_coalesced(std::span<const crypto::Bytes> params);
  InvokeResult get_public_key() const;
  InvokeResult establish_hmac_key(SessionId session,
                                  std::span<const crypto::Bytes> params);
  InvokeResult get_gps_hmac(SessionId session);
  InvokeResult batch_begin(SessionId session);
  InvokeResult batch_append(SessionId session);
  InvokeResult batch_finalize(SessionId session);
  InvokeResult tesla_begin(SessionId session,
                           std::span<const crypto::Bytes> params);
  InvokeResult get_gps_tesla(SessionId session);
  InvokeResult tesla_disclose(SessionId session,
                              std::span<const crypto::Bytes> params);
};

}  // namespace alidrone::tee
