// Canonical wire encoding of a GPS sample — the exact bytes the TEE signs.
//
// Signature verification at the Auditor must reproduce the signed bytes
// bit-for-bit, so samples cross the protocol as fixed-point integers:
//   int64 latitude  in nanodegrees   (exact for |lat| <= 90)
//   int64 longitude in nanodegrees
//   int64 altitude  in millimeters
//   int64 timestamp in microseconds since the Unix epoch
// all big-endian, 32 bytes total. Nanodegree resolution (~0.1 mm at the
// equator) is far below GPS accuracy, and every value round-trips exactly
// through double <-> int64 at these magnitudes.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "crypto/bytes.h"
#include "gps/fix.h"

namespace alidrone::tee {

inline constexpr std::size_t kEncodedSampleSize = 32;

/// Encode a fix into the canonical 32-byte representation.
crypto::Bytes encode_sample(const gps::GpsFix& fix);

/// Decode; nullopt when the buffer is not exactly 32 bytes.
std::optional<gps::GpsFix> decode_sample(std::span<const std::uint8_t> data);

}  // namespace alidrone::tee
