// Canonical wire encoding of a GPS sample — the exact bytes the TEE signs.
//
// Signature verification at the Auditor must reproduce the signed bytes
// bit-for-bit, so samples cross the protocol as fixed-point integers:
//   int64 latitude  in nanodegrees   (exact for |lat| <= 90)
//   int64 longitude in nanodegrees
//   int64 altitude  in millimeters
//   int64 timestamp in microseconds since the Unix epoch
// all big-endian, 32 bytes total. Nanodegree resolution (~0.1 mm at the
// equator) is far below GPS accuracy, and every value round-trips exactly
// through double <-> int64 at these magnitudes.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "crypto/bytes.h"
#include "gps/fix.h"

namespace alidrone::tee {

inline constexpr std::size_t kEncodedSampleSize = 32;

/// Encode a fix into the canonical 32-byte representation.
crypto::Bytes encode_sample(const gps::GpsFix& fix);

/// Decode; nullopt when the buffer is not exactly 32 bytes.
std::optional<gps::GpsFix> decode_sample(std::span<const std::uint8_t> data);

/// The codec's exact double -> int64 microsecond conversion, exposed so
/// the TESLA interval arithmetic (TA and Auditor alike) works on the same
/// integers that appear inside canonical sample bytes.
std::int64_t time_us_of(double unix_time);

/// µs timestamp of a canonical 32-byte sample (bytes 24..32, big-endian);
/// nullopt when the buffer is not exactly 32 bytes.
std::optional<std::int64_t> sample_time_us(std::span<const std::uint8_t> data);

// --- TESLA chain commitment -------------------------------------------
//
// The one RSA signature of a TESLA-mode flight covers this canonical
// payload. Both worlds must byte-agree on it: the TA builds + signs it,
// the Auditor re-builds it from the announce message and verifies with
// T+. Layout ("ATSL1" magic, all integers big-endian):
//   magic[5] | anchor[32] | chain_length u32 | disclosure_delay u32 |
//   interval_us u64 | t0_us i64
inline constexpr std::size_t kTeslaCommitPayloadSize = 5 + 32 + 4 + 4 + 8 + 8;

struct TeslaCommit {
  std::array<std::uint8_t, 32> anchor{};  ///< K_0
  std::uint32_t chain_length = 0;         ///< N: usable keys K_1..K_N
  std::uint32_t disclosure_delay = 0;     ///< d intervals before K_i is public
  std::uint64_t interval_us = 0;          ///< sampling interval tau
  std::int64_t t0_us = 0;                 ///< flight epoch (first-fix time)
};

crypto::Bytes tesla_commit_payload(const TeslaCommit& commit);
std::optional<TeslaCommit> parse_tesla_commit(std::span<const std::uint8_t> data);

/// Interval index of timestamp t against flight epoch t0: intervals are
/// 1-based (i = 1 covers [t0, t0 + tau)); returns 0 for t < t0 (clock
/// reversal — never a valid key index).
inline std::uint64_t tesla_interval(std::int64_t t_us, std::int64_t t0_us,
                                    std::uint64_t interval_us) {
  if (t_us < t0_us || interval_us == 0) return 0;
  return 1 + static_cast<std::uint64_t>(t_us - t0_us) / interval_us;
}

}  // namespace alidrone::tee
