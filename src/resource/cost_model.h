// Raspberry Pi 3 cost model (paper Section VI-B substitution).
//
// The paper measures AliDrone's CPU utilization with `top` on a Raspberry
// Pi 3 Model B (1.2 GHz quad-core ARMv8, 1 GB RAM) and derives power from
// the Kaup et al. model:  P(u) = 1.5778 W + 0.181 * u W,  u in [0, 1].
//
// This repository runs on different hardware, so Table II is regenerated
// through an explicit cost model: every protocol operation charges a
// calibrated amount of single-core busy time to a CpuAccountant, and the
// utilization/power/memory figures are computed exactly the way the paper
// computes them. The calibration constants come from inverting Table II:
// a 1024-bit sample (sign + encrypt + 2 world switches + read + persist)
// costs ~43.4 ms of one core (2.17 % of 4 cores at 2 Hz) and a 2048-bit
// sample ~218.8 ms (10.94 % at 2 Hz).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/clock.h"
#include "obs/metrics.h"

namespace alidrone::resource {

/// Operations the protocol charges for.
enum class Op {
  kWorldSwitch,     ///< one SMC secure<->normal transition (one direction)
  kGpsReadParse,    ///< read UART buffer + NMEA parse in the driver
  kRsaSign1024,     ///< RSASSA-PKCS1-v1_5 sign, 1024-bit key (in TEE)
  kRsaSign2048,     ///< RSASSA-PKCS1-v1_5 sign, 2048-bit key (in TEE)
  kRsaEncrypt1024,  ///< RSAES-PKCS1-v1_5 encrypt (public op, normal world)
  kRsaEncrypt2048,
  kHmacSign,        ///< symmetric-mode per-sample MAC (Section VII-A1a)
  kEcdsaSign,       ///< P-256 signature (the "more efficient scheme" of Section VI-B)
  kPersistSample,   ///< write ciphertext + signature to local storage
  kEllipseCheck,    ///< one adaptive-sampling distance/feasibility test
};

/// Per-operation busy time of one Pi 3 core, in seconds.
struct CostProfile {
  double world_switch = 0.0;
  double gps_read_parse = 0.0;
  double rsa_sign_1024 = 0.0;
  double rsa_sign_2048 = 0.0;
  double rsa_encrypt_1024 = 0.0;
  double rsa_encrypt_2048 = 0.0;
  double hmac_sign = 0.0;
  double ecdsa_sign = 0.0;
  double persist_sample = 0.0;
  double ellipse_check = 0.0;

  double cost(Op op) const;

  /// Calibration for the paper's platform (see file comment).
  static CostProfile raspberry_pi3();

  /// Total charge of one authenticated sample (GetGPSAuth + encrypt +
  /// persist) for the given key size.
  double per_sample_cost(std::size_t key_bits) const;
};

/// Integrates busy time against wall-clock time, like `top` averaged over
/// a run. The Pi has four cores and AliDrone is single-threaded, so the
/// "system utilization" the paper reports is busy/(wall*4), range [0, 25%].
///
/// Both integrals live in an obs::MetricsRegistry (instance scope
/// "resource.cpu") so every cost charge is visible in a metrics snapshot.
/// Wall time advances either manually (the flight loop owns its timeline)
/// or from a bound obs::Clock via sync_wall() — the same SimClock the
/// resilience layer runs on, so busy/wall ratios and fault windows share
/// one time authority.
class CpuAccountant {
 public:
  explicit CpuAccountant(int cores = 4,
                         obs::MetricsRegistry* registry = nullptr)
      : cores_(cores) {
    obs::MetricsRegistry& reg =
        registry != nullptr ? *registry : obs::MetricsRegistry::global();
    const std::string scope = reg.instance_scope("resource.cpu");
    busy_ = &reg.gauge(scope + ".busy_seconds");
    wall_ = &reg.gauge(scope + ".wall_seconds");
  }

  void charge(double busy_seconds) { busy_->add(busy_seconds); }
  void charge(Op op, const CostProfile& profile) { busy_->add(profile.cost(op)); }
  void advance_wall(double seconds) { wall_->add(seconds); }

  /// Bind the scenario's time authority; sync_wall() then integrates wall
  /// time from it. Elapsed time starts counting at the bind.
  void bind_clock(const obs::Clock* clock) {
    clock_ = clock;
    last_sync_ = clock != nullptr ? clock->now() : 0.0;
  }

  /// Advance wall time by however far the bound clock moved since the
  /// last sync (no-op when unbound). Composes with manual advance_wall.
  void sync_wall() {
    if (clock_ == nullptr) return;
    const double now = clock_->now();
    if (now > last_sync_) {
      wall_->add(now - last_sync_);
      last_sync_ = now;
    }
  }

  double busy_seconds() const { return busy_->value(); }
  double wall_seconds() const { return wall_->value(); }
  int cores() const { return cores_; }

  /// Fraction of ONE core that was busy, in [0, 1] when sustainable.
  double core_utilization() const {
    const double wall = wall_->value();
    return wall > 0.0 ? busy_->value() / wall : 0.0;
  }

  /// Percentage of the whole CPU (all cores), as `top` reports system-wide:
  /// [0, 100/cores] for a single-threaded process.
  double system_utilization_percent() const {
    return 100.0 * core_utilization() / cores_;
  }

  /// A single-threaded sampler cannot spend more than one core-second per
  /// second: demanded busy time above wall time means the configured
  /// sampling rate is not sustainable (Table II's "-" entries).
  bool sustainable() const { return busy_->value() <= wall_->value() + 1e-9; }

  void reset() {
    busy_->set(0.0);
    wall_->set(0.0);
    if (clock_ != nullptr) last_sync_ = clock_->now();
  }

 private:
  int cores_;
  obs::Gauge* busy_;
  obs::Gauge* wall_;
  const obs::Clock* clock_ = nullptr;
  double last_sync_ = 0.0;
};

/// Kaup et al. power model for the Raspberry Pi (paper eq. 4).
struct PowerModel {
  double idle_watts = 1.5778;
  double slope_watts = 0.181;

  /// `utilization` is the whole-system CPU fraction in [0, 1]
  /// (i.e. Table II's CPU% divided by 100).
  double power_watts(double utilization) const {
    return idle_watts + slope_watts * utilization;
  }
};

/// Radio energy model for the real-time-auditing tradeoff the paper
/// declines for battery reasons (Section IV-B step 4). Wi-Fi-class
/// figures: a transmission costs a fixed wake/association overhead plus
/// a per-byte marginal energy.
struct RadioModel {
  double per_transmission_j = 0.030;  ///< radio wake + header overhead
  double per_byte_j = 2.0e-6;         ///< marginal energy per payload byte

  double transmit_energy_j(std::size_t payload_bytes) const {
    return per_transmission_j + per_byte_j * static_cast<double>(payload_bytes);
  }
};

/// Tracks resident memory of the AliDrone client the way the paper reports
/// it: a fixed resident set for the TA + driver, plus the growing PoA
/// buffer awaiting upload.
class MemoryAccountant {
 public:
  static constexpr std::size_t kPi3TotalBytes = 1024ull * 1024 * 1024;  // 1 GB

  explicit MemoryAccountant(std::size_t baseline_bytes) : baseline_(baseline_bytes) {}

  void allocate(std::size_t bytes) { dynamic_ += bytes; }
  void release(std::size_t bytes) { dynamic_ -= bytes > dynamic_ ? dynamic_ : bytes; }

  std::size_t resident_bytes() const { return baseline_ + dynamic_; }
  double resident_mb() const { return static_cast<double>(resident_bytes()) / (1024.0 * 1024.0); }
  double percent_of_pi3() const {
    return 100.0 * static_cast<double>(resident_bytes()) / kPi3TotalBytes;
  }

  /// The paper's measured AliDrone resident set: 3.27 MB (0.3 % of 1 GB).
  static MemoryAccountant alidrone_client();

 private:
  std::size_t baseline_;
  std::size_t dynamic_ = 0;
};

}  // namespace alidrone::resource
