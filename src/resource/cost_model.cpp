#include "resource/cost_model.h"

namespace alidrone::resource {

double CostProfile::cost(Op op) const {
  switch (op) {
    case Op::kWorldSwitch:
      return world_switch;
    case Op::kGpsReadParse:
      return gps_read_parse;
    case Op::kRsaSign1024:
      return rsa_sign_1024;
    case Op::kRsaSign2048:
      return rsa_sign_2048;
    case Op::kRsaEncrypt1024:
      return rsa_encrypt_1024;
    case Op::kRsaEncrypt2048:
      return rsa_encrypt_2048;
    case Op::kHmacSign:
      return hmac_sign;
    case Op::kEcdsaSign:
      return ecdsa_sign;
    case Op::kPersistSample:
      return persist_sample;
    case Op::kEllipseCheck:
      return ellipse_check;
  }
  return 0.0;
}

CostProfile CostProfile::raspberry_pi3() {
  CostProfile p;
  // Calibrated so a full authenticated sample costs 43.4 ms (1024-bit) /
  // 218.8 ms (2048-bit) of one 1.2 GHz core — the values implied by
  // Table II at 2 Hz fixed-rate sampling.
  p.world_switch = 0.0008;      // SMC + context switch, x2 per sample
  p.gps_read_parse = 0.0008;    // UART buffer read + $GPRMC parse
  p.rsa_sign_1024 = 0.0380;     // private-key op dominates
  p.rsa_sign_2048 = 0.2120;     // ~6-8x the 1024-bit cost (cubic scaling)
  p.rsa_encrypt_1024 = 0.0020;  // public-key op (e = 65537)
  p.rsa_encrypt_2048 = 0.0036;
  p.hmac_sign = 0.00012;        // HMAC-SHA256 of a ~60-byte tuple
  p.ecdsa_sign = 0.0032;        // P-256 scalar mult on the Pi's NEON-less core
  p.persist_sample = 0.0010;    // append to SD-card-backed storage
  p.ellipse_check = 0.00003;    // a few distance computations
  return p;
}

double CostProfile::per_sample_cost(std::size_t key_bits) const {
  const double sign = key_bits >= 2048 ? rsa_sign_2048 : rsa_sign_1024;
  const double encrypt = key_bits >= 2048 ? rsa_encrypt_2048 : rsa_encrypt_1024;
  return 2.0 * world_switch + gps_read_parse + sign + encrypt + persist_sample;
}

MemoryAccountant MemoryAccountant::alidrone_client() {
  // 3.27 MB resident: TA text/data + driver buffers + daemon heap.
  return MemoryAccountant(static_cast<std::size_t>(3.27 * 1024.0 * 1024.0));
}

}  // namespace alidrone::resource
