// Append-only audit log for the AliDrone server.
//
// An Auditor is itself an accountable party: registrations, verdicts and
// accusations are legal events that regulators (and accused operators)
// will want replayed. AuditLog records them append-only in memory with an
// optional line-oriented file sink, and supports filtered queries.
//
// Thread safety: record() and the filtered queries are mutually
// synchronized, so endpoints may log from several threads. events()
// returns an unsynchronized reference — only read it while no recorder
// is running. Moving an AuditLog also requires quiescence.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ledger/ledger.h"

namespace alidrone::core {

enum class AuditEventType : std::uint8_t {
  kDroneRegistered,
  kZoneRegistered,
  kZoneQuery,
  kPoaVerdict,
  kAccusation,
  /// Drone-side: the secure-world GPS driver's bounded pending-fix queue
  /// overflowed and lost its oldest fix (the latest fix is never lost).
  kGpsFixDropped,
  /// TESLA broadcast mode: chain commitment announced (ok = accepted;
  /// rejects cover bad signatures, forked chains, parameter bounds).
  kTeslaSession,
  /// TESLA sample refused admission (late arrival past the disclosure
  /// deadline, unknown session, malformed sizes, buffer bound) or its tag
  /// failed verification when the interval key was disclosed.
  kTeslaSampleRejected,
  /// TESLA key disclosure refused (does not chain to the committed
  /// anchor — forged or forked — or replayed/out-of-range index).
  kTeslaKeyRejected,
};

std::string to_string(AuditEventType type);

struct AuditEvent {
  double time = 0.0;           ///< protocol time of the event
  AuditEventType type = AuditEventType::kDroneRegistered;
  std::string subject;         ///< drone or zone id
  std::string detail;
  bool outcome_ok = false;     ///< accepted/compliant/granted

  /// One-line serialization: "time|type|subject|ok|detail".
  std::string to_line() const;
  static std::optional<AuditEvent> from_line(const std::string& line);
};

class AuditLog {
 public:
  AuditLog() = default;

  /// Also append each event to `path` (line per event, flushed).
  explicit AuditLog(const std::filesystem::path& path);

  // Movable (the mutex is not moved; both logs must be quiescent).
  AuditLog(AuditLog&& other) noexcept
      : events_(std::move(other.events_)),
        sink_(std::move(other.sink_)),
        ledger_(std::move(other.ledger_)),
        anchor_mask_(other.anchor_mask_) {}
  AuditLog& operator=(AuditLog&& other) noexcept {
    events_ = std::move(other.events_);
    sink_ = std::move(other.sink_);
    ledger_ = std::move(other.ledger_);
    anchor_mask_ = other.anchor_mask_;
    return *this;
  }

  /// Every event of any type in `mask` (default: all) is mirrored into
  /// the tamper-evident ledger as an EntryKind::kAuditEvent whose payload
  /// is the event's to_line() bytes. Appending happens under the same
  /// lock as the in-memory append, so the ledger sees events in exactly
  /// the order record() serialized them — the stream is byte-identical
  /// for any upstream thread/shard count.
  void attach_ledger(std::shared_ptr<ledger::Ledger> ledger,
                     std::uint32_t mask = kAnchorAll);
  static constexpr std::uint32_t kAnchorAll = 0xFFFFFFFFu;
  /// Mask bit for one event type, for composing attach_ledger masks.
  static constexpr std::uint32_t anchor_bit(AuditEventType type) {
    return 1u << static_cast<unsigned>(type);
  }

  /// Safe to call from multiple threads; each event is appended (and
  /// flushed to the sink) atomically with respect to other recorders.
  void record(AuditEvent event);

  /// Unsynchronized view for single-threaded callers; do not hold this
  /// reference across concurrent record() calls.
  const std::vector<AuditEvent>& events() const { return events_; }
  std::size_t size() const;

  std::vector<AuditEvent> by_type(AuditEventType type) const;
  std::vector<AuditEvent> by_subject(const std::string& subject) const;
  std::vector<AuditEvent> in_window(double from_time, double to_time) const;

  /// Load a previously written file sink back into memory (corrupt lines
  /// are skipped and counted).
  static AuditLog replay(const std::filesystem::path& path,
                         std::size_t* corrupt_lines = nullptr);

 private:
  mutable std::mutex mu_;
  std::vector<AuditEvent> events_;
  std::optional<std::ofstream> sink_;
  std::shared_ptr<ledger::Ledger> ledger_;
  std::uint32_t anchor_mask_ = kAnchorAll;
};

}  // namespace alidrone::core
