// DroneClient — the Drone Operator's side of the protocol: registration
// (step 0), signed zone queries (steps 2-3), flights with PoA generation,
// and PoA submission (step 4). Wraps the TEE, the samplers and the flight
// loop behind the workflow of Fig. 2.
#pragma once

#include <memory>
#include <optional>

#include "core/flight.h"
#include "core/messages.h"
#include "core/poa.h"
#include "core/protocol_types.h"
#include "crypto/random.h"
#include "crypto/rsa.h"
#include "net/message_bus.h"
#include "tee/secure_monitor.h"

namespace alidrone::core {

class DroneClient {
 public:
  /// `tee` is the drone's trusted hardware (borrowed); the operator key D
  /// is generated here from `rng`.
  DroneClient(tee::DroneTee& tee, std::size_t operator_key_bits,
              crypto::RandomSource& rng);

  const crypto::RsaPublicKey& operator_key() const { return keypair_.pub; }
  const DroneId& id() const { return id_; }
  tee::DroneTee& tee() { return tee_; }

  /// Step 0: register with the Auditor over the bus. Returns false when
  /// the Auditor refuses. Reads T+ out of the TEE via GetPublicKey.
  bool register_with_auditor(net::MessageBus& bus);

  /// Steps 2-3: query NFZs in a rectangle with a fresh signed nonce.
  std::optional<std::vector<ZoneInfo>> query_zones(net::MessageBus& bus,
                                                   const QueryRect& rect);

  /// Build a signed zone-query request (exposed for tests/attacks).
  ZoneQueryRequest make_zone_query(const QueryRect& rect);

  /// Run a flight and assemble the PoA from the recorded samples.
  /// The samples are RSAES-encrypted for `auditor_key` when provided.
  ProofOfAlibi fly(gps::GpsReceiverSim& receiver, SamplingPolicy& policy,
                   FlightConfig config,
                   crypto::HashAlgorithm hash = crypto::HashAlgorithm::kSha1);

  /// Step 4: submit a PoA; returns the Auditor's verdict.
  std::optional<PoaVerdict> submit_poa(net::MessageBus& bus,
                                       const ProofOfAlibi& poa);

  /// The result of the last fly() call (log, counters) for evaluation.
  const FlightResult& last_flight() const { return last_flight_; }

 private:
  tee::DroneTee& tee_;
  crypto::RsaKeyPair keypair_;
  DroneId id_;
  crypto::SecureRandom nonce_rng_;
  FlightResult last_flight_;
};

}  // namespace alidrone::core
