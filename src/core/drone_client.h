// DroneClient — the Drone Operator's side of the protocol: registration
// (step 0), signed zone queries (steps 2-3), flights with PoA generation,
// and PoA submission (step 4). Wraps the TEE, the samplers and the flight
// loop behind the workflow of Fig. 2.
//
// Every bus interaction also exists in a resilient flavour that goes
// through a resilience::ReliableChannel (retries + circuit breaking), and
// PoA submission additionally runs through a durable outbox: fly() output
// is enqueued, a drain loop delivers it with retries across flights, and
// the Auditor's content dedup makes redelivery after a lost response
// harmless. A PoA generated under a flaky link is therefore *eventually*
// verified exactly once.
#pragma once

#include <deque>
#include <memory>
#include <optional>

#include "core/flight.h"
#include "core/messages.h"
#include "core/poa.h"
#include "core/protocol_types.h"
#include "crypto/random.h"
#include "crypto/rsa.h"
#include "net/transport.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "resilience/failover.h"
#include "resilience/reliable_channel.h"
#include "tee/secure_monitor.h"

namespace alidrone::core {

class DroneClient {
 public:
  /// `tee` is the drone's trusted hardware (borrowed); the operator key D
  /// is generated here from `rng`. Outbox counters register under an
  /// instance scope of "core.drone_client" in `registry` (the
  /// process-wide registry when null).
  DroneClient(tee::DroneTee& tee, std::size_t operator_key_bits,
              crypto::RandomSource& rng,
              obs::MetricsRegistry* registry = nullptr);

  const crypto::RsaPublicKey& operator_key() const { return keypair_.pub; }
  const DroneId& id() const { return id_; }
  tee::DroneTee& tee() { return tee_; }

  // ---- Auditor addressing / failover ----

  /// Bus prefixes of the auditors to talk to, in preference order (the
  /// default is the single prefix "auditor"). When the active auditor
  /// stops answering through a ReliableChannel — exhausted retries or an
  /// open breaker — the client rotates to the next prefix and retries
  /// there. The replicas' dedup caches make the cross-server redelivery
  /// exactly-once, so a verdict can never be double-counted by failover.
  void set_auditor_endpoints(std::vector<std::string> prefixes);
  const std::string& active_auditor() const { return targets_.active(); }
  /// Times the client rotated auditors (also the
  /// "core.drone_client#N.failovers" counter).
  std::uint64_t failovers() const { return failovers_->value(); }

  /// Trace failovers into a flight recorder (null disables).
  void set_trace(obs::FlightRecorder* recorder) { recorder_ = recorder; }

  /// Step 0: register with the Auditor over the bus. Returns false when
  /// the Auditor refuses. Reads T+ out of the TEE via GetPublicKey.
  bool register_with_auditor(net::Transport& bus);

  /// Step 0 through a ReliableChannel: a dropped or lost reply becomes a
  /// bounded retry instead of an unhandled TimeoutError; the Auditor's
  /// idempotent registration returns the same id on redelivery.
  bool register_with_auditor(resilience::ReliableChannel& channel);

  /// Steps 2-3: query NFZs in a rectangle with a fresh signed nonce.
  std::optional<std::vector<ZoneInfo>> query_zones(net::Transport& bus,
                                                   const QueryRect& rect);

  /// Steps 2-3 with retries. Each retry re-signs a FRESH nonce — the
  /// Auditor rejects replays, so the retried query must be a new one.
  std::optional<std::vector<ZoneInfo>> query_zones(
      resilience::ReliableChannel& channel, const QueryRect& rect);

  /// Build a signed zone-query request (exposed for tests/attacks).
  ZoneQueryRequest make_zone_query(const QueryRect& rect);

  /// Run a flight and assemble the PoA from the recorded samples.
  /// The samples are RSAES-encrypted for `auditor_key` when provided.
  ProofOfAlibi fly(gps::GpsReceiverSim& receiver, SamplingPolicy& policy,
                   FlightConfig config,
                   crypto::HashAlgorithm hash = crypto::HashAlgorithm::kSha1);

  /// Step 4: submit a PoA; returns the Auditor's verdict.
  std::optional<PoaVerdict> submit_poa(net::Transport& bus,
                                       const ProofOfAlibi& poa);

  /// Step 4 via the outbox: enqueue, then drain through `channel`.
  /// Returns the verdict when this drain delivered it; nullopt leaves the
  /// proof queued for a later drain_outbox().
  std::optional<PoaVerdict> submit_poa(resilience::ReliableChannel& channel,
                                       const ProofOfAlibi& poa);

  // ---- PoA outbox (store-and-forward) ----

  struct OutboxCounters {
    std::uint64_t enqueued = 0;
    std::uint64_t delivered = 0;
    std::uint64_t drain_attempts = 0;  ///< channel requests made by drains
    std::uint64_t undecodable_responses = 0;  ///< corrupted verdicts discarded
  };

  /// Queue a PoA for submission. The proof is serialized once here, so
  /// every later delivery attempt is byte-identical on the wire (that is
  /// what the Auditor's content dedup keys on).
  void enqueue_poa(const ProofOfAlibi& poa);

  /// Try to deliver every queued proof, oldest first. Delivered proofs
  /// leave the queue and their verdicts are returned (in queue order);
  /// failures stay queued for the next drain. An open circuit stops the
  /// drain early — the remaining backlog waits out the cool-down.
  std::vector<PoaVerdict> drain_outbox(resilience::ReliableChannel& channel);

  std::size_t outbox_size() const { return outbox_.size(); }
  /// Point-in-time view over the client's registry counters.
  OutboxCounters outbox_counters() const;

  /// The result of the last fly() call (log, counters) for evaluation.
  const FlightResult& last_flight() const { return last_flight_; }

 private:
  tee::DroneTee& tee_;
  crypto::RsaKeyPair keypair_;
  DroneId id_;
  crypto::SecureRandom nonce_rng_;
  FlightResult last_flight_;

  struct OutboxEntry {
    crypto::Bytes poa_bytes;  ///< ProofOfAlibi::serialize(), frozen at enqueue
    std::uint32_t attempts = 0;
  };
  std::deque<OutboxEntry> outbox_;
  resilience::EndpointFailover targets_;
  obs::FlightRecorder* recorder_ = nullptr;
  // Registry-backed outbox counters.
  obs::Counter* enqueued_;
  obs::Counter* delivered_;
  obs::Counter* drain_attempts_;
  obs::Counter* undecodable_responses_;
  obs::Counter* failovers_;

  std::optional<RegisterDroneRequest> make_register_request();
  bool accept_register_reply(const crypto::Bytes& reply);
  /// Rotate to the next auditor prefix (counted + traced); false when
  /// there is nowhere else to go (single-target client).
  bool fail_over();
};

}  // namespace alidrone::core
