#include "core/sufficiency.h"

#include <limits>

namespace alidrone::core {

SufficiencyReport check_sufficiency(const std::vector<gps::GpsFix>& samples,
                                    const std::vector<geo::GeoZone>& zones,
                                    double vmax_mps) {
  SufficiencyReport report;
  if (samples.empty()) return report;

  // Time ordering is part of well-formedness.
  for (std::size_t i = 1; i < samples.size(); ++i) {
    if (samples[i].unix_time < samples[i - 1].unix_time) return report;
  }
  report.well_formed = true;

  const geo::LocalFrame frame(samples.front().position);
  std::vector<geo::Circle> local_zones;
  local_zones.reserve(zones.size());
  for (const geo::GeoZone& z : zones) local_zones.push_back(geo::to_local(frame, z));

  // A sample recorded inside a zone is a violation on its own (the drone
  // was provably there), independent of any pair.
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const geo::Vec2 p = frame.to_local(samples[i].position);
    for (std::size_t zi = 0; zi < local_zones.size(); ++zi) {
      const double d = local_zones[zi].boundary_distance(p);
      if (d < 0.0) report.violations.push_back({i, zi, d, 0.0});
    }
  }

  for (std::size_t i = 0; i + 1 < samples.size(); ++i) {
    const geo::Vec2 p1 = frame.to_local(samples[i].position);
    const geo::Vec2 p2 = frame.to_local(samples[i + 1].position);
    const double allowed = vmax_mps * (samples[i + 1].unix_time - samples[i].unix_time);

    // Only the nearest zone can violate (its focal sum is minimal).
    double min_focal = std::numeric_limits<double>::infinity();
    std::size_t min_zone = 0;
    for (std::size_t zi = 0; zi < local_zones.size(); ++zi) {
      const double d1 = local_zones[zi].boundary_distance(p1);
      const double d2 = local_zones[zi].boundary_distance(p2);
      const double focal = d1 + d2;
      if (focal < min_focal) {
        min_focal = focal;
        min_zone = zi;
      }
    }
    if (!local_zones.empty() && min_focal < allowed) {
      report.violations.push_back({i, min_zone, min_focal, allowed});
    }
  }

  report.sufficient = report.violations.empty();
  return report;
}

InsufficiencyCounter::InsufficiencyCounter(const geo::LocalFrame& frame,
                                           std::vector<geo::Circle> local_zones,
                                           double vmax_mps)
    : frame_(frame), zones_(std::move(local_zones)), vmax_(vmax_mps) {}

bool InsufficiencyCounter::add_sample(const gps::GpsFix& fix) {
  const geo::Vec2 pos = frame_.to_local(fix.position);
  bool insufficient = false;
  if (has_prev_ && !zones_.empty()) {
    const double allowed = vmax_ * (fix.unix_time - prev_time_);
    double min_focal = std::numeric_limits<double>::infinity();
    for (const geo::Circle& z : zones_) {
      min_focal = std::min(min_focal,
                           z.boundary_distance(prev_pos_) + z.boundary_distance(pos));
    }
    if (min_focal < allowed) {
      insufficient = true;
      ++count_;
    }
  }
  has_prev_ = true;
  prev_pos_ = pos;
  prev_time_ = fix.unix_time;
  return insufficient;
}

SufficiencyReport check_sufficiency_3d(const std::vector<gps::GpsFix>& samples,
                                       const std::vector<geo::GeoZone3>& zones,
                                       double vmax_mps) {
  SufficiencyReport report;
  if (samples.empty()) return report;
  for (std::size_t i = 1; i < samples.size(); ++i) {
    if (samples[i].unix_time < samples[i - 1].unix_time) return report;
  }
  report.well_formed = true;

  const geo::LocalFrame frame(samples.front().position);
  std::vector<geo::Cylinder> cylinders;
  cylinders.reserve(zones.size());
  for (const geo::GeoZone3& z : zones) {
    cylinders.push_back({frame.to_local(z.center), z.radius_m, z.ceiling_m});
  }

  for (std::size_t i = 0; i + 1 < samples.size(); ++i) {
    const geo::Vec2 q1 = frame.to_local(samples[i].position);
    const geo::Vec2 q2 = frame.to_local(samples[i + 1].position);
    const geo::Vec3 p1{q1.x, q1.y, samples[i].altitude_m};
    const geo::Vec3 p2{q2.x, q2.y, samples[i + 1].altitude_m};
    const double allowed = vmax_mps * (samples[i + 1].unix_time - samples[i].unix_time);

    double min_focal = std::numeric_limits<double>::infinity();
    std::size_t min_zone = 0;
    for (std::size_t zi = 0; zi < cylinders.size(); ++zi) {
      const double focal =
          cylinders[zi].distance_to(p1) + cylinders[zi].distance_to(p2);
      if (focal < min_focal) {
        min_focal = focal;
        min_zone = zi;
      }
    }
    if (!cylinders.empty() && min_focal < allowed) {
      report.violations.push_back({i, min_zone, min_focal, allowed});
    }
  }
  report.sufficient = report.violations.empty();
  return report;
}

double nearest_zone_boundary_distance(const geo::Vec2& position,
                                      const std::vector<geo::Circle>& zones) {
  double best = std::numeric_limits<double>::infinity();
  for (const geo::Circle& z : zones) {
    best = std::min(best, z.boundary_distance(position));
  }
  return best;
}

}  // namespace alidrone::core
