#include "core/audit_log.h"

#include <charconv>
#include <sstream>

namespace alidrone::core {

std::string to_string(AuditEventType type) {
  switch (type) {
    case AuditEventType::kDroneRegistered:
      return "drone-registered";
    case AuditEventType::kZoneRegistered:
      return "zone-registered";
    case AuditEventType::kZoneQuery:
      return "zone-query";
    case AuditEventType::kPoaVerdict:
      return "poa-verdict";
    case AuditEventType::kAccusation:
      return "accusation";
    case AuditEventType::kGpsFixDropped:
      return "gps-fix-dropped";
    case AuditEventType::kTeslaSession:
      return "tesla-session";
    case AuditEventType::kTeslaSampleRejected:
      return "tesla-sample-rejected";
    case AuditEventType::kTeslaKeyRejected:
      return "tesla-key-rejected";
  }
  return "unknown";
}

namespace {

std::optional<AuditEventType> type_from_string(const std::string& s) {
  for (const auto type :
       {AuditEventType::kDroneRegistered, AuditEventType::kZoneRegistered,
        AuditEventType::kZoneQuery, AuditEventType::kPoaVerdict,
        AuditEventType::kAccusation, AuditEventType::kGpsFixDropped,
        AuditEventType::kTeslaSession, AuditEventType::kTeslaSampleRejected,
        AuditEventType::kTeslaKeyRejected}) {
    if (to_string(type) == s) return type;
  }
  return std::nullopt;
}

std::string escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '|' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

/// Split on unescaped '|' and unescape fields.
std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> fields{""};
  bool escaped = false;
  for (const char c : line) {
    if (escaped) {
      fields.back().push_back(c == 'n' ? '\n' : c);
      escaped = false;
    } else if (c == '\\') {
      escaped = true;
    } else if (c == '|') {
      fields.emplace_back();
    } else {
      fields.back().push_back(c);
    }
  }
  return fields;
}

}  // namespace

std::string AuditEvent::to_line() const {
  std::ostringstream out;
  out.precision(17);
  out << time << '|' << to_string(type) << '|' << escape(subject) << '|'
      << (outcome_ok ? 1 : 0) << '|' << escape(detail);
  return out.str();
}

std::optional<AuditEvent> AuditEvent::from_line(const std::string& line) {
  const std::vector<std::string> fields = split_fields(line);
  if (fields.size() != 5) return std::nullopt;

  AuditEvent event;
  try {
    event.time = std::stod(fields[0]);
  } catch (...) {
    return std::nullopt;
  }
  const auto type = type_from_string(fields[1]);
  if (!type) return std::nullopt;
  event.type = *type;
  event.subject = fields[2];
  if (fields[3] != "0" && fields[3] != "1") return std::nullopt;
  event.outcome_ok = fields[3] == "1";
  event.detail = fields[4];
  return event;
}

AuditLog::AuditLog(const std::filesystem::path& path) {
  sink_.emplace(path, std::ios::app);
  if (!*sink_) throw std::runtime_error("AuditLog: cannot open " + path.string());
}

void AuditLog::attach_ledger(std::shared_ptr<ledger::Ledger> ledger,
                             std::uint32_t mask) {
  const std::lock_guard<std::mutex> lock(mu_);
  ledger_ = std::move(ledger);
  anchor_mask_ = mask;
}

void AuditLog::record(AuditEvent event) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (sink_) {
    *sink_ << event.to_line() << '\n';
    sink_->flush();
  }
  if (ledger_ != nullptr &&
      (anchor_mask_ & anchor_bit(event.type)) != 0) {
    const std::string line = event.to_line();
    ledger_->append(ledger::EntryKind::kAuditEvent, event.time,
                    {reinterpret_cast<const std::uint8_t*>(line.data()),
                     line.size()});
  }
  events_.push_back(std::move(event));
}

std::size_t AuditLog::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<AuditEvent> AuditLog::by_type(AuditEventType type) const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<AuditEvent> out;
  for (const AuditEvent& e : events_) {
    if (e.type == type) out.push_back(e);
  }
  return out;
}

std::vector<AuditEvent> AuditLog::by_subject(const std::string& subject) const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<AuditEvent> out;
  for (const AuditEvent& e : events_) {
    if (e.subject == subject) out.push_back(e);
  }
  return out;
}

std::vector<AuditEvent> AuditLog::in_window(double from_time, double to_time) const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<AuditEvent> out;
  for (const AuditEvent& e : events_) {
    if (e.time >= from_time && e.time <= to_time) out.push_back(e);
  }
  return out;
}

AuditLog AuditLog::replay(const std::filesystem::path& path,
                          std::size_t* corrupt_lines) {
  AuditLog log;
  std::ifstream in(path);
  std::string line;
  std::size_t corrupt = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (auto event = AuditEvent::from_line(line)) {
      log.events_.push_back(std::move(*event));
    } else {
      ++corrupt;
    }
  }
  if (corrupt_lines != nullptr) *corrupt_lines = corrupt;
  return log;
}

}  // namespace alidrone::core
