#include "core/preflight.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/sufficiency.h"

namespace alidrone::core {

double max_sample_interval_s(double d1_m, double d2_m, double vmax_mps) {
  if (d1_m <= 0.0 || d2_m <= 0.0) return 0.0;
  return (d1_m + d2_m) / vmax_mps;
}

PreflightReport analyze_route(const sim::Route& route,
                              const std::vector<geo::Circle>& local_zones,
                              const PreflightConfig& config) {
  PreflightReport report;
  report.min_clearance_m = std::numeric_limits<double>::infinity();
  report.min_clearance_time = route.start_time();

  double required_rate_integral = 0.0;  // expected #samples
  double peak_rate = 0.0;

  for (double t = route.start_time(); t <= route.end_time();
       t += config.analysis_step_s) {
    const geo::Vec2 p = route.local_position_at(t);
    const double d = nearest_zone_boundary_distance(p, local_zones);
    if (d < report.min_clearance_m) {
      report.min_clearance_m = d;
      report.min_clearance_time = t;
    }
    if (!local_zones.empty() && d > 0.0) {
      // Instantaneous required rate: consecutive samples at distance ~d
      // must be at most 2d/v_max apart (d1 ~ d2 ~ d near the approach).
      const double rate = config.vmax_mps / (2.0 * d);
      peak_rate = std::max(peak_rate, rate);
      // Algorithm 1 cannot sample slower than needed but also never
      // faster than the hardware delivers.
      required_rate_integral +=
          std::min(rate, config.gps_rate_hz) * config.analysis_step_s;
    }
  }

  report.required_peak_rate_hz = peak_rate;
  report.route_avoids_zones =
      !std::isfinite(report.min_clearance_m) || report.min_clearance_m > 0.0;
  report.gps_rate_sufficient = peak_rate <= config.gps_rate_hz;

  const double per_sample =
      config.cost_profile.per_sample_cost(config.tee_key_bits);
  report.tee_can_keep_up =
      peak_rate <= 0.0 || per_sample * peak_rate <= 1.0;

  report.estimated_samples = static_cast<std::size_t>(
      std::ceil(std::max(1.0, required_rate_integral)));
  return report;
}

}  // namespace alidrone::core
