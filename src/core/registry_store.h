// Durable identity databases for the Auditor.
//
// The paper's server keeps "the information of registered drones and
// NFZs"; in production those records must survive restarts (unlike nonce
// caches, which should reset). RegistryStore snapshots both tables to a
// single file with a strict binary format and restores them on startup.
#pragma once

#include <filesystem>
#include <map>
#include <mutex>
#include <optional>

#include "core/protocol_types.h"

namespace alidrone::core {

class RegistryStore {
 public:
  explicit RegistryStore(std::filesystem::path file) : file_(std::move(file)) {}

  struct Snapshot {
    std::map<DroneId, DroneRecord> drones;
    std::map<ZoneId, ZoneRecord> zones;
    int next_drone_number = 1;
    int next_zone_number = 1;
  };

  /// Atomically replace the on-disk snapshot (write temp + rename).
  /// Thread-safe: concurrent saves/loads are serialized internally.
  void save(const Snapshot& snapshot) const;

  /// nullopt when the file does not exist or is corrupt.
  std::optional<Snapshot> load() const;

  const std::filesystem::path& file() const { return file_; }

 private:
  std::filesystem::path file_;
  mutable std::mutex mu_;  // serializes the temp-write + rename vs readers
};

}  // namespace alidrone::core
