#include "core/tesla.h"

#include <algorithm>
#include <cmath>

#include "obs/clock.h"
#include "tee/gps_sampler_ta.h"

namespace alidrone::core {

namespace {

std::uint64_t now_us_of(const obs::Clock& clock) {
  return static_cast<std::uint64_t>(std::llround(clock.now() * 1e6));
}

crypto::Bytes be_bytes(std::uint64_t v, std::size_t width) {
  crypto::Bytes out(width);
  for (std::size_t i = 0; i < width; ++i) {
    out[i] = static_cast<std::uint8_t>((v >> (8 * (width - 1 - i))) & 0xFF);
  }
  return out;
}

}  // namespace

TeslaVerifier::TeslaVerifier(Config config, obs::MetricsRegistry& registry,
                             const std::string& scope)
    : config_(config) {
  const std::string prefix = scope + ".tesla.";
  sessions_opened_ = &registry.counter(prefix + "sessions_opened");
  sessions_rejected_ = &registry.counter(prefix + "sessions_rejected");
  samples_buffered_ = &registry.counter(prefix + "samples_buffered");
  samples_accepted_ = &registry.counter(prefix + "samples_accepted");
  samples_rejected_ = &registry.counter(prefix + "samples_rejected");
  keys_accepted_ = &registry.counter(prefix + "keys_accepted");
  keys_rejected_ = &registry.counter(prefix + "keys_rejected");
  finalized_ = &registry.counter(prefix + "finalized");
}

TeslaAck TeslaVerifier::announce(const TeslaAnnounceRequest& req,
                                 const tee::TeslaCommit& commit) {
  std::lock_guard<std::mutex> lock(mu_);
  if (commit.chain_length == 0 ||
      commit.chain_length > config_.max_chain_length) {
    sessions_rejected_->increment();
    return {false, "chain length out of range"};
  }
  if (commit.disclosure_delay == 0 ||
      commit.disclosure_delay > config_.max_disclosure_delay) {
    sessions_rejected_->increment();
    return {false, "disclosure delay out of range"};
  }
  const auto key = std::make_pair(req.drone_id, req.session_nonce);
  const auto it = sessions_.find(key);
  if (it != sessions_.end()) {
    // Lossy links re-send announces; byte-identical ones are idempotent.
    // A different commitment under the same session is a forked chain.
    if (it->second.commit_payload == req.commit_payload &&
        it->second.commit_signature == req.commit_signature) {
      return {true, "duplicate announce"};
    }
    sessions_rejected_->increment();
    return {false, "forked chain commitment"};
  }
  if (sessions_.size() >= config_.max_sessions) {
    sessions_rejected_->increment();
    return {false, "session table full"};
  }
  Session session{commit,
                  req.hash,
                  req.commit_payload,
                  req.commit_signature,
                  crypto::ChainFrontier(commit.anchor, commit.chain_length),
                  {},
                  0,
                  {},
                  0};
  sessions_.emplace(key, std::move(session));
  sessions_opened_->increment();
  return {true, "session open"};
}

TeslaAck TeslaVerifier::sample(const TeslaSampleBroadcastView& s) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it =
      sessions_.find(std::make_pair(DroneId(s.drone_id), s.session_nonce));
  if (it == sessions_.end()) {
    samples_rejected_->increment();
    return {false, "unknown tesla session"};
  }
  Session& session = it->second;
  if (s.sample.size() != tee::kEncodedSampleSize || s.tag.size() != 32) {
    samples_rejected_->increment();
    return {false, "malformed sample or tag"};
  }
  if (s.interval == 0 || s.interval > session.commit.chain_length) {
    samples_rejected_->increment();
    return {false, "interval out of range"};
  }
  // The claimed interval must match the canonical timestamp inside the
  // sample bytes — offline re-verification derives the key index from the
  // timestamp, so an inconsistent pair could never settle anyway.
  const auto t_us = tee::sample_time_us(s.sample);
  if (!t_us || tee::tesla_interval(*t_us, session.commit.t0_us,
                                   session.commit.interval_us) != s.interval) {
    samples_rejected_->increment();
    return {false, "interval does not match sample time"};
  }
  // A key whose disclosure the frontier has already verified is public —
  // any tag under it could be forged by anyone who watched the channel.
  if (s.interval <= session.frontier.frontier_index()) {
    samples_rejected_->increment();
    return {false, "late: key already disclosed"};
  }
  // The TESLA security condition against the receive-time authority: the
  // sample must arrive before its key's scheduled disclosure time.
  if (config_.clock != nullptr) {
    const std::uint64_t now_us = now_us_of(*config_.clock);
    const std::uint64_t release_us =
        static_cast<std::uint64_t>(session.commit.t0_us) +
        (s.interval + session.commit.disclosure_delay) *
            session.commit.interval_us;
    const std::uint64_t skew_us =
        static_cast<std::uint64_t>(std::llround(config_.clock_skew_s * 1e6));
    if (now_us >= release_us + skew_us) {
      samples_rejected_->increment();
      return {false, "late: past disclosure deadline"};
    }
  }
  if (session.pending_count >= config_.max_buffered_samples) {
    samples_rejected_->increment();
    return {false, "sample buffer full"};
  }
  Buffered buffered;
  buffered.t_us = *t_us;
  buffered.seq = session.next_seq++;
  buffered.sample.assign(s.sample.begin(), s.sample.end());
  buffered.tag.assign(s.tag.begin(), s.tag.end());
  session.pending[s.interval].push_back(std::move(buffered));
  ++session.pending_count;
  samples_buffered_->increment();
  return {true, "buffered"};
}

TeslaVerifier::DiscloseResult TeslaVerifier::disclose(
    const TeslaDiscloseRequestView& d) {
  std::lock_guard<std::mutex> lock(mu_);
  DiscloseResult result;
  const auto it =
      sessions_.find(std::make_pair(DroneId(d.drone_id), d.session_nonce));
  if (it == sessions_.end()) {
    keys_rejected_->increment();
    result.ack = {false, "unknown tesla session"};
    return result;
  }
  Session& session = it->second;
  if (d.key.size() != crypto::kChainKeySize) {
    keys_rejected_->increment();
    result.ack = {false, "malformed key"};
    return result;
  }
  if (d.index <= session.frontier.frontier_index()) {
    keys_rejected_->increment();
    result.ack = {false, "out-of-order disclosure (replayed index)"};
    return result;
  }
  if (d.index > session.commit.chain_length) {
    keys_rejected_->increment();
    result.ack = {false, "index out of range"};
    return result;
  }
  crypto::ChainKey key{};
  std::copy(d.key.begin(), d.key.end(), key.begin());
  if (!session.frontier.accept(d.index, key)) {
    keys_rejected_->increment();
    result.ack = {false, "key does not chain to committed anchor"};
    return result;
  }
  keys_accepted_->increment();

  // Settle every buffered interval at or below the disclosed index,
  // deriving the lower chain keys by walking down from K_index. One pass,
  // highest interval first; erase as we go.
  crypto::ChainKey cur = key;
  std::uint64_t at = d.index;
  while (!session.pending.empty()) {
    const auto last = std::prev(session.pending.end());
    const std::uint64_t interval = last->first;
    if (interval > d.index) break;  // still undisclosed (cannot happen; safe)
    while (at > interval) {
      cur = crypto::chain_step(cur);
      --at;
    }
    const crypto::ChainKey mac_key = crypto::tesla_mac_key(cur);
    for (Buffered& buffered : last->second) {
      const crypto::ChainKey expected =
          crypto::tesla_tag(mac_key, interval, buffered.sample);
      if (!std::equal(expected.begin(), expected.end(), buffered.tag.begin(),
                      buffered.tag.end())) {
        samples_rejected_->increment();
        result.tag_rejects.emplace_back(interval, "tag invalid");
        continue;
      }
      Accepted accepted;
      accepted.t_us = buffered.t_us;
      accepted.seq = buffered.seq;
      accepted.interval = interval;
      accepted.sample = std::move(buffered.sample);
      accepted.tag = std::move(buffered.tag);
      session.accepted.push_back(std::move(accepted));
      ++result.settled;
      samples_accepted_->increment();
    }
    session.pending_count -= last->second.size();
    session.pending.erase(last);
  }
  result.ack = {true,
                "settled " + std::to_string(result.settled) + " samples"};
  return result;
}

std::optional<ProofOfAlibi> TeslaVerifier::finalize(
    const DroneId& drone_id, std::uint64_t session_nonce, std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(std::make_pair(drone_id, session_nonce));
  if (it == sessions_.end()) {
    if (error != nullptr) *error = "unknown tesla session";
    return std::nullopt;
  }
  Session session = std::move(it->second);
  sessions_.erase(it);
  finalized_->increment();

  // Deterministic proof order: canonical sample time, arrival order
  // breaking ties (seq is unique per session, so this is a total order).
  std::sort(session.accepted.begin(), session.accepted.end(),
            [](const Accepted& a, const Accepted& b) {
              if (a.t_us != b.t_us) return a.t_us < b.t_us;
              return a.seq < b.seq;
            });

  ProofOfAlibi poa;
  poa.drone_id = drone_id;
  poa.mode = AuthMode::kTeslaChain;
  poa.hash = session.hash;
  poa.encrypted = false;
  poa.samples.reserve(session.accepted.size());
  for (Accepted& accepted : session.accepted) {
    poa.samples.push_back(
        SignedSample{std::move(accepted.sample), std::move(accepted.tag)});
  }
  // Self-contained offline re-verification material (see AuthMode docs):
  // the signed commitment plus the highest verified chain element.
  poa.batch_signature = std::move(session.commit_payload);
  poa.session_key_signature = std::move(session.commit_signature);
  poa.session_key_ciphertext = be_bytes(session.frontier.frontier_index(), 8);
  const crypto::ChainKey& top = session.frontier.frontier_key();
  poa.session_key_ciphertext.insert(poa.session_key_ciphertext.end(),
                                    top.begin(), top.end());
  return poa;
}

std::size_t TeslaVerifier::session_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

// ---- Drone side ----

namespace {

constexpr int kMaxTransientRetries = 3;

tee::InvokeResult invoke_sampler(tee::DroneTee& tee, tee::SamplerCommand command,
                                 std::span<const crypto::Bytes> params = {}) {
  tee::InvokeResult result = tee.monitor().invoke(
      tee.sampler_uuid(), static_cast<std::uint32_t>(command), params);
  for (int attempt = 0;
       result.status == tee::TeeStatus::kBusy && attempt < kMaxTransientRetries;
       ++attempt) {
    result = tee.monitor().invoke(tee.sampler_uuid(),
                                  static_cast<std::uint32_t>(command), params);
  }
  return result;
}

std::uint64_t read_be64(const crypto::Bytes& b) {
  std::uint64_t v = 0;
  for (const std::uint8_t byte : b) v = (v << 8) | byte;
  return v;
}

/// Fire-and-forget send: returns the decoded ack, nullopt on a bus drop
/// (TimeoutError) — the lossy-broadcast contract.
std::optional<TeslaAck> broadcast(net::Transport& bus,
                                  const std::string& endpoint,
                                  const crypto::Bytes& frame) {
  try {
    return TeslaAck::decode(bus.request(endpoint, frame));
  } catch (const net::TimeoutError&) {
    return std::nullopt;
  }
}

}  // namespace

TeslaFlightResult run_tesla_broadcast_flight(tee::DroneTee& tee,
                                             gps::GpsReceiverSim& receiver,
                                             SamplingPolicy& policy,
                                             net::Transport& bus,
                                             const DroneId& drone_id,
                                             const TeslaFlightConfig& config) {
  TeslaFlightResult result;
  const double period = receiver.update_period();
  const double start = receiver.next_update_time();

  const auto feed_one_update = [&](double at) {
    for (const std::string& s : receiver.advance_to(at)) tee.feed_gps(s);
  };

  // The TA needs a fix before it can anchor the flight epoch.
  feed_one_update(start);

  std::uint32_t chain_length = config.chain_length;
  if (chain_length == 0) {
    const double duration = std::max(0.0, config.end_time - start);
    chain_length = static_cast<std::uint32_t>(
                       std::ceil(duration / config.interval_s)) +
                   config.disclosure_delay + 4;
  }
  const std::uint64_t interval_us =
      static_cast<std::uint64_t>(std::llround(config.interval_s * 1e6));

  const std::vector<crypto::Bytes> begin_params{
      be_bytes(chain_length, 4), be_bytes(config.disclosure_delay, 4),
      be_bytes(interval_us, 8)};
  const tee::InvokeResult begun =
      invoke_sampler(tee, tee::SamplerCommand::kTeslaBegin, begin_params);
  if (!begun.ok() || begun.outputs.size() != 2) {
    ++result.tee_failures;
    return result;
  }
  const auto commit = tee::parse_tesla_commit(begun.outputs[0]);
  if (!commit) {
    ++result.tee_failures;
    return result;
  }

  TeslaAnnounceRequest announce;
  announce.drone_id = drone_id;
  announce.session_nonce = config.session_nonce;
  announce.hash = config.hash;
  announce.commit_payload = begun.outputs[0];
  announce.commit_signature = begun.outputs[1];
  const crypto::Bytes announce_frame = announce.encode();
  const auto try_announce = [&] {
    if (result.announced) return;
    const auto ack = broadcast(bus, config.auditor_prefix + ".tesla_announce", announce_frame);
    if (ack && ack->accepted) result.announced = true;
  };
  try_announce();

  std::uint64_t last_disclosed = 0;
  const auto disclose_up_to = [&](std::uint64_t matured) {
    matured = std::min<std::uint64_t>(matured, chain_length);
    if (matured <= last_disclosed) return;
    const std::vector<crypto::Bytes> params{be_bytes(matured, 8)};
    const tee::InvokeResult disclosed =
        invoke_sampler(tee, tee::SamplerCommand::kTeslaDisclose, params);
    if (!disclosed.ok() || disclosed.outputs.size() != 1) {
      ++result.tee_failures;
      return;
    }
    TeslaDiscloseRequest request;
    request.drone_id = drone_id;
    request.session_nonce = config.session_nonce;
    request.index = matured;
    request.key = disclosed.outputs[0];
    ++result.disclosures_sent;
    const auto ack =
        broadcast(bus, config.auditor_prefix + ".tesla_disclose", request.encode());
    if (!ack) {
      ++result.disclosures_dropped;
      return;  // a later disclosure settles this interval too
    }
    if (ack->accepted) last_disclosed = matured;
  };

  // The highest interval whose key has passed its disclosure time on the
  // drone's GPS clock (t >= t0 + (m + d) * tau  =>  m matured).
  const auto matured_at = [&](double unix_time) -> std::uint64_t {
    const std::int64_t t_us = tee::time_us_of(unix_time);
    if (t_us < commit->t0_us) return 0;
    const std::uint64_t elapsed =
        static_cast<std::uint64_t>(t_us - commit->t0_us) / interval_us;
    return elapsed <= config.disclosure_delay
               ? 0
               : elapsed - config.disclosure_delay;
  };

  double last_fix_time = start;
  for (double now = start + period; now <= config.end_time + 1e-9;
       now += period) {
    feed_one_update(now);
    ++result.gps_updates;
    const auto fix = invoke_sampler(tee, tee::SamplerCommand::kGetGpsTesla);
    try_announce();

    if (fix.status == tee::TeeStatus::kSuccess && fix.outputs.size() == 3) {
      const auto decoded = tee::decode_sample(fix.outputs[0]);
      if (decoded) {
        last_fix_time = decoded->unix_time;
        if (policy.should_authenticate(*decoded)) {
          policy.on_recorded(*decoded);
          const std::uint64_t interval = read_be64(fix.outputs[2]);
          result.max_interval_used =
              std::max(result.max_interval_used, interval);
          TeslaSampleBroadcast sample;
          sample.drone_id = drone_id;
          sample.session_nonce = config.session_nonce;
          sample.interval = interval;
          sample.sample = fix.outputs[0];
          sample.tag = fix.outputs[1];
          ++result.samples_sent;
          const auto ack =
              broadcast(bus, config.auditor_prefix + ".tesla_sample", sample.encode());
          if (!ack) {
            ++result.samples_dropped;
          } else if (!ack->accepted) {
            ++result.samples_rejected;
          }
        }
      }
    } else if (fix.status != tee::TeeStatus::kNotReady) {
      ++result.tee_failures;
    }

    disclose_up_to(matured_at(last_fix_time));
  }

  // Post-flight flush: keep the receiver (and with it the TA's clock)
  // moving until every used interval's key has matured, been disclosed
  // and acknowledged — exactly what a drone broadcasting disclosures
  // after landing does. Bounded against pathological fault schedules.
  const std::uint64_t flush_target =
      std::min<std::uint64_t>(std::max<std::uint64_t>(result.max_interval_used,
                                                      1),
                              chain_length);
  double now = config.end_time;
  for (std::size_t i = 0;
       i < config.max_flush_updates && last_disclosed < flush_target; ++i) {
    now += period;
    feed_one_update(now);
    last_fix_time = now;
    try_announce();
    disclose_up_to(matured_at(last_fix_time));
  }

  TeslaFinalizeRequest finalize;
  finalize.drone_id = drone_id;
  finalize.session_nonce = config.session_nonce;
  finalize.end_time = config.end_time;
  const crypto::Bytes finalize_frame = finalize.encode();
  for (std::size_t i = 0; i < config.max_flush_updates; ++i) {
    try {
      const auto verdict =
          PoaVerdict::decode(bus.request(config.auditor_prefix + ".tesla_finalize", finalize_frame));
      if (verdict) {
        result.verdict = *verdict;
        result.finalized = true;
      }
      break;
    } catch (const net::TimeoutError&) {
      now += period;
      feed_one_update(now);
    }
  }
  return result;
}

}  // namespace alidrone::core
