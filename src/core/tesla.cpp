#include "core/tesla.h"

#include <algorithm>
#include <cmath>

#include "core/flight_actor.h"
#include "obs/clock.h"
#include "tee/gps_sampler_ta.h"

namespace alidrone::core {

namespace {

std::uint64_t now_us_of(const obs::Clock& clock) {
  return static_cast<std::uint64_t>(std::llround(clock.now() * 1e6));
}

crypto::Bytes be_bytes(std::uint64_t v, std::size_t width) {
  crypto::Bytes out(width);
  for (std::size_t i = 0; i < width; ++i) {
    out[i] = static_cast<std::uint8_t>((v >> (8 * (width - 1 - i))) & 0xFF);
  }
  return out;
}

}  // namespace

TeslaVerifier::TeslaVerifier(Config config, obs::MetricsRegistry& registry,
                             const std::string& scope)
    : config_(config) {
  const std::string prefix = scope + ".tesla.";
  sessions_opened_ = &registry.counter(prefix + "sessions_opened");
  sessions_rejected_ = &registry.counter(prefix + "sessions_rejected");
  samples_buffered_ = &registry.counter(prefix + "samples_buffered");
  samples_accepted_ = &registry.counter(prefix + "samples_accepted");
  samples_rejected_ = &registry.counter(prefix + "samples_rejected");
  keys_accepted_ = &registry.counter(prefix + "keys_accepted");
  keys_rejected_ = &registry.counter(prefix + "keys_rejected");
  finalized_ = &registry.counter(prefix + "finalized");
}

TeslaAck TeslaVerifier::announce(const TeslaAnnounceRequest& req,
                                 const tee::TeslaCommit& commit) {
  std::lock_guard<std::mutex> lock(mu_);
  if (commit.chain_length == 0 ||
      commit.chain_length > config_.max_chain_length) {
    sessions_rejected_->increment();
    return {false, "chain length out of range"};
  }
  if (commit.disclosure_delay == 0 ||
      commit.disclosure_delay > config_.max_disclosure_delay) {
    sessions_rejected_->increment();
    return {false, "disclosure delay out of range"};
  }
  const auto key = std::make_pair(req.drone_id, req.session_nonce);
  const auto it = sessions_.find(key);
  if (it != sessions_.end()) {
    // Lossy links re-send announces; byte-identical ones are idempotent.
    // A different commitment under the same session is a forked chain.
    if (it->second.commit_payload == req.commit_payload &&
        it->second.commit_signature == req.commit_signature) {
      return {true, "duplicate announce"};
    }
    sessions_rejected_->increment();
    return {false, "forked chain commitment"};
  }
  if (sessions_.size() >= config_.max_sessions) {
    sessions_rejected_->increment();
    return {false, "session table full"};
  }
  Session session{commit,
                  req.hash,
                  req.commit_payload,
                  req.commit_signature,
                  crypto::ChainFrontier(commit.anchor, commit.chain_length),
                  {},
                  0,
                  {},
                  0};
  sessions_.emplace(key, std::move(session));
  sessions_opened_->increment();
  return {true, "session open"};
}

TeslaAck TeslaVerifier::sample(const TeslaSampleBroadcastView& s) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it =
      sessions_.find(std::make_pair(DroneId(s.drone_id), s.session_nonce));
  if (it == sessions_.end()) {
    samples_rejected_->increment();
    return {false, "unknown tesla session"};
  }
  Session& session = it->second;
  if (s.sample.size() != tee::kEncodedSampleSize || s.tag.size() != 32) {
    samples_rejected_->increment();
    return {false, "malformed sample or tag"};
  }
  if (s.interval == 0 || s.interval > session.commit.chain_length) {
    samples_rejected_->increment();
    return {false, "interval out of range"};
  }
  // The claimed interval must match the canonical timestamp inside the
  // sample bytes — offline re-verification derives the key index from the
  // timestamp, so an inconsistent pair could never settle anyway.
  const auto t_us = tee::sample_time_us(s.sample);
  if (!t_us || tee::tesla_interval(*t_us, session.commit.t0_us,
                                   session.commit.interval_us) != s.interval) {
    samples_rejected_->increment();
    return {false, "interval does not match sample time"};
  }
  // A key whose disclosure the frontier has already verified is public —
  // any tag under it could be forged by anyone who watched the channel.
  if (s.interval <= session.frontier.frontier_index()) {
    samples_rejected_->increment();
    return {false, "late: key already disclosed"};
  }
  // The TESLA security condition against the receive-time authority: the
  // sample must arrive before its key's scheduled disclosure time.
  if (config_.clock != nullptr) {
    const std::uint64_t now_us = now_us_of(*config_.clock);
    const std::uint64_t release_us =
        static_cast<std::uint64_t>(session.commit.t0_us) +
        (s.interval + session.commit.disclosure_delay) *
            session.commit.interval_us;
    const std::uint64_t skew_us =
        static_cast<std::uint64_t>(std::llround(config_.clock_skew_s * 1e6));
    if (now_us >= release_us + skew_us) {
      samples_rejected_->increment();
      return {false, "late: past disclosure deadline"};
    }
  }
  if (session.pending_count >= config_.max_buffered_samples) {
    samples_rejected_->increment();
    return {false, "sample buffer full"};
  }
  Buffered buffered;
  buffered.t_us = *t_us;
  buffered.seq = session.next_seq++;
  buffered.sample.assign(s.sample.begin(), s.sample.end());
  buffered.tag.assign(s.tag.begin(), s.tag.end());
  session.pending[s.interval].push_back(std::move(buffered));
  ++session.pending_count;
  samples_buffered_->increment();
  return {true, "buffered"};
}

TeslaVerifier::DiscloseResult TeslaVerifier::disclose(
    const TeslaDiscloseRequestView& d) {
  std::lock_guard<std::mutex> lock(mu_);
  DiscloseResult result;
  const auto it =
      sessions_.find(std::make_pair(DroneId(d.drone_id), d.session_nonce));
  if (it == sessions_.end()) {
    keys_rejected_->increment();
    result.ack = {false, "unknown tesla session"};
    return result;
  }
  Session& session = it->second;
  if (d.key.size() != crypto::kChainKeySize) {
    keys_rejected_->increment();
    result.ack = {false, "malformed key"};
    return result;
  }
  if (d.index <= session.frontier.frontier_index()) {
    keys_rejected_->increment();
    result.ack = {false, "out-of-order disclosure (replayed index)"};
    return result;
  }
  if (d.index > session.commit.chain_length) {
    keys_rejected_->increment();
    result.ack = {false, "index out of range"};
    return result;
  }
  crypto::ChainKey key{};
  std::copy(d.key.begin(), d.key.end(), key.begin());
  if (!session.frontier.accept(d.index, key)) {
    keys_rejected_->increment();
    result.ack = {false, "key does not chain to committed anchor"};
    return result;
  }
  keys_accepted_->increment();

  // Settle every buffered interval at or below the disclosed index,
  // deriving the lower chain keys by walking down from K_index. One pass,
  // highest interval first; erase as we go.
  crypto::ChainKey cur = key;
  std::uint64_t at = d.index;
  while (!session.pending.empty()) {
    const auto last = std::prev(session.pending.end());
    const std::uint64_t interval = last->first;
    if (interval > d.index) break;  // still undisclosed (cannot happen; safe)
    while (at > interval) {
      cur = crypto::chain_step(cur);
      --at;
    }
    const crypto::ChainKey mac_key = crypto::tesla_mac_key(cur);
    for (Buffered& buffered : last->second) {
      const crypto::ChainKey expected =
          crypto::tesla_tag(mac_key, interval, buffered.sample);
      if (!std::equal(expected.begin(), expected.end(), buffered.tag.begin(),
                      buffered.tag.end())) {
        samples_rejected_->increment();
        result.tag_rejects.emplace_back(interval, "tag invalid");
        continue;
      }
      Accepted accepted;
      accepted.t_us = buffered.t_us;
      accepted.seq = buffered.seq;
      accepted.interval = interval;
      accepted.sample = std::move(buffered.sample);
      accepted.tag = std::move(buffered.tag);
      session.accepted.push_back(std::move(accepted));
      ++result.settled;
      samples_accepted_->increment();
    }
    session.pending_count -= last->second.size();
    session.pending.erase(last);
  }
  result.ack = {true,
                "settled " + std::to_string(result.settled) + " samples"};
  return result;
}

std::optional<ProofOfAlibi> TeslaVerifier::finalize(
    const DroneId& drone_id, std::uint64_t session_nonce, std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(std::make_pair(drone_id, session_nonce));
  if (it == sessions_.end()) {
    if (error != nullptr) *error = "unknown tesla session";
    return std::nullopt;
  }
  Session session = std::move(it->second);
  sessions_.erase(it);
  finalized_->increment();

  // Deterministic proof order: canonical sample time, arrival order
  // breaking ties (seq is unique per session, so this is a total order).
  std::sort(session.accepted.begin(), session.accepted.end(),
            [](const Accepted& a, const Accepted& b) {
              if (a.t_us != b.t_us) return a.t_us < b.t_us;
              return a.seq < b.seq;
            });

  ProofOfAlibi poa;
  poa.drone_id = drone_id;
  poa.mode = AuthMode::kTeslaChain;
  poa.hash = session.hash;
  poa.encrypted = false;
  poa.samples.reserve(session.accepted.size());
  for (Accepted& accepted : session.accepted) {
    poa.samples.push_back(
        SignedSample{std::move(accepted.sample), std::move(accepted.tag)});
  }
  // Self-contained offline re-verification material (see AuthMode docs):
  // the signed commitment plus the highest verified chain element.
  poa.batch_signature = std::move(session.commit_payload);
  poa.session_key_signature = std::move(session.commit_signature);
  poa.session_key_ciphertext = be_bytes(session.frontier.frontier_index(), 8);
  const crypto::ChainKey& top = session.frontier.frontier_key();
  poa.session_key_ciphertext.insert(poa.session_key_ciphertext.end(),
                                    top.begin(), top.end());
  return poa;
}

std::size_t TeslaVerifier::session_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

// ---- Drone side ----

TeslaFlightResult run_tesla_broadcast_flight(tee::DroneTee& tee,
                                             gps::GpsReceiverSim& receiver,
                                             SamplingPolicy& policy,
                                             net::Transport& bus,
                                             const DroneId& drone_id,
                                             const TeslaFlightConfig& config) {
  // Thin single-actor driver: the broadcast loop lives in FlightActor now
  // (one receiver tick, flush probe or finalize attempt per step), with
  // every send drained through the actor's outbox in FIFO order.
  FlightActor actor(tee, receiver, policy, drone_id, config);
  while (!actor.done()) {
    actor.step();
    actor.flush(bus);
  }
  return actor.take_tesla();
}

}  // namespace alidrone::core
