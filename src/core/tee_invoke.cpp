#include "core/tee_invoke.h"

#include <string>
#include <utility>

namespace alidrone::core {

tee::InvokeResult invoke_sampler_with_retry(tee::DroneTee& tee,
                                            tee::SamplerCommand command,
                                            std::span<const crypto::Bytes> params,
                                            std::uint64_t* retries) {
  tee::InvokeResult result = tee.monitor().invoke(
      tee.sampler_uuid(), static_cast<std::uint32_t>(command), params);
  for (int attempt = 0; result.status == tee::TeeStatus::kBusy &&
                        attempt < kMaxTransientTeeRetries;
       ++attempt) {
    if (retries != nullptr) ++*retries;
    result = tee.monitor().invoke(tee.sampler_uuid(),
                                  static_cast<std::uint32_t>(command), params);
  }
  return result;
}

GpsDropAuditScope::GpsDropAuditScope(tee::DroneTee& tee, AuditLog* audit)
    : tee_(tee), audit_(audit), dropped_at_start_(tee.gps_fixes_dropped()) {
  if (audit_ == nullptr) return;
  armed_ = true;
  tee_.set_gps_drop_listener(
      [this](const gps::GpsFix& dropped, std::uint64_t total) {
        if (onset_logged_) return;
        onset_logged_ = true;
        AuditEvent event;
        event.time = dropped.unix_time;
        event.type = AuditEventType::kGpsFixDropped;
        event.subject = "tee-gps-driver";
        event.outcome_ok = false;
        event.detail = "pending-fix queue overflow began; total dropped=" +
                       std::to_string(total);
        audit_->record(std::move(event));
      });
}

GpsDropAuditScope::~GpsDropAuditScope() {
  if (armed_) tee_.set_gps_drop_listener(nullptr);
  armed_ = false;
}

void GpsDropAuditScope::finish(double end_time) {
  if (audit_ == nullptr) return;
  const std::uint64_t dropped = tee_.gps_fixes_dropped() - dropped_at_start_;
  if (dropped > 0) {
    AuditEvent event;
    event.time = end_time;
    event.type = AuditEventType::kGpsFixDropped;
    event.subject = "tee-gps-driver";
    event.outcome_ok = false;
    event.detail =
        "flight summary: " + std::to_string(dropped) + " fixes dropped";
    audit_->record(std::move(event));
  }
  if (armed_) tee_.set_gps_drop_listener(nullptr);
  armed_ = false;
  audit_ = nullptr;  // finish() is one-shot
}

}  // namespace alidrone::core
