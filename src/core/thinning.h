// Offline PoA thinning — the verification-side dual of adaptive sampling.
//
// Section IV-C3 proves E(S_i, S_j) ⊆ E(S_i, S_k) for j < k: if the pair
// (S_i, S_k) is sufficient, every intermediate sample is redundant. The
// Adapter exploits this online (k_{i+1} = argmax_j such that the pair
// stays sufficient); this module applies the same argmax offline to a
// recorded trace. The Auditor can thin retained PoAs to their minimal
// sufficient witness before long-term storage — a fixed-rate 5 Hz PoA
// shrinks to roughly what adaptive sampling would have recorded.
//
// Thinning preserves verifiability: the kept samples are the original
// TEE-signed (sample, signature) pairs, untouched.
#pragma once

#include <vector>

#include "core/poa.h"
#include "core/sufficiency.h"

namespace alidrone::core {

struct ThinningResult {
  std::vector<std::size_t> kept_indices;  ///< indices into the input samples
  std::size_t original_count = 0;
  bool input_sufficient = false;   ///< eq. (1) held for the full trace
  bool output_sufficient = false;  ///< eq. (1) holds for the kept subset
};

/// Greedy furthest-reach thinning of decoded samples against `zones`.
/// The first and last samples are always kept (they anchor the flight
/// window for accusations). If the input is insufficient somewhere, the
/// insufficient pairs are preserved as-is (thinning never hides evidence).
ThinningResult thin_samples(const std::vector<gps::GpsFix>& samples,
                            const std::vector<geo::GeoZone>& zones,
                            double vmax_mps);

/// Thin a plaintext per-sample-signed PoA; returns a PoA containing only
/// the kept (sample, signature) pairs. Modes other than kRsaPerSample and
/// encrypted PoAs are returned unchanged (their signatures cover the
/// whole trace or the Auditor cannot decode them here).
ProofOfAlibi thin_poa(const ProofOfAlibi& poa,
                      const std::vector<geo::GeoZone>& zones, double vmax_mps);

}  // namespace alidrone::core
