// Alibi sufficiency — equation (1) of the paper.
//
// An alibi {S_0..S_n} is sufficient w.r.t. zones Z iff every consecutive
// sample pair's possible-traveling-range ellipse is disjoint from every
// zone. The protocol (and Fig. 8(c)'s counting rule) uses the focal-
// distance criterion: the pair (S_i, S_{i+1}) is insufficient for zone z
// when  min_z (d_{i,z} + d_{i+1,z}) < v_max * (t_{i+1} - t_i), with d the
// distance to the zone *boundary*. Only the nearest zone matters.
//
// The 3D variant (Section VII-B1) replaces ellipses with ellipsoids and
// zones with cylinders.
#pragma once

#include <vector>

#include "geo/ellipse.h"
#include "geo/ellipsoid.h"
#include "geo/geopoint.h"
#include "geo/zone.h"
#include "gps/fix.h"

namespace alidrone::core {

/// One insufficient consecutive pair, for diagnostics.
struct InsufficientPair {
  std::size_t first_index = 0;       ///< i of (S_i, S_{i+1})
  std::size_t zone_index = 0;        ///< nearest violating zone
  double focal_sum_m = 0.0;          ///< D1 + D2 for that zone
  double allowed_m = 0.0;            ///< v_max * (t_{i+1} - t_i)
};

struct SufficiencyReport {
  bool sufficient = false;
  bool well_formed = false;          ///< decodable, time-ordered samples
  std::vector<InsufficientPair> violations;
};

/// Check equation (1) over decoded samples, in a local planar frame.
/// Zones are geodetic; the frame is derived from the first sample.
SufficiencyReport check_sufficiency(const std::vector<gps::GpsFix>& samples,
                                    const std::vector<geo::GeoZone>& zones,
                                    double vmax_mps);

/// Incremental counter of insufficient pairs, as tracked live in the
/// residential field study (Fig. 8(c)). Feed samples in time order.
class InsufficiencyCounter {
 public:
  InsufficiencyCounter(const geo::LocalFrame& frame,
                       std::vector<geo::Circle> local_zones, double vmax_mps);

  /// Returns true if the pair (previous, this sample) was insufficient.
  bool add_sample(const gps::GpsFix& fix);

  int count() const { return count_; }

 private:
  geo::LocalFrame frame_;
  std::vector<geo::Circle> zones_;
  double vmax_;
  bool has_prev_ = false;
  geo::Vec2 prev_pos_{};
  double prev_time_ = 0.0;
  int count_ = 0;
};

/// 3D sufficiency (Section VII-B1): samples carry altitude; zones are
/// cylinders from the ground to their ceiling.
SufficiencyReport check_sufficiency_3d(const std::vector<gps::GpsFix>& samples,
                                       const std::vector<geo::GeoZone3>& zones,
                                       double vmax_mps);

/// Distance from a position to the nearest zone boundary (meters);
/// +infinity when no zones. Negative inside a zone.
double nearest_zone_boundary_distance(const geo::Vec2& position,
                                      const std::vector<geo::Circle>& zones);

}  // namespace alidrone::core
