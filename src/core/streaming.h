// Real-time auditing (paper Section IV-B, step 4).
//
// "To enable real-time auditing, the drone could alternately transmit its
//  PoAs in real-time to the Auditor; however, we do not pursue this
//  solution in our work as it would increase battery drain, violating
//  Goal G2."
//
// This module implements the road not taken so the tradeoff can be
// measured (bench_signing_alternatives prints the energy comparison):
//  - StreamingVerifier: the Auditor-side incremental state. Samples
//    arrive one at a time; each is signature-checked and the consecutive-
//    pair sufficiency condition is evaluated immediately, so a violation
//    is flagged seconds after it happens instead of after landing.
//  - StreamingUplink: the drone-side transmitter, charging radio energy
//    per transmission so the battery cost of per-sample streaming vs one
//    end-of-flight upload is quantified.
#pragma once

#include <optional>
#include <string>

#include "core/poa.h"
#include "core/sufficiency.h"
#include "crypto/rsa.h"
#include "net/transport.h"
#include "resource/cost_model.h"

namespace alidrone::core {

/// Auditor-side incremental PoA verification.
class StreamingVerifier {
 public:
  StreamingVerifier(crypto::RsaPublicKey tee_key, crypto::HashAlgorithm hash,
                    std::vector<geo::GeoZone> zones, double vmax_mps);

  enum class SampleStatus {
    kAccepted,          ///< signature valid, pair sufficient so far
    kBadSignature,      ///< rejected, not counted into the trace
    kMalformed,         ///< undecodable sample bytes
    kOutOfOrder,        ///< timestamp precedes the previous sample
    kInsufficientPair,  ///< accepted, but the alibi gap is a violation
    kInsideZone,        ///< accepted, and the sample is inside an NFZ
  };

  /// Feed the next (sample, signature) pair as it arrives off the radio.
  SampleStatus ingest(const SignedSample& sample);

  std::size_t accepted() const { return accepted_; }
  std::size_t violations() const { return violations_; }
  bool compliant_so_far() const { return violations_ == 0; }
  std::optional<double> last_time() const { return last_time_; }

 private:
  crypto::RsaPublicKey tee_key_;
  crypto::HashAlgorithm hash_;
  std::vector<geo::GeoZone> zones_;
  double vmax_;

  std::optional<geo::LocalFrame> frame_;
  std::vector<geo::Circle> local_zones_;
  std::optional<geo::Vec2> last_pos_;
  std::optional<double> last_time_;
  std::size_t accepted_ = 0;
  std::size_t violations_ = 0;
};

/// Drone-side uplink: sends each sample as it is recorded and tracks the
/// radio energy spent, so the end-of-flight alternative can be compared.
class StreamingUplink {
 public:
  StreamingUplink(net::Transport& bus, std::string endpoint,
                  resource::RadioModel radio = {});

  /// Transmit one recorded sample; returns false on a dropped link
  /// (the sample stays queued for retransmission with the next one).
  bool send(const SignedSample& sample);

  /// Flush any queued (previously dropped) samples.
  bool flush();

  double energy_joules() const { return energy_j_; }
  std::size_t transmissions() const { return transmissions_; }
  std::size_t queued() const { return queue_.size(); }

  /// Energy a single end-of-flight upload of `n` samples of this size
  /// would cost under the same radio model (the paper's chosen design).
  double batch_upload_energy_j(std::size_t n, std::size_t sample_bytes,
                               std::size_t signature_bytes) const;

 private:
  net::Transport& bus_;
  std::string endpoint_;
  resource::RadioModel radio_;
  std::vector<SignedSample> queue_;
  double energy_j_ = 0.0;
  std::size_t transmissions_ = 0;

  static crypto::Bytes encode(const SignedSample& sample);
};

}  // namespace alidrone::core
