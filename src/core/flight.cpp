#include "core/flight.h"

#include "core/flight_actor.h"

namespace alidrone::core {

FlightResult run_flight(tee::DroneTee& tee, gps::GpsReceiverSim& receiver,
                        SamplingPolicy& policy, const FlightConfig& config) {
  // Thin single-actor driver: the whole loop lives in FlightActor now
  // (one receiver tick per step). No submission phase and no transport —
  // a plain flight never enqueues a send.
  FlightActor actor(tee, receiver, policy, config);
  while (!actor.done()) actor.step();
  return actor.take_flight();
}

ProofOfAlibi assemble_poa(const DroneId& drone_id, const FlightConfig& config,
                          crypto::HashAlgorithm hash,
                          const FlightResult& flight) {
  ProofOfAlibi poa;
  poa.drone_id = drone_id;
  poa.mode = config.auth_mode;
  poa.hash = hash;
  poa.encrypted = config.auditor_encryption_key.has_value();
  poa.samples = flight.poa_samples;
  poa.session_key_ciphertext = flight.session_key_ciphertext;
  poa.session_key_signature = flight.session_key_signature;
  poa.batch_signature = flight.batch_signature;
  return poa;
}

}  // namespace alidrone::core
