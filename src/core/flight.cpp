#include "core/flight.h"

#include <stdexcept>

#include "core/sufficiency.h"
#include "crypto/random.h"
#include "tee/gps_sampler_ta.h"

namespace alidrone::core {

namespace {

/// Extra invocations allowed per command to ride out transient (kBusy)
/// world-switch failures. Bounded: a persistently busy secure world must
/// surface as a tee_failure, not hang the flight loop.
constexpr int kMaxTransientRetries = 3;

tee::InvokeResult invoke_sampler(tee::DroneTee& tee, tee::SamplerCommand command,
                                 std::span<const crypto::Bytes> params = {},
                                 std::uint64_t* retries = nullptr) {
  tee::InvokeResult result = tee.monitor().invoke(
      tee.sampler_uuid(), static_cast<std::uint32_t>(command), params);
  for (int attempt = 0;
       result.status == tee::TeeStatus::kBusy && attempt < kMaxTransientRetries;
       ++attempt) {
    if (retries != nullptr) ++*retries;
    result = tee.monitor().invoke(tee.sampler_uuid(),
                                  static_cast<std::uint32_t>(command), params);
  }
  return result;
}

}  // namespace

FlightResult run_flight(tee::DroneTee& tee, gps::GpsReceiverSim& receiver,
                        SamplingPolicy& policy, const FlightConfig& config) {
  FlightResult result;
  gps::GpsDriver normal_world_driver;  // the Adapter's ReadGPS() source
  std::uint64_t last_seq = 0;

  // Audit-trail the secure driver's evidence loss. Overflows are frequent
  // on the per-sample path (it never drains the pending queue), so instead
  // of one event per dropped fix the flight records the onset plus an
  // end-of-flight summary. The listener borrows config.audit, so it is
  // detached again on any exit.
  struct DropListenerGuard {
    tee::DroneTee& tee;
    bool armed = false;
    ~DropListenerGuard() {
      if (armed) tee.set_gps_drop_listener(nullptr);
    }
  } drop_guard{tee};
  const std::uint64_t dropped_at_start = tee.gps_fixes_dropped();
  bool drop_onset_logged = false;
  if (config.audit != nullptr) {
    drop_guard.armed = true;
    tee.set_gps_drop_listener(
        [audit = config.audit, &drop_onset_logged](const gps::GpsFix& dropped,
                                                   std::uint64_t total) {
          if (drop_onset_logged) return;
          drop_onset_logged = true;
          AuditEvent event;
          event.time = dropped.unix_time;
          event.type = AuditEventType::kGpsFixDropped;
          event.subject = "tee-gps-driver";
          event.outcome_ok = false;
          event.detail = "pending-fix queue overflow began; total dropped=" +
                         std::to_string(total);
          audit->record(std::move(event));
        });
  }

  crypto::SecureRandom os_entropy;
  crypto::RandomSource& encryption_rng =
      config.encryption_rng != nullptr ? *config.encryption_rng : os_entropy;
  const double period = receiver.update_period();
  const double start = receiver.next_update_time();

  if (config.cpu != nullptr) {
    tee.set_cost_meter(config.cpu, config.cost_profile);
  }

  // Mode-specific flight setup.
  tee::SamplerCommand sample_command = tee::SamplerCommand::kGetGpsAuth;
  if (config.auth_mode == AuthMode::kHmacSession) {
    if (!config.auditor_encryption_key) {
      throw std::invalid_argument(
          "run_flight: HMAC mode needs the Auditor's public key");
    }
    const std::vector<crypto::Bytes> params{
        config.auditor_encryption_key->n.to_bytes(),
        config.auditor_encryption_key->e.to_bytes()};
    const tee::InvokeResult established = invoke_sampler(
        tee, tee::SamplerCommand::kEstablishHmacKey, params, &result.tee_retries);
    if (!established.ok() || established.outputs.size() != 2) {
      throw std::runtime_error("run_flight: HMAC session key establishment failed");
    }
    result.session_key_ciphertext = established.outputs[0];
    result.session_key_signature = established.outputs[1];
    sample_command = tee::SamplerCommand::kGetGpsHmac;
  } else if (config.auth_mode == AuthMode::kBatchSignature) {
    if (!invoke_sampler(tee, tee::SamplerCommand::kBatchBegin, {},
                        &result.tee_retries)
             .ok()) {
      throw std::runtime_error("run_flight: batch begin failed");
    }
    sample_command = tee::SamplerCommand::kBatchAppend;
  }

  for (double now = start; now <= config.end_time + 1e-9; now += period) {
    if (config.cpu != nullptr) config.cpu->advance_wall(period);

    const std::vector<std::string> sentences = receiver.advance_to(now);
    for (const std::string& s : sentences) {
      tee.feed_gps(s);                // hardware UART into the secure world
      normal_world_driver.feed(s);    // the Adapter's replica feed
    }

    if (normal_world_driver.sequence() == last_seq) continue;  // no fresh fix
    last_seq = normal_world_driver.sequence();
    ++result.gps_updates;

    const auto fix = normal_world_driver.get_gps();
    if (!fix || !fix->valid) continue;

    // The cheap normal-world work: read + adaptive condition check.
    if (config.cpu != nullptr) {
      config.cpu->charge(resource::Op::kGpsReadParse, config.cost_profile);
      config.cpu->charge(resource::Op::kEllipseCheck, config.cost_profile);
    }

    FlightLogEntry entry;
    entry.time = fix->unix_time;
    entry.nearest_zone_distance = nearest_zone_boundary_distance(
        config.frame.to_local(fix->position), config.local_zones);

    if (policy.should_authenticate(*fix)) {
      ++result.authentications;
      const tee::InvokeResult auth =
          invoke_sampler(tee, sample_command, {}, &result.tee_retries);
      const std::size_t expected_outputs =
          config.auth_mode == AuthMode::kBatchSignature ? 1u : 2u;
      if (auth.ok() && auth.outputs.size() == expected_outputs) {
        SignedSample sample{auth.outputs[0],
                            expected_outputs == 2 ? auth.outputs[1]
                                                  : crypto::Bytes{}};
        // Tell the policy what was actually authenticated (the TEE's own
        // fix, which is the same update in this wiring).
        if (const auto recorded_fix = sample.fix()) {
          policy.on_recorded(*recorded_fix);
        }
        if (config.auditor_encryption_key) {
          if (config.cpu != nullptr) {
            config.cpu->charge(
                config.auditor_encryption_key->modulus_bits() >= 2048
                    ? resource::Op::kRsaEncrypt2048
                    : resource::Op::kRsaEncrypt1024,
                config.cost_profile);
          }
          sample.sample = crypto::rsa_encrypt(*config.auditor_encryption_key,
                                              sample.sample, encryption_rng);
        }
        if (config.cpu != nullptr) {
          config.cpu->charge(resource::Op::kPersistSample, config.cost_profile);
        }
        result.poa_samples.push_back(std::move(sample));
        entry.recorded = true;
      } else {
        ++result.tee_failures;
      }
    }

    entry.cumulative_samples = result.poa_samples.size();
    result.log.push_back(entry);
  }

  if (config.auth_mode == AuthMode::kBatchSignature &&
      !result.poa_samples.empty()) {
    const tee::InvokeResult finalized = invoke_sampler(
        tee, tee::SamplerCommand::kBatchFinalize, {}, &result.tee_retries);
    if (finalized.ok() && finalized.outputs.size() == 2) {
      result.batch_signature = finalized.outputs[1];
    } else {
      ++result.tee_failures;
    }
  }

  if (config.audit != nullptr) {
    const std::uint64_t dropped = tee.gps_fixes_dropped() - dropped_at_start;
    if (dropped > 0) {
      AuditEvent event;
      event.time = config.end_time;
      event.type = AuditEventType::kGpsFixDropped;
      event.subject = "tee-gps-driver";
      event.outcome_ok = false;
      event.detail =
          "flight summary: " + std::to_string(dropped) + " fixes dropped";
      config.audit->record(std::move(event));
    }
  }
  return result;
}

}  // namespace alidrone::core
