#include "core/thinning.h"

#include <limits>

namespace alidrone::core {

namespace {

/// Focal-distance sufficiency of the pair (i, j) against all zones.
bool pair_sufficient(const std::vector<geo::Vec2>& positions,
                     const std::vector<double>& times,
                     const std::vector<geo::Circle>& zones, double vmax,
                     std::size_t i, std::size_t j) {
  if (zones.empty()) return true;
  const double allowed = vmax * (times[j] - times[i]);
  double min_focal = std::numeric_limits<double>::infinity();
  for (const geo::Circle& z : zones) {
    min_focal = std::min(min_focal, z.boundary_distance(positions[i]) +
                                        z.boundary_distance(positions[j]));
  }
  return min_focal >= allowed;
}

}  // namespace

ThinningResult thin_samples(const std::vector<gps::GpsFix>& samples,
                            const std::vector<geo::GeoZone>& zones,
                            double vmax_mps) {
  ThinningResult result;
  result.original_count = samples.size();
  if (samples.empty()) return result;

  const geo::LocalFrame frame(samples.front().position);
  std::vector<geo::Vec2> positions;
  std::vector<double> times;
  positions.reserve(samples.size());
  times.reserve(samples.size());
  for (const gps::GpsFix& s : samples) {
    positions.push_back(frame.to_local(s.position));
    times.push_back(s.unix_time);
  }
  std::vector<geo::Circle> local_zones;
  local_zones.reserve(zones.size());
  for (const geo::GeoZone& z : zones) local_zones.push_back(geo::to_local(frame, z));

  result.input_sufficient =
      check_sufficiency(samples, zones, vmax_mps).sufficient;

  // Greedy argmax: from the last kept sample i, jump to the largest j
  // such that the pair (i, j) is sufficient. If even (i, i+1) is not —
  // the trace itself is insufficient there — keep the adjacent sample so
  // the violation stays visible.
  result.kept_indices.push_back(0);
  std::size_t i = 0;
  while (i + 1 < samples.size()) {
    std::size_t best = i + 1;
    for (std::size_t j = i + 1; j < samples.size(); ++j) {
      if (pair_sufficient(positions, times, local_zones, vmax_mps, i, j)) {
        best = j;
      }
      // No early break: sufficiency is not monotone in j when the drone
      // turns back toward a zone, and candidates are cheap to test.
    }
    result.kept_indices.push_back(best);
    i = best;
  }

  std::vector<gps::GpsFix> kept;
  kept.reserve(result.kept_indices.size());
  for (const std::size_t k : result.kept_indices) kept.push_back(samples[k]);
  result.output_sufficient = check_sufficiency(kept, zones, vmax_mps).sufficient;
  return result;
}

ProofOfAlibi thin_poa(const ProofOfAlibi& poa,
                      const std::vector<geo::GeoZone>& zones, double vmax_mps) {
  if (poa.mode != AuthMode::kRsaPerSample || poa.encrypted) return poa;

  std::vector<gps::GpsFix> fixes;
  fixes.reserve(poa.samples.size());
  for (const SignedSample& s : poa.samples) {
    const auto f = s.fix();
    if (!f) return poa;  // undecodable: leave untouched
    fixes.push_back(*f);
  }

  const ThinningResult thinned = thin_samples(fixes, zones, vmax_mps);
  ProofOfAlibi out = poa;
  out.samples.clear();
  out.samples.reserve(thinned.kept_indices.size());
  for (const std::size_t k : thinned.kept_indices) {
    out.samples.push_back(poa.samples[k]);
  }
  return out;
}

}  // namespace alidrone::core
