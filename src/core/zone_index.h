// Spatial index over registered no-fly-zones.
//
// The paper's Auditor "pulls a list of NFZs within the rectangle" for
// every zone query; at B4UFLY scale (tens of thousands of zones nation-
// wide) a linear scan per query does not hold up. ZoneIndex buckets zone
// centers into a uniform geodetic grid: rectangle queries touch only the
// covered cells, and nearest-zone lookups expand ring by ring.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/protocol_types.h"
#include "geo/zone.h"

namespace alidrone::core {

class ZoneIndex {
 public:
  /// `cell_degrees` is the grid pitch; 0.05 deg ~ 5.5 km of latitude,
  /// comfortably larger than typical zone radii.
  explicit ZoneIndex(double cell_degrees = 0.05);

  void insert(const ZoneId& id, const geo::GeoZone& zone);
  bool erase(const ZoneId& id);
  std::size_t size() const { return zones_.size(); }

  /// Zones whose center lies inside the rectangle (matching the paper's
  /// center-in-rectangle query semantics).
  std::vector<ZoneId> query_rect(const QueryRect& rect) const;

  /// Zone whose boundary is nearest to `p`; nullopt when empty.
  struct Nearest {
    ZoneId id;
    double boundary_distance_m = 0.0;
  };
  std::optional<Nearest> nearest(geo::GeoPoint p) const;

  const geo::GeoZone* find(const ZoneId& id) const;

 private:
  using CellKey = std::pair<std::int32_t, std::int32_t>;

  double cell_degrees_;
  std::map<ZoneId, geo::GeoZone> zones_;
  std::map<CellKey, std::vector<ZoneId>> cells_;

  CellKey cell_of(geo::GeoPoint p) const;
};

}  // namespace alidrone::core
