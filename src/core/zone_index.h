// Spatial index over registered no-fly-zones.
//
// The paper's Auditor "pulls a list of NFZs within the rectangle" for
// every zone query; at B4UFLY scale (tens of thousands of zones nation-
// wide) a linear scan per query does not hold up. ZoneIndex buckets zone
// centers into a uniform geodetic grid: rectangle queries touch only the
// covered cells, and nearest-zone lookups expand ring by ring.
//
// Storage is hash-based (std::unordered_map for both the zone table and
// the cell grid): the hot path is point lookups — cell probes in
// query_rect/nearest and id lookups in find — where the red-black tree's
// pointer chasing and comparisons lose to a single hash probe. Query
// results are order-stable regardless of hash iteration order: query_rect
// sorts its result and nearest breaks distance ties by zone id.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/protocol_types.h"
#include "geo/zone.h"

namespace alidrone::core {

class ZoneIndex {
 public:
  /// `cell_degrees` is the grid pitch; 0.05 deg ~ 5.5 km of latitude,
  /// comfortably larger than typical zone radii.
  explicit ZoneIndex(double cell_degrees = 0.05);

  void insert(const ZoneId& id, const geo::GeoZone& zone);
  bool erase(const ZoneId& id);
  std::size_t size() const { return zones_.size(); }

  /// Pre-size the hash tables for an expected zone count (optional; insert
  /// grows them on its own).
  void reserve(std::size_t zone_count);

  /// Zones whose center lies inside the rectangle (matching the paper's
  /// center-in-rectangle query semantics), sorted by id.
  std::vector<ZoneId> query_rect(const QueryRect& rect) const;

  /// Zone whose boundary is nearest to `p`; nullopt when empty. Distance
  /// ties resolve to the smallest zone id.
  struct Nearest {
    ZoneId id;
    double boundary_distance_m = 0.0;
  };
  std::optional<Nearest> nearest(geo::GeoPoint p) const;

  const geo::GeoZone* find(const ZoneId& id) const;

 private:
  using CellKey = std::pair<std::int32_t, std::int32_t>;

  struct CellKeyHash {
    std::size_t operator()(const CellKey& key) const noexcept {
      // Pack both 32-bit coordinates into one word and finish with a
      // 64-bit mix (splitmix64): adjacent cells must not collide, and
      // grid coordinates are small signed values that a naive XOR would
      // cluster badly.
      std::uint64_t x =
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.first)) << 32) |
          static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.second));
      x += 0x9e3779b97f4a7c15ull;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      return static_cast<std::size_t>(x ^ (x >> 31));
    }
  };

  double cell_degrees_;
  std::unordered_map<ZoneId, geo::GeoZone> zones_;
  std::unordered_map<CellKey, std::vector<ZoneId>, CellKeyHash> cells_;

  CellKey cell_of(geo::GeoPoint p) const;
};

}  // namespace alidrone::core
