// core::ReplicatedAuditor — N Auditor replicas behind one Transport,
// kept convergent by write-ahead ledger replication.
//
// A single Auditor process is a single point of failure AND a single
// point of trust: it can crash mid-flight, and nothing stops a dishonest
// operator from quietly rewriting its audit history. This federation
// addresses both with the same mechanism:
//
//   replicate  every write (registration, PoA submission, TESLA op,
//              accusation) arrives at one replica's "<prefix><k>.*"
//              endpoint, is appended to that replica's ledger as a
//              kReplicatedRequest entry (method byte + request frame),
//              executed through Auditor::handle_frame, and forwarded to
//              every peer's "<prefix><j>.apply" endpoint over a
//              ReliableChannel. Peers re-execute the frame identically —
//              the Auditor's evaluate/commit discipline is deterministic,
//              so derived ledger entries (audit events, PoA anchors)
//              regenerate byte-for-byte and all replica ledgers carry the
//              same stream. Zone queries are reads: served locally, never
//              replicated, excluded from ledger anchoring by default.
//   dedup      each replica remembers recent request digests, so a frame
//              that arrives twice (client retry after a lost response,
//              failover resubmission, forward after a direct submission)
//              returns the first response and appends nothing — writes
//              are exactly-once per replica no matter the path taken.
//   compare    one 32-byte ledger root per replica decides convergence;
//              check_divergence() runs a Merkle range descent over the
//              bus to name the exact first divergent segment when roots
//              disagree (a tampered or forked replica cannot hide where).
//   catch up   a replica that slept through traffic (chaos outage window)
//              fetches peer segments over the bus, re-applies the missed
//              kReplicatedRequest entries, and converges to the same
//              root.
//
// Replicas are constructed from the same key seed, so they share one
// Auditor keypair: a drone that encrypted its samples for the primary
// can fail over to a follower mid-flight and still be verified.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/audit_log.h"
#include "core/auditor.h"
#include "crypto/random.h"
#include "ledger/ledger.h"
#include "net/transport.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "resilience/reliable_channel.h"
#include "resilience/sim_clock.h"

namespace alidrone::core {

class ReplicatedAuditor {
 public:
  struct Config {
    std::size_t replicas = 3;
    std::size_t key_bits = 512;
    /// Seeds one DeterministicRandom per replica — the SAME seed, so all
    /// replicas generate the identical Auditor keypair (failover
    /// requirement: samples encrypted for one replica decrypt at all).
    std::string key_seed = "replicated-auditor";
    /// Replica k binds "<prefix>k.*" ("auditor0.register_drone", ...).
    std::string prefix = "auditor";
    ProtocolParams params;
    /// Per-replica ledger root directory; replica k persists under
    /// "<ledger_directory>/replica<k>". Empty = in-memory ledgers.
    std::filesystem::path ledger_directory;
    std::size_t segment_capacity = 8;
    /// Request digests remembered per replica for exactly-once re-execution.
    std::size_t dedup_capacity = 4096;
    /// Channel used for peer forwarding (seed is offset per replica).
    resilience::ReliableChannel::Config channel;
    /// AuditEventTypes anchored into the ledgers. Zone queries are
    /// excluded: they are served locally per replica, so anchoring them
    /// would fork otherwise-identical ledger streams.
    std::uint32_t anchor_mask = default_anchor_mask();
    obs::MetricsRegistry* metrics = nullptr;
    obs::FlightRecorder* recorder = nullptr;
  };

  static constexpr std::uint32_t default_anchor_mask() {
    return AuditLog::kAnchorAll &
           ~AuditLog::anchor_bit(AuditEventType::kZoneQuery);
  }

  /// Constructs the replicas and binds every endpoint on `bus`. The bus
  /// and clock are borrowed and must outlive the federation.
  ReplicatedAuditor(net::Transport& bus, resilience::SimClock& clock,
                    Config config);

  std::size_t replica_count() const { return replicas_.size(); }
  std::string replica_prefix(std::size_t k) const {
    return config_.prefix + std::to_string(k);
  }
  /// All replica prefixes in order — what a failover-aware client feeds
  /// DroneClient::set_auditor_endpoints.
  std::vector<std::string> client_prefixes() const;

  Auditor& replica(std::size_t k) { return *replicas_[k]->auditor; }
  const Auditor& replica(std::size_t k) const { return *replicas_[k]->auditor; }
  std::shared_ptr<ledger::Ledger> replica_ledger(std::size_t k) const {
    return replicas_[k]->ledger;
  }
  std::shared_ptr<AuditLog> replica_audit_log(std::size_t k) const {
    return replicas_[k]->audit;
  }

  ledger::Digest root_of(std::size_t k) const {
    return replicas_[k]->ledger->root_hash();
  }
  /// True when every replica reports the same ledger root.
  bool converged() const;

  struct Divergence {
    std::size_t replica_a = 0;
    std::size_t replica_b = 0;
    /// First top-tree leaf (= segment index) where the two ledgers
    /// differ; min(segment counts) when one is a strict prefix.
    std::optional<std::size_t> segment;
  };
  /// Merkle range descent between two replicas' ledgers, probing range
  /// hashes over the bus ("<prefix>k.ledger_range"). Nullopt when the
  /// ledgers agree.
  std::optional<Divergence> check_divergence(std::size_t a,
                                             std::size_t b) const;

  /// Pull the entries replica `to` is missing from replica `from` (bus
  /// segment fetch) and re-apply their kReplicatedRequest frames locally.
  /// Returns the number of requests re-applied; nullopt when the ledgers
  /// had truly diverged (not a prefix — check_divergence names where).
  std::optional<std::size_t> catch_up(std::size_t to, std::size_t from);

  struct Counters {
    std::uint64_t forwards = 0;          ///< peer forwards attempted
    std::uint64_t forward_failures = 0;  ///< peer unreachable (catch-up later)
    std::uint64_t dedup_hits = 0;        ///< re-deliveries answered from cache
    std::uint64_t reapplied = 0;         ///< requests re-executed by catch_up
  };
  Counters counters() const;

 private:
  struct Replica {
    std::size_t index = 0;
    std::unique_ptr<Auditor> auditor;
    std::shared_ptr<ledger::Ledger> ledger;
    std::shared_ptr<AuditLog> audit;
    std::unique_ptr<resilience::ReliableChannel> forward;
    std::map<crypto::Bytes, crypto::Bytes> dedup;
    std::deque<crypto::Bytes> dedup_order;
  };

  /// Execute one write frame on replica k: dedup, write-ahead ledger
  /// entry, Auditor::handle_frame, optional peer forwarding.
  crypto::Bytes apply_local(Replica& rep, Auditor::WireMethod method,
                            const crypto::Bytes& frame, bool replicate);
  void bind_replica(Replica& rep);
  static crypto::Bytes encode_apply(Auditor::WireMethod method,
                                    const crypto::Bytes& frame);

  net::Transport& bus_;
  Config config_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  obs::Counter* forwards_;
  obs::Counter* forward_failures_;
  obs::Counter* dedup_hits_;
  obs::Counter* reapplied_;
};

}  // namespace alidrone::core
