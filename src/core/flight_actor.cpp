#include "core/flight_actor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/messages.h"
#include "core/sufficiency.h"
#include "tee/gps_sampler_ta.h"
#include "tee/sample_codec.h"

namespace alidrone::core {

namespace {

crypto::Bytes be_bytes(std::uint64_t v, std::size_t width) {
  crypto::Bytes out(width);
  for (std::size_t i = 0; i < width; ++i) {
    out[i] = static_cast<std::uint8_t>((v >> (8 * (width - 1 - i))) & 0xFF);
  }
  return out;
}

std::uint64_t read_be64(const crypto::Bytes& b) {
  std::uint64_t v = 0;
  for (const std::uint8_t byte : b) v = (v << 8) | byte;
  return v;
}

}  // namespace

FlightActor::FlightActor(tee::DroneTee& tee, gps::GpsReceiverSim& receiver,
                         SamplingPolicy& policy, FlightConfig config)
    : tee_(tee),
      receiver_(receiver),
      policy_(policy),
      is_tesla_(false),
      config_(std::move(config)),
      state_(State::kStandardSetup) {
  wakeup_ = receiver_.next_update_time();
}

FlightActor::FlightActor(tee::DroneTee& tee, gps::GpsReceiverSim& receiver,
                         SamplingPolicy& policy, DroneId drone_id,
                         TeslaFlightConfig config)
    : tee_(tee),
      receiver_(receiver),
      policy_(policy),
      is_tesla_(true),
      tesla_config_(std::move(config)),
      drone_id_(std::move(drone_id)),
      state_(State::kTeslaInit) {
  wakeup_ = receiver_.next_update_time();
}

void FlightActor::set_submission(Submission submission) {
  submission_ = std::move(submission);
}

void FlightActor::step() {
  switch (state_) {
    case State::kStandardSetup:
      step_standard_setup();
      break;
    case State::kStandardSampling:
      standard_tick();
      advance_standard();
      break;
    case State::kSubmitting:
      enqueue_submit_attempt();
      break;
    case State::kTeslaInit:
      step_tesla_init();
      break;
    case State::kTeslaSampling:
      step_tesla_sampling();
      break;
    case State::kTeslaFlush:
      step_tesla_flush();
      break;
    case State::kTeslaFinalize:
      step_tesla_finalize();
      break;
    case State::kDone:
      break;
  }
}

void FlightActor::flush(net::Transport& bus) {
  while (!outbox_.empty()) {
    ActorSend send = std::move(outbox_.front());
    outbox_.pop_front();
    try {
      const crypto::Bytes reply = bus.request(send.endpoint, send.frame);
      if (send.on_reply) send.on_reply(&reply);
    } catch (const net::TimeoutError&) {
      if (send.on_reply) send.on_reply(nullptr);
    }
  }
}

void FlightActor::finish_now() {
  state_ = State::kDone;
  done_ = true;
}

// ---- Standard mode (the run_flight loop, one tick per step) ----

void FlightActor::step_standard_setup() {
  drop_scope_.emplace(tee_, config_.audit);
  os_entropy_.emplace();
  encryption_rng_ = config_.encryption_rng != nullptr ? config_.encryption_rng
                                                      : &*os_entropy_;
  period_ = receiver_.update_period();
  start_ = receiver_.next_update_time();

  if (config_.cpu != nullptr) {
    tee_.set_cost_meter(config_.cpu, config_.cost_profile);
  }
  cost_ = CostMeter{config_.cpu, config_.cost_profile};

  // Mode-specific flight setup.
  sample_command_ = tee::SamplerCommand::kGetGpsAuth;
  if (config_.auth_mode == AuthMode::kHmacSession) {
    if (!config_.auditor_encryption_key) {
      throw std::invalid_argument(
          "run_flight: HMAC mode needs the Auditor's public key");
    }
    const std::vector<crypto::Bytes> params{
        config_.auditor_encryption_key->n.to_bytes(),
        config_.auditor_encryption_key->e.to_bytes()};
    const tee::InvokeResult established = invoke_sampler_with_retry(
        tee_, tee::SamplerCommand::kEstablishHmacKey, params,
        &flight_.tee_retries);
    if (!established.ok() || established.outputs.size() != 2) {
      throw std::runtime_error(
          "run_flight: HMAC session key establishment failed");
    }
    flight_.session_key_ciphertext = established.outputs[0];
    flight_.session_key_signature = established.outputs[1];
    sample_command_ = tee::SamplerCommand::kGetGpsHmac;
  } else if (config_.auth_mode == AuthMode::kBatchSignature) {
    if (!invoke_sampler_with_retry(tee_, tee::SamplerCommand::kBatchBegin, {},
                                   &flight_.tee_retries)
             .ok()) {
      throw std::runtime_error("run_flight: batch begin failed");
    }
    sample_command_ = tee::SamplerCommand::kBatchAppend;
  }

  now_ = start_;
  state_ = State::kStandardSampling;
  if (now_ <= config_.end_time + 1e-9) {
    standard_tick();
    advance_standard();
  } else {
    standard_finish();
  }
}

void FlightActor::standard_tick() {
  cost_.advance_wall(period_);

  const std::vector<std::string> sentences = receiver_.advance_to(now_);
  for (const std::string& s : sentences) {
    tee_.feed_gps(s);               // hardware UART into the secure world
    normal_world_driver_.feed(s);   // the Adapter's replica feed
  }

  if (normal_world_driver_.sequence() == last_seq_) return;  // no fresh fix
  last_seq_ = normal_world_driver_.sequence();
  ++flight_.gps_updates;

  const auto fix = normal_world_driver_.get_gps();
  if (!fix || !fix->valid) return;

  // The cheap normal-world work: read + adaptive condition check.
  cost_.charge(resource::Op::kGpsReadParse);
  cost_.charge(resource::Op::kEllipseCheck);

  FlightLogEntry entry;
  entry.time = fix->unix_time;
  entry.nearest_zone_distance = nearest_zone_boundary_distance(
      config_.frame.to_local(fix->position), config_.local_zones);

  if (policy_.should_authenticate(*fix)) {
    ++flight_.authentications;
    const tee::InvokeResult auth = invoke_sampler_with_retry(
        tee_, sample_command_, {}, &flight_.tee_retries);
    const std::size_t expected_outputs =
        config_.auth_mode == AuthMode::kBatchSignature ? 1u : 2u;
    if (auth.ok() && auth.outputs.size() == expected_outputs) {
      SignedSample sample{auth.outputs[0], expected_outputs == 2
                                               ? auth.outputs[1]
                                               : crypto::Bytes{}};
      // Tell the policy what was actually authenticated (the TEE's own
      // fix, which is the same update in this wiring).
      if (const auto recorded_fix = sample.fix()) {
        policy_.on_recorded(*recorded_fix);
      }
      if (config_.auditor_encryption_key) {
        cost_.charge(config_.auditor_encryption_key->modulus_bits() >= 2048
                         ? resource::Op::kRsaEncrypt2048
                         : resource::Op::kRsaEncrypt1024);
        sample.sample = crypto::rsa_encrypt(*config_.auditor_encryption_key,
                                            sample.sample, *encryption_rng_);
      }
      cost_.charge(resource::Op::kPersistSample);
      flight_.poa_samples.push_back(std::move(sample));
      entry.recorded = true;
    } else {
      ++flight_.tee_failures;
    }
  }

  entry.cumulative_samples = flight_.poa_samples.size();
  flight_.log.push_back(entry);
}

void FlightActor::advance_standard() {
  now_ += period_;
  if (now_ <= config_.end_time + 1e-9) {
    wakeup_ = now_;
  } else {
    standard_finish();
  }
}

void FlightActor::standard_finish() {
  if (config_.auth_mode == AuthMode::kBatchSignature &&
      !flight_.poa_samples.empty()) {
    const tee::InvokeResult finalized = invoke_sampler_with_retry(
        tee_, tee::SamplerCommand::kBatchFinalize, {}, &flight_.tee_retries);
    if (finalized.ok() && finalized.outputs.size() == 2) {
      flight_.batch_signature = finalized.outputs[1];
    } else {
      ++flight_.tee_failures;
    }
  }
  drop_scope_->finish(config_.end_time);
  if (submission_) {
    begin_submission();
  } else {
    finish_now();
  }
}

void FlightActor::begin_submission() {
  ProofOfAlibi poa =
      assemble_poa(submission_->drone_id, config_, submission_->hash, flight_);
  if (submission_->mutate) poa = submission_->mutate(std::move(poa));
  // Frozen at assembly: every retry redelivers byte-identical proof bytes,
  // so a redelivery after a lost verdict hits the Auditor's content dedup.
  submit_frame_ = SubmitPoaRequest{poa.serialize()}.encode();
  backoff_rng_.emplace(submission_->backoff_seed);
  state_ = State::kSubmitting;
  enqueue_submit_attempt();
}

void FlightActor::enqueue_submit_attempt() {
  ++submit_attempts_;
  outbox_.push_back(ActorSend{
      submission_->auditor_prefix + ".submit_poa", submit_frame_,
      [this](const crypto::Bytes* reply) {
        if (reply != nullptr && !net::is_retry_later(*reply)) {
          verdict_ = PoaVerdict::decode(*reply);
          finish_now();
          return;
        }
        // Lost on the wire or admission-queue backpressure: back off on
        // the virtual clock and redeliver the frozen frame.
        if (submit_attempts_ >= submission_->retry.max_attempts) {
          finish_now();
          return;
        }
        now_ += submission_->retry.backoff_after(submit_attempts_,
                                                 *backoff_rng_);
        wakeup_ = now_;
      }});
}

// ---- TESLA broadcast mode (the run_tesla_broadcast_flight loop) ----

void FlightActor::feed_one_update(double at) {
  for (const std::string& s : receiver_.advance_to(at)) tee_.feed_gps(s);
}

void FlightActor::step_tesla_init() {
  period_ = receiver_.update_period();
  start_ = receiver_.next_update_time();

  // The TA needs a fix before it can anchor the flight epoch.
  feed_one_update(start_);

  chain_length_ = tesla_config_.chain_length;
  if (chain_length_ == 0) {
    const double duration = std::max(0.0, tesla_config_.end_time - start_);
    chain_length_ = static_cast<std::uint32_t>(
                        std::ceil(duration / tesla_config_.interval_s)) +
                    tesla_config_.disclosure_delay + 4;
  }
  interval_us_ = static_cast<std::uint64_t>(
      std::llround(tesla_config_.interval_s * 1e6));

  const std::vector<crypto::Bytes> begin_params{
      be_bytes(chain_length_, 4), be_bytes(tesla_config_.disclosure_delay, 4),
      be_bytes(interval_us_, 8)};
  const tee::InvokeResult begun = invoke_sampler_with_retry(
      tee_, tee::SamplerCommand::kTeslaBegin, begin_params);
  if (!begun.ok() || begun.outputs.size() != 2) {
    ++tesla_.tee_failures;
    finish_now();
    return;
  }
  commit_ = tee::parse_tesla_commit(begun.outputs[0]);
  if (!commit_) {
    ++tesla_.tee_failures;
    finish_now();
    return;
  }

  TeslaAnnounceRequest announce;
  announce.drone_id = drone_id_;
  announce.session_nonce = tesla_config_.session_nonce;
  announce.hash = tesla_config_.hash;
  announce.commit_payload = begun.outputs[0];
  announce.commit_signature = begun.outputs[1];
  announce_frame_ = announce.encode();
  enqueue_try_announce();

  last_fix_time_ = start_;
  now_ = start_ + period_;
  if (now_ <= tesla_config_.end_time + 1e-9) {
    state_ = State::kTeslaSampling;
    wakeup_ = now_;
  } else {
    enter_tesla_flush();
  }
}

void FlightActor::enqueue_try_announce() {
  if (tesla_.announced) return;
  outbox_.push_back(ActorSend{
      tesla_config_.auditor_prefix + ".tesla_announce", announce_frame_,
      [this](const crypto::Bytes* reply) {
        std::optional<TeslaAck> ack;
        if (reply != nullptr) ack = TeslaAck::decode(*reply);
        if (ack && ack->accepted) tesla_.announced = true;
      }});
}

void FlightActor::disclose_up_to(std::uint64_t matured) {
  matured = std::min<std::uint64_t>(matured, chain_length_);
  if (matured <= last_disclosed_) return;
  const std::vector<crypto::Bytes> params{be_bytes(matured, 8)};
  const tee::InvokeResult disclosed =
      invoke_sampler_with_retry(tee_, tee::SamplerCommand::kTeslaDisclose,
                                params);
  if (!disclosed.ok() || disclosed.outputs.size() != 1) {
    ++tesla_.tee_failures;
    return;
  }
  TeslaDiscloseRequest request;
  request.drone_id = drone_id_;
  request.session_nonce = tesla_config_.session_nonce;
  request.index = matured;
  request.key = disclosed.outputs[0];
  ++tesla_.disclosures_sent;
  outbox_.push_back(ActorSend{
      tesla_config_.auditor_prefix + ".tesla_disclose", request.encode(),
      [this, matured](const crypto::Bytes* reply) {
        std::optional<TeslaAck> ack;
        if (reply != nullptr) ack = TeslaAck::decode(*reply);
        if (!ack) {
          ++tesla_.disclosures_dropped;
          return;  // a later disclosure settles this interval too
        }
        if (ack->accepted) last_disclosed_ = matured;
      }});
}

std::uint64_t FlightActor::matured_at(double unix_time) const {
  // The highest interval whose key has passed its disclosure time on the
  // drone's GPS clock (t >= t0 + (m + d) * tau  =>  m matured).
  const std::int64_t t_us = tee::time_us_of(unix_time);
  if (t_us < commit_->t0_us) return 0;
  const std::uint64_t elapsed =
      static_cast<std::uint64_t>(t_us - commit_->t0_us) / interval_us_;
  return elapsed <= tesla_config_.disclosure_delay
             ? 0
             : elapsed - tesla_config_.disclosure_delay;
}

void FlightActor::step_tesla_sampling() {
  feed_one_update(now_);
  ++tesla_.gps_updates;
  const tee::InvokeResult fix =
      invoke_sampler_with_retry(tee_, tee::SamplerCommand::kGetGpsTesla);
  enqueue_try_announce();

  if (fix.status == tee::TeeStatus::kSuccess && fix.outputs.size() == 3) {
    const auto decoded = tee::decode_sample(fix.outputs[0]);
    if (decoded) {
      last_fix_time_ = decoded->unix_time;
      if (policy_.should_authenticate(*decoded)) {
        policy_.on_recorded(*decoded);
        const std::uint64_t interval = read_be64(fix.outputs[2]);
        tesla_.max_interval_used =
            std::max(tesla_.max_interval_used, interval);
        TeslaSampleBroadcast sample;
        sample.drone_id = drone_id_;
        sample.session_nonce = tesla_config_.session_nonce;
        sample.interval = interval;
        sample.sample = fix.outputs[0];
        sample.tag = fix.outputs[1];
        ++tesla_.samples_sent;
        outbox_.push_back(ActorSend{
            tesla_config_.auditor_prefix + ".tesla_sample", sample.encode(),
            [this](const crypto::Bytes* reply) {
              std::optional<TeslaAck> ack;
              if (reply != nullptr) ack = TeslaAck::decode(*reply);
              if (!ack) {
                ++tesla_.samples_dropped;
              } else if (!ack->accepted) {
                ++tesla_.samples_rejected;
              }
            }});
      }
    }
  } else if (fix.status != tee::TeeStatus::kNotReady) {
    ++tesla_.tee_failures;
  }

  disclose_up_to(matured_at(last_fix_time_));

  now_ += period_;
  if (now_ <= tesla_config_.end_time + 1e-9) {
    wakeup_ = now_;
  } else {
    enter_tesla_flush();
  }
}

void FlightActor::enter_tesla_flush() {
  // Post-flight flush: keep the receiver (and with it the TA's clock)
  // moving until every used interval's key has matured, been disclosed
  // and acknowledged — exactly what a drone broadcasting disclosures
  // after landing does. Bounded against pathological fault schedules.
  flush_target_ = std::min<std::uint64_t>(
      std::max<std::uint64_t>(tesla_.max_interval_used, 1), chain_length_);
  now_ = tesla_config_.end_time;
  flush_i_ = 0;
  state_ = State::kTeslaFlush;
  wakeup_ = now_ + period_;
}

void FlightActor::step_tesla_flush() {
  // The exit condition reads last_disclosed_, which the previous flush
  // iteration's ack updated — so it is checked at the top of the step,
  // after that reply has been delivered.
  if (flush_i_ >= tesla_config_.max_flush_updates ||
      last_disclosed_ >= flush_target_) {
    enter_tesla_finalize();
    return;
  }
  ++flush_i_;
  now_ += period_;
  feed_one_update(now_);
  last_fix_time_ = now_;
  enqueue_try_announce();
  disclose_up_to(matured_at(last_fix_time_));
  wakeup_ = now_ + period_;
}

void FlightActor::enter_tesla_finalize() {
  TeslaFinalizeRequest finalize;
  finalize.drone_id = drone_id_;
  finalize.session_nonce = tesla_config_.session_nonce;
  finalize.end_time = tesla_config_.end_time;
  finalize_frame_ = finalize.encode();
  finalize_attempts_ = 0;
  finalize_pending_refeed_ = false;
  state_ = State::kTeslaFinalize;
  step_tesla_finalize();  // first attempt goes out with this step's flush
}

void FlightActor::step_tesla_finalize() {
  if (finalize_pending_refeed_) {
    // The previous attempt was lost: advance the receiver one period
    // before redelivering, as the blocking loop's catch block did.
    finalize_pending_refeed_ = false;
    now_ += period_;
    feed_one_update(now_);
  }
  if (finalize_attempts_ >= tesla_config_.max_flush_updates) {
    finish_now();
    return;
  }
  ++finalize_attempts_;
  outbox_.push_back(ActorSend{
      tesla_config_.auditor_prefix + ".tesla_finalize", finalize_frame_,
      [this](const crypto::Bytes* reply) {
        if (reply == nullptr) {
          finalize_pending_refeed_ = true;
          wakeup_ = now_ + period_;
          return;
        }
        // Any delivered reply settles the flight, decodable or not.
        const auto verdict = PoaVerdict::decode(*reply);
        if (verdict) {
          tesla_.verdict = *verdict;
          tesla_.finalized = true;
        }
        finish_now();
      }});
}

}  // namespace alidrone::core
