// AuditorIngest — batched, backpressured PoA admission for fleet traffic.
//
// Many drones submit proofs concurrently; one Auditor must verify them at
// near-hardware speed without giving up the serial path's determinism.
// The pipeline in front of Auditor::verify does four things:
//
//   admit    producer threads decode (zero-copy), dedup against the
//            Auditor's content-digest cache, copy the proof into a pooled
//            frame and push it onto a bounded MPMC queue. A full queue is
//            answered with net::retry_later_reply() — explicit
//            backpressure ReliableChannel retries without charging its
//            circuit breaker — instead of unbounded buffering.
//   batch    one ingest thread drains up to max_batch queued submissions.
//   verify   the batch is parsed into reused PoaView scratch and
//            evaluated in parallel on an internal ThreadPool (pure reads:
//            shard locks + zone snapshot; see Auditor::evaluate_poa).
//   commit   side effects (retention, dedup cache, audit events) are
//            applied serially in admission order — the queue is FIFO, so
//            commit order equals arrival order and verdicts/audit logs
//            are byte-identical to the unbatched serial path for any
//            shard, thread or batch size.
//
// Exactly-once: the digest is re-checked at commit time, so two copies of
// the same proof admitted into one batch still produce one retention and
// one audit event (the second gets the first's cached verdict).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/auditor.h"
#include "crypto/bytes.h"
#include "net/buffer_pool.h"
#include "net/transport.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "runtime/mpmc_queue.h"
#include "runtime/thread_pool.h"

namespace alidrone::core {

class AuditorIngest {
 public:
  struct Config {
    /// Admission queue bound; pushes beyond it get kRetryLater.
    std::size_t queue_capacity = 256;
    /// Max submissions verified per batch.
    std::size_t max_batch = 32;
    /// Verifier threads for parallel evaluation; 0 = evaluate on the
    /// ingest thread (serial).
    std::size_t verify_threads = 0;
    /// Trace batch evaluate/commit phases (null disables tracing).
    obs::FlightRecorder* recorder = nullptr;
  };

  explicit AuditorIngest(Auditor& auditor);
  AuditorIngest(Auditor& auditor, Config config);
  ~AuditorIngest();

  AuditorIngest(const AuditorIngest&) = delete;
  AuditorIngest& operator=(const AuditorIngest&) = delete;

  /// Submit one serialized SubmitPoaRequest frame; blocks until the
  /// pipeline commits the verdict (or answers from the dedup cache /
  /// rejects with retry-later). Safe from any number of threads.
  crypto::Bytes submit(std::span<const std::uint8_t> request_frame);

  /// Which protocol operation a queued item carries. PoA submissions take
  /// the batched, parallel-evaluated path; TESLA broadcast operations
  /// ride the same FIFO but are applied strictly serially at commit time
  /// (chain-frontier state is order-sensitive), so verdicts and audit
  /// events stay byte-identical to the unbatched serial path for any
  /// verify-thread or shard count.
  enum class Kind : std::uint8_t {
    kPoa,
    kTeslaAnnounce,
    kTeslaSample,
    kTeslaDisclose,
    kTeslaFinalize,
  };

  /// Submit one TESLA operation frame through the pipeline; blocks until
  /// its commit slot. No dedup (the verifier itself is idempotent where
  /// the protocol needs it); a full queue answers retry-later, which a
  /// lossy broadcaster treats as a drop.
  crypto::Bytes submit_tesla(Kind kind, std::span<const std::uint8_t> frame);

  /// Re-register "<prefix>.submit_poa" and the "<prefix>.tesla_*"
  /// endpoints to run through the pipeline (call after Auditor::bind,
  /// which installs the unbatched handlers under the same prefix).
  void bind(net::Transport& bus, const std::string& prefix = "auditor");

  /// Stop admitting, drain everything already queued, join the ingest
  /// thread. Idempotent; the destructor calls it.
  void stop();

  /// Test hook: hold the ingest thread before its next batch, so tests
  /// can fill the queue deterministically and observe backpressure.
  void pause();
  void resume();

  struct Counters {
    std::uint64_t submitted = 0;      ///< submit() calls
    std::uint64_t admitted = 0;       ///< entered the queue
    std::uint64_t retry_later = 0;    ///< rejected with kRetryLater
    std::uint64_t duplicates = 0;     ///< answered from the dedup cache
    std::uint64_t malformed = 0;      ///< undecodable request frames
    std::uint64_t batches = 0;        ///< batches processed
    std::uint64_t committed = 0;      ///< verdicts committed
    std::uint64_t max_batch_seen = 0; ///< largest batch drained
    /// Times the ingest thread parked at the pause gate with an item in
    /// hand — lets tests wait until a paused pipeline has provably
    /// drained one item out of the queue before filling it.
    std::uint64_t gate_waits = 0;
  };
  /// Point-in-time view over the pipeline's registry counters (instance
  /// scope "core.ingest" in the Auditor's ProtocolParams::metrics
  /// registry, or the process-wide registry when unset).
  Counters counters() const;

  net::BufferPool::Stats pool_stats() const { return pool_.stats(); }

 private:
  struct Item {
    Kind kind = Kind::kPoa;
    crypto::Bytes frame;    ///< pooled; holds the PoA or TESLA op bytes
    crypto::Bytes digest;   ///< SHA-256 of the PoA bytes (kPoa only)
    std::promise<crypto::Bytes> reply;
  };

  void ingest_loop();
  void process_batch(std::vector<Item>& batch);
  /// Decode and apply one TESLA item (commit phase, ingest thread only).
  crypto::Bytes commit_tesla(const Item& item);

  Auditor& auditor_;
  Config config_;
  net::BufferPool pool_;
  std::unique_ptr<runtime::ThreadPool> verify_pool_;
  runtime::MpmcQueue<Item> queue_;

  std::mutex pause_mu_;
  std::condition_variable pause_cv_;
  bool paused_ = false;
  bool stopped_ = false;

  // Scratch reused across batches (ingest thread only).
  std::vector<PoaView> views_;

  // Registry-backed counters (the one source of truth for the pipeline).
  obs::Counter* submitted_;
  obs::Counter* admitted_;
  obs::Counter* retry_later_;
  obs::Counter* duplicates_;
  obs::Counter* malformed_;
  obs::Counter* batches_;
  obs::Counter* committed_;
  obs::Gauge* max_batch_seen_;
  obs::Counter* gate_waits_;

  std::thread ingest_thread_;
};

}  // namespace alidrone::core
