#include "core/messages.h"

#include "net/codec.h"

namespace alidrone::core {

namespace {

crypto::RsaPublicKey key_from(const crypto::Bytes& n, const crypto::Bytes& e) {
  return {crypto::BigInt::from_bytes(n), crypto::BigInt::from_bytes(e)};
}

// Shorthand for the 4-byte-length-prefixed field size.
constexpr std::size_t field(std::size_t payload_len) {
  return net::Writer::field_size(payload_len);
}

}  // namespace

crypto::Bytes polygon_zone_payload(const std::vector<geo::GeoPoint>& vertices,
                                   const std::string& description) {
  net::Writer w;
  w.u32(static_cast<std::uint32_t>(vertices.size()));
  for (const geo::GeoPoint& v : vertices) {
    w.f64(v.lat_deg);
    w.f64(v.lon_deg);
  }
  w.str(description);
  return std::move(w).take();
}

// ---- RegisterDrone ----

std::size_t RegisterDroneRequest::encoded_size_hint() const {
  return field(operator_key_n.size()) + field(operator_key_e.size()) +
         field(tee_key_n.size()) + field(tee_key_e.size());
}

crypto::Bytes RegisterDroneRequest::encode() const {
  net::Writer w;
  w.reserve(encoded_size_hint());
  w.bytes(operator_key_n);
  w.bytes(operator_key_e);
  w.bytes(tee_key_n);
  w.bytes(tee_key_e);
  return std::move(w).take();
}

std::optional<RegisterDroneRequest> RegisterDroneRequest::decode(
    std::span<const std::uint8_t> data) {
  net::Reader r(data);
  RegisterDroneRequest m;
  auto a = r.bytes();
  auto b = r.bytes();
  auto c = r.bytes();
  auto d = r.bytes();
  if (!a || !b || !c || !d || !r.at_end()) return std::nullopt;
  m.operator_key_n = std::move(*a);
  m.operator_key_e = std::move(*b);
  m.tee_key_n = std::move(*c);
  m.tee_key_e = std::move(*d);
  return m;
}

crypto::RsaPublicKey RegisterDroneRequest::operator_key() const {
  return key_from(operator_key_n, operator_key_e);
}

crypto::RsaPublicKey RegisterDroneRequest::tee_key() const {
  return key_from(tee_key_n, tee_key_e);
}

std::size_t RegisterDroneResponse::encoded_size_hint() const {
  return 1 + field(drone_id.size());
}

crypto::Bytes RegisterDroneResponse::encode() const {
  net::Writer w;
  w.reserve(encoded_size_hint());
  w.u8(ok ? 1 : 0);
  w.str(drone_id);
  return std::move(w).take();
}

std::optional<RegisterDroneResponse> RegisterDroneResponse::decode(
    std::span<const std::uint8_t> data) {
  net::Reader r(data);
  RegisterDroneResponse m;
  auto ok = r.u8();
  auto id = r.str();
  if (!ok || !id || !r.at_end()) return std::nullopt;
  m.ok = *ok != 0;
  m.drone_id = std::move(*id);
  return m;
}

// ---- RegisterZone ----

crypto::Bytes RegisterZoneRequest::signed_payload() const {
  net::Writer w;
  w.f64(zone.center.lat_deg);
  w.f64(zone.center.lon_deg);
  w.f64(zone.radius_m);
  w.str(description);
  return std::move(w).take();
}

std::size_t RegisterZoneRequest::encoded_size_hint() const {
  return 3 * 8 + field(description.size()) + field(owner_key_n.size()) +
         field(owner_key_e.size()) + field(proof_signature.size());
}

crypto::Bytes RegisterZoneRequest::encode() const {
  net::Writer w;
  w.reserve(encoded_size_hint());
  w.f64(zone.center.lat_deg);
  w.f64(zone.center.lon_deg);
  w.f64(zone.radius_m);
  w.str(description);
  w.bytes(owner_key_n);
  w.bytes(owner_key_e);
  w.bytes(proof_signature);
  return std::move(w).take();
}

std::optional<RegisterZoneRequest> RegisterZoneRequest::decode(
    std::span<const std::uint8_t> data) {
  net::Reader r(data);
  RegisterZoneRequest m;
  auto lat = r.f64();
  auto lon = r.f64();
  auto radius = r.f64();
  auto desc = r.str();
  auto kn = r.bytes();
  auto ke = r.bytes();
  auto sig = r.bytes();
  if (!lat || !lon || !radius || !desc || !kn || !ke || !sig || !r.at_end()) {
    return std::nullopt;
  }
  m.zone = {{*lat, *lon}, *radius};
  m.description = std::move(*desc);
  m.owner_key_n = std::move(*kn);
  m.owner_key_e = std::move(*ke);
  m.proof_signature = std::move(*sig);
  return m;
}

std::size_t RegisterZoneResponse::encoded_size_hint() const {
  return 1 + field(zone_id.size());
}

crypto::Bytes RegisterZoneResponse::encode() const {
  net::Writer w;
  w.reserve(encoded_size_hint());
  w.u8(ok ? 1 : 0);
  w.str(zone_id);
  return std::move(w).take();
}

std::optional<RegisterZoneResponse> RegisterZoneResponse::decode(
    std::span<const std::uint8_t> data) {
  net::Reader r(data);
  RegisterZoneResponse m;
  auto ok = r.u8();
  auto id = r.str();
  if (!ok || !id || !r.at_end()) return std::nullopt;
  m.ok = *ok != 0;
  m.zone_id = std::move(*id);
  return m;
}

// ---- ZoneQuery ----

std::size_t ZoneQueryRequest::encoded_size_hint() const {
  return field(drone_id.size()) + 4 * 8 + field(nonce.size()) +
         field(nonce_signature.size());
}

crypto::Bytes ZoneQueryRequest::encode() const {
  net::Writer w;
  w.reserve(encoded_size_hint());
  w.str(drone_id);
  w.f64(rect.corner1.lat_deg);
  w.f64(rect.corner1.lon_deg);
  w.f64(rect.corner2.lat_deg);
  w.f64(rect.corner2.lon_deg);
  w.bytes(nonce);
  w.bytes(nonce_signature);
  return std::move(w).take();
}

std::optional<ZoneQueryRequest> ZoneQueryRequest::decode(
    std::span<const std::uint8_t> data) {
  net::Reader r(data);
  ZoneQueryRequest m;
  auto id = r.str();
  auto lat1 = r.f64();
  auto lon1 = r.f64();
  auto lat2 = r.f64();
  auto lon2 = r.f64();
  auto nonce = r.bytes();
  auto sig = r.bytes();
  if (!id || !lat1 || !lon1 || !lat2 || !lon2 || !nonce || !sig || !r.at_end()) {
    return std::nullopt;
  }
  m.drone_id = std::move(*id);
  m.rect = {{*lat1, *lon1}, {*lat2, *lon2}};
  m.nonce = std::move(*nonce);
  m.nonce_signature = std::move(*sig);
  return m;
}

std::optional<ZoneQueryRequestView> ZoneQueryRequestView::decode(
    std::span<const std::uint8_t> data) {
  net::Reader r(data);
  ZoneQueryRequestView m;
  auto id = r.str_view();
  auto lat1 = r.f64();
  auto lon1 = r.f64();
  auto lat2 = r.f64();
  auto lon2 = r.f64();
  auto nonce = r.bytes_view();
  auto sig = r.bytes_view();
  if (!id || !lat1 || !lon1 || !lat2 || !lon2 || !nonce || !sig || !r.at_end()) {
    return std::nullopt;
  }
  m.drone_id = *id;
  m.rect = {{*lat1, *lon1}, {*lat2, *lon2}};
  m.nonce = *nonce;
  m.nonce_signature = *sig;
  return m;
}

std::size_t ZoneQueryResponse::encoded_size_hint() const {
  std::size_t size = 1 + field(error.size()) + 4;
  for (const ZoneInfo& z : zones) size += field(z.id.size()) + 3 * 8;
  return size;
}

crypto::Bytes ZoneQueryResponse::encode() const {
  net::Writer w;
  w.reserve(encoded_size_hint());
  w.u8(ok ? 1 : 0);
  w.str(error);
  w.u32(static_cast<std::uint32_t>(zones.size()));
  for (const ZoneInfo& z : zones) {
    w.str(z.id);
    w.f64(z.zone.center.lat_deg);
    w.f64(z.zone.center.lon_deg);
    w.f64(z.zone.radius_m);
  }
  return std::move(w).take();
}

std::optional<ZoneQueryResponse> ZoneQueryResponse::decode(
    std::span<const std::uint8_t> data) {
  net::Reader r(data);
  ZoneQueryResponse m;
  auto ok = r.u8();
  auto error = r.str();
  auto count = r.u32();
  if (!ok || !error || !count) return std::nullopt;
  m.ok = *ok != 0;
  m.error = std::move(*error);
  // Each zone entry costs at least 28 bytes; cap before reserving.
  if (*count > r.remaining() / 28) return std::nullopt;
  m.zones.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto id = r.str();
    auto lat = r.f64();
    auto lon = r.f64();
    auto radius = r.f64();
    if (!id || !lat || !lon || !radius) return std::nullopt;
    m.zones.push_back({std::move(*id), {{*lat, *lon}, *radius}});
  }
  if (!r.at_end()) return std::nullopt;
  return m;
}

// ---- SubmitPoA ----

std::size_t SubmitPoaRequest::encoded_size_hint() const {
  return field(poa.size());
}

crypto::Bytes SubmitPoaRequest::encode() const {
  net::Writer w;
  w.reserve(encoded_size_hint());
  w.bytes(poa);
  return std::move(w).take();
}

std::optional<SubmitPoaRequest> SubmitPoaRequest::decode(
    std::span<const std::uint8_t> data) {
  auto view = decode_view(data);
  if (!view) return std::nullopt;
  return SubmitPoaRequest{crypto::Bytes(view->begin(), view->end())};
}

std::optional<std::span<const std::uint8_t>> SubmitPoaRequest::decode_view(
    std::span<const std::uint8_t> data) {
  net::Reader r(data);
  auto poa = r.bytes_view();
  if (!poa || !r.at_end()) return std::nullopt;
  return poa;
}

std::size_t PoaVerdict::encoded_size_hint() const {
  return 2 + 4 + field(detail.size());
}

crypto::Bytes PoaVerdict::encode() const {
  net::Writer w;
  w.reserve(encoded_size_hint());
  w.u8(accepted ? 1 : 0);
  w.u8(compliant ? 1 : 0);
  w.u32(violation_count);
  w.str(detail);
  return std::move(w).take();
}

std::optional<PoaVerdict> PoaVerdict::decode(std::span<const std::uint8_t> data) {
  net::Reader r(data);
  PoaVerdict m;
  auto accepted = r.u8();
  auto compliant = r.u8();
  auto violations = r.u32();
  auto detail = r.str();
  if (!accepted || !compliant || !violations || !detail || !r.at_end()) {
    return std::nullopt;
  }
  m.accepted = *accepted != 0;
  m.compliant = *compliant != 0;
  m.violation_count = *violations;
  m.detail = std::move(*detail);
  return m;
}

// ---- TESLA broadcast mode ----

std::size_t TeslaAnnounceRequest::encoded_size_hint() const {
  return field(drone_id.size()) + 8 + 1 + field(commit_payload.size()) +
         field(commit_signature.size());
}

crypto::Bytes TeslaAnnounceRequest::encode() const {
  net::Writer w;
  w.reserve(encoded_size_hint());
  w.str(drone_id);
  w.u64(session_nonce);
  w.u8(static_cast<std::uint8_t>(hash));
  w.bytes(commit_payload);
  w.bytes(commit_signature);
  return std::move(w).take();
}

std::optional<TeslaAnnounceRequest> TeslaAnnounceRequest::decode(
    std::span<const std::uint8_t> data) {
  net::Reader r(data);
  TeslaAnnounceRequest m;
  auto id = r.str();
  auto nonce = r.u64();
  auto hash = r.u8();
  auto payload = r.bytes();
  auto signature = r.bytes();
  if (!id || !nonce || !hash || !payload || !signature || !r.at_end()) {
    return std::nullopt;
  }
  if (*hash > static_cast<std::uint8_t>(crypto::HashAlgorithm::kSha256)) {
    return std::nullopt;
  }
  m.drone_id = std::move(*id);
  m.session_nonce = *nonce;
  m.hash = static_cast<crypto::HashAlgorithm>(*hash);
  m.commit_payload = std::move(*payload);
  m.commit_signature = std::move(*signature);
  return m;
}

std::size_t TeslaAck::encoded_size_hint() const {
  return 1 + field(detail.size());
}

crypto::Bytes TeslaAck::encode() const {
  net::Writer w;
  w.reserve(encoded_size_hint());
  w.u8(accepted ? 1 : 0);
  w.str(detail);
  return std::move(w).take();
}

std::optional<TeslaAck> TeslaAck::decode(std::span<const std::uint8_t> data) {
  net::Reader r(data);
  TeslaAck m;
  auto accepted = r.u8();
  auto detail = r.str();
  if (!accepted || !detail || !r.at_end()) return std::nullopt;
  m.accepted = *accepted != 0;
  m.detail = std::move(*detail);
  return m;
}

std::size_t TeslaSampleBroadcast::encoded_size_hint() const {
  return field(drone_id.size()) + 8 + 8 + field(sample.size()) +
         field(tag.size());
}

crypto::Bytes TeslaSampleBroadcast::encode() const {
  net::Writer w;
  w.reserve(encoded_size_hint());
  w.str(drone_id);
  w.u64(session_nonce);
  w.u64(interval);
  w.bytes(sample);
  w.bytes(tag);
  return std::move(w).take();
}

std::optional<TeslaSampleBroadcast> TeslaSampleBroadcast::decode(
    std::span<const std::uint8_t> data) {
  auto view = TeslaSampleBroadcastView::decode(data);
  if (!view) return std::nullopt;
  TeslaSampleBroadcast m;
  m.drone_id = DroneId(view->drone_id);
  m.session_nonce = view->session_nonce;
  m.interval = view->interval;
  m.sample.assign(view->sample.begin(), view->sample.end());
  m.tag.assign(view->tag.begin(), view->tag.end());
  return m;
}

std::optional<TeslaSampleBroadcastView> TeslaSampleBroadcastView::decode(
    std::span<const std::uint8_t> data) {
  net::Reader r(data);
  TeslaSampleBroadcastView m;
  auto id = r.str_view();
  auto nonce = r.u64();
  auto interval = r.u64();
  auto sample = r.bytes_view();
  auto tag = r.bytes_view();
  if (!id || !nonce || !interval || !sample || !tag || !r.at_end()) {
    return std::nullopt;
  }
  m.drone_id = *id;
  m.session_nonce = *nonce;
  m.interval = *interval;
  m.sample = *sample;
  m.tag = *tag;
  return m;
}

std::size_t TeslaDiscloseRequest::encoded_size_hint() const {
  return field(drone_id.size()) + 8 + 8 + field(key.size());
}

crypto::Bytes TeslaDiscloseRequest::encode() const {
  net::Writer w;
  w.reserve(encoded_size_hint());
  w.str(drone_id);
  w.u64(session_nonce);
  w.u64(index);
  w.bytes(key);
  return std::move(w).take();
}

std::optional<TeslaDiscloseRequest> TeslaDiscloseRequest::decode(
    std::span<const std::uint8_t> data) {
  auto view = TeslaDiscloseRequestView::decode(data);
  if (!view) return std::nullopt;
  TeslaDiscloseRequest m;
  m.drone_id = DroneId(view->drone_id);
  m.session_nonce = view->session_nonce;
  m.index = view->index;
  m.key.assign(view->key.begin(), view->key.end());
  return m;
}

std::optional<TeslaDiscloseRequestView> TeslaDiscloseRequestView::decode(
    std::span<const std::uint8_t> data) {
  net::Reader r(data);
  TeslaDiscloseRequestView m;
  auto id = r.str_view();
  auto nonce = r.u64();
  auto index = r.u64();
  auto key = r.bytes_view();
  if (!id || !nonce || !index || !key || !r.at_end()) return std::nullopt;
  m.drone_id = *id;
  m.session_nonce = *nonce;
  m.index = *index;
  m.key = *key;
  return m;
}

std::size_t TeslaFinalizeRequest::encoded_size_hint() const {
  return field(drone_id.size()) + 8 + 8;
}

crypto::Bytes TeslaFinalizeRequest::encode() const {
  net::Writer w;
  w.reserve(encoded_size_hint());
  w.str(drone_id);
  w.u64(session_nonce);
  w.f64(end_time);
  return std::move(w).take();
}

std::optional<TeslaFinalizeRequest> TeslaFinalizeRequest::decode(
    std::span<const std::uint8_t> data) {
  net::Reader r(data);
  TeslaFinalizeRequest m;
  auto id = r.str();
  auto nonce = r.u64();
  auto end_time = r.f64();
  if (!id || !nonce || !end_time || !r.at_end()) return std::nullopt;
  m.drone_id = std::move(*id);
  m.session_nonce = *nonce;
  m.end_time = *end_time;
  return m;
}

// ---- Accusation ----

crypto::Bytes AccusationRequest::signed_payload() const {
  net::Writer w;
  w.str(zone_id);
  w.str(drone_id);
  w.f64(incident_time);
  return std::move(w).take();
}

std::size_t AccusationRequest::encoded_size_hint() const {
  return field(zone_id.size()) + field(drone_id.size()) + 8 +
         field(owner_signature.size());
}

crypto::Bytes AccusationRequest::encode() const {
  net::Writer w;
  w.reserve(encoded_size_hint());
  w.str(zone_id);
  w.str(drone_id);
  w.f64(incident_time);
  w.bytes(owner_signature);
  return std::move(w).take();
}

std::optional<AccusationRequest> AccusationRequest::decode(
    std::span<const std::uint8_t> data) {
  net::Reader r(data);
  AccusationRequest m;
  auto zone = r.str();
  auto drone = r.str();
  auto time = r.f64();
  auto sig = r.bytes();
  if (!zone || !drone || !time || !sig || !r.at_end()) return std::nullopt;
  m.zone_id = std::move(*zone);
  m.drone_id = std::move(*drone);
  m.incident_time = *time;
  m.owner_signature = std::move(*sig);
  return m;
}

std::size_t AccusationResponse::encoded_size_hint() const {
  return 2 + field(detail.size());
}

crypto::Bytes AccusationResponse::encode() const {
  net::Writer w;
  w.reserve(encoded_size_hint());
  w.u8(ok ? 1 : 0);
  w.u8(alibi_holds ? 1 : 0);
  w.str(detail);
  return std::move(w).take();
}

std::optional<AccusationResponse> AccusationResponse::decode(
    std::span<const std::uint8_t> data) {
  net::Reader r(data);
  AccusationResponse m;
  auto ok = r.u8();
  auto holds = r.u8();
  auto detail = r.str();
  if (!ok || !holds || !detail || !r.at_end()) return std::nullopt;
  m.ok = *ok != 0;
  m.alibi_holds = *holds != 0;
  m.detail = std::move(*detail);
  return m;
}

}  // namespace alidrone::core
