// TESLA broadcast PoA mode — verifier-side session state and the
// drone-side lossy broadcast flight loop (ROADMAP item 2; paper Section
// VII symmetric-signing extension, TBRD-style delayed key disclosure).
//
// Protocol shape:
//   1. kTeslaBegin in the TEE builds a per-flight hash chain and signs
//      its commitment (the flight's ONE RSA private operation); the drone
//      announces it ("auditor.tesla_announce").
//   2. Every sample is broadcast with an HMAC tag under the still-secret
//      chain key of its interval ("auditor.tesla_sample"). The Auditor
//      buffers tagged samples it cannot check yet — but only while the
//      TESLA security condition holds: a sample for interval i is
//      admitted only if it arrives before its key's disclosure time
//      t0 + (i + d)·tau on the Auditor's obs::Clock. Anything later is
//      rejected as late (its key may already be public).
//   3. Chain keys are disclosed d intervals later
//      ("auditor.tesla_disclose"). A disclosed K_j is verified against
//      the committed anchor by hashing down to the session's cached
//      frontier; it then settles every buffered interval <= j (deriving
//      the lower keys from K_j), so dropped or reordered disclosures
//      only delay settlement, never lose it.
//   4. Finalize assembles the accepted subset into a self-contained
//      kTeslaChain ProofOfAlibi and adjudicates it through the standard
//      verify/retain/audit pipeline ("auditor.tesla_finalize").
//
// Everything here is deterministic in arrival order: given the same
// sequence of announce/sample/disclose/finalize calls, verdicts, audit
// events and retained proofs are byte-identical regardless of thread or
// shard counts (AuditorIngest serializes TESLA ops in admission order).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/messages.h"
#include "core/poa.h"
#include "core/sampler.h"
#include "crypto/hash_chain.h"
#include "gps/receiver_sim.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "tee/sample_codec.h"
#include "tee/secure_monitor.h"

namespace alidrone::obs {
class Clock;
}  // namespace alidrone::obs

namespace alidrone::core {

/// Verifier-side TESLA session table. Pure state machine: no audit log,
/// no RSA — the Auditor verifies the commitment signature before calling
/// announce() and turns the returned results into audit events. All entry
/// points are serialized on one mutex; the intended caller (AuditorIngest
/// commit phase, or Auditor::bind's serial endpoints) already presents
/// operations in a deterministic admission order.
class TeslaVerifier {
 public:
  struct Config {
    std::uint32_t max_chain_length = 1u << 20;
    std::uint32_t max_disclosure_delay = 4096;
    std::size_t max_sessions = 4096;
    std::size_t max_buffered_samples = 65536;
    double clock_skew_s = 0.0;
    /// Receive-time authority for the security condition; null disables
    /// the arrival-time check (offline replay).
    const obs::Clock* clock = nullptr;
  };

  /// Counters are registered under `scope` + ".tesla." in `registry`
  /// (e.g. "core.auditor#0.tesla.samples_accepted").
  TeslaVerifier(Config config, obs::MetricsRegistry& registry,
                const std::string& scope);

  /// The caller has already verified `req.commit_signature` over
  /// `req.commit_payload` with the drone's registered TEE key and parsed
  /// the payload into `commit`. Idempotent for byte-identical re-sends;
  /// a different commitment under the same (drone, nonce) is a forked
  /// chain and is rejected.
  TeslaAck announce(const TeslaAnnounceRequest& req,
                    const tee::TeslaCommit& commit);

  /// Admit one broadcast sample: size/interval checks, the disclosure-
  /// delay security condition against the configured clock, then
  /// buffering until the interval's key is disclosed.
  TeslaAck sample(const TeslaSampleBroadcastView& s);

  struct DiscloseResult {
    TeslaAck ack;
    /// Buffered samples whose tags failed under the now-known interval
    /// key: (interval, detail), in deterministic settle order. The caller
    /// audits each as kTeslaSampleRejected.
    std::vector<std::pair<std::uint64_t, std::string>> tag_rejects;
    std::uint64_t settled = 0;  ///< samples accepted by this disclosure
  };

  /// Verify a disclosed chain key against the committed anchor (frontier
  /// walk) and settle every buffered interval at or below it.
  DiscloseResult disclose(const TeslaDiscloseRequestView& d);

  /// Assemble the session's accepted subset into a self-contained
  /// kTeslaChain ProofOfAlibi (sorted by sample time, arrival order
  /// breaking ties) and erase the session. nullopt + `error` when the
  /// session is unknown (including already-finalized replays).
  std::optional<ProofOfAlibi> finalize(const DroneId& drone_id,
                                       std::uint64_t session_nonce,
                                       std::string* error);

  std::size_t session_count() const;

 private:
  struct Buffered {
    std::int64_t t_us = 0;      ///< canonical sample timestamp
    std::uint64_t seq = 0;      ///< per-session arrival order
    crypto::Bytes sample;
    crypto::Bytes tag;
  };
  struct Accepted {
    std::int64_t t_us = 0;
    std::uint64_t seq = 0;
    std::uint64_t interval = 0;
    crypto::Bytes sample;
    crypto::Bytes tag;
  };
  struct Session {
    tee::TeslaCommit commit;
    crypto::HashAlgorithm hash = crypto::HashAlgorithm::kSha1;
    crypto::Bytes commit_payload;
    crypto::Bytes commit_signature;
    crypto::ChainFrontier frontier;
    std::map<std::uint64_t, std::vector<Buffered>> pending;  ///< by interval
    std::size_t pending_count = 0;
    std::vector<Accepted> accepted;
    std::uint64_t next_seq = 0;
  };

  Config config_;
  mutable std::mutex mu_;
  std::map<std::pair<DroneId, std::uint64_t>, Session> sessions_;

  obs::Counter* sessions_opened_;
  obs::Counter* sessions_rejected_;
  obs::Counter* samples_buffered_;
  obs::Counter* samples_accepted_;
  obs::Counter* samples_rejected_;
  obs::Counter* keys_accepted_;
  obs::Counter* keys_rejected_;
  obs::Counter* finalized_;
};

// ---- Drone side: the lossy broadcast flight loop ----

struct TeslaFlightConfig {
  double end_time = 0.0;        ///< stop sampling once the receiver passes this
  std::uint64_t session_nonce = 1;
  /// Chain length; 0 sizes it from the flight duration plus slack.
  std::uint32_t chain_length = 0;
  std::uint32_t disclosure_delay = 2;  ///< d sampling intervals
  double interval_s = 1.0;             ///< tau
  /// Must match the TA's SamplerConfig::hash (the commit signature's
  /// digest algorithm, carried in the announce).
  crypto::HashAlgorithm hash = crypto::HashAlgorithm::kSha1;
  std::vector<geo::Circle> local_zones;  ///< for the sampling policy log
  geo::LocalFrame frame{geo::GeoPoint{0.0, 0.0}};
  /// Safety valve for the post-flight disclosure/finalize flush under
  /// heavy fault schedules (receiver periods, not wall time).
  std::size_t max_flush_updates = 100000;
  /// Bus prefix of the auditor serving this flight ("auditor0", ... in a
  /// federated deployment).
  std::string auditor_prefix = "auditor";
};

struct TeslaFlightResult {
  bool announced = false;
  bool finalized = false;
  PoaVerdict verdict;
  std::uint64_t gps_updates = 0;
  std::uint64_t samples_sent = 0;
  std::uint64_t samples_dropped = 0;    ///< bus timeouts — lossy broadcast
  std::uint64_t samples_rejected = 0;   ///< delivered but refused admission
  std::uint64_t disclosures_sent = 0;
  std::uint64_t disclosures_dropped = 0;
  std::uint64_t tee_failures = 0;
  std::uint64_t max_interval_used = 0;
};

/// Fly a TESLA broadcast flight: one kTeslaBegin commitment (the single
/// RSA world-switch pair), fire-and-forget sample broadcasts, periodic
/// delayed key disclosures, then a post-flight disclosure flush and
/// finalize. Bus timeouts (chaos FaultWindow drops) are counted, never
/// retried for samples — the chain verifies whatever subset lands.
TeslaFlightResult run_tesla_broadcast_flight(tee::DroneTee& tee,
                                             gps::GpsReceiverSim& receiver,
                                             SamplingPolicy& policy,
                                             net::Transport& bus,
                                             const DroneId& drone_id,
                                             const TeslaFlightConfig& config);

}  // namespace alidrone::core
