#include "core/replicated_auditor.h"

#include <algorithm>
#include <utility>

#include "crypto/sha256.h"
#include "net/codec.h"

namespace alidrone::core {

namespace {

constexpr Auditor::WireMethod kAllMethods[] = {
    Auditor::WireMethod::kRegisterDrone, Auditor::WireMethod::kRegisterZone,
    Auditor::WireMethod::kQueryZones,    Auditor::WireMethod::kSubmitPoa,
    Auditor::WireMethod::kTeslaAnnounce, Auditor::WireMethod::kTeslaSample,
    Auditor::WireMethod::kTeslaDisclose, Auditor::WireMethod::kTeslaFinalize,
    Auditor::WireMethod::kAccuse,
};

/// Zone queries are the one read-only method: served locally, never
/// written ahead, never forwarded.
bool is_write(Auditor::WireMethod method) {
  return method != Auditor::WireMethod::kQueryZones;
}

}  // namespace

ReplicatedAuditor::ReplicatedAuditor(net::Transport& bus,
                                     resilience::SimClock& clock,
                                     Config config)
    : bus_(bus), config_(std::move(config)) {
  obs::MetricsRegistry& reg = config_.metrics != nullptr
                                  ? *config_.metrics
                                  : obs::MetricsRegistry::global();
  const std::string scope = reg.instance_scope("core.replicated_auditor");
  forwards_ = &reg.counter(scope + ".forwards");
  forward_failures_ = &reg.counter(scope + ".forward_failures");
  dedup_hits_ = &reg.counter(scope + ".dedup_hits");
  reapplied_ = &reg.counter(scope + ".reapplied");

  if (config_.replicas == 0) config_.replicas = 1;
  for (std::size_t k = 0; k < config_.replicas; ++k) {
    auto rep = std::make_unique<Replica>();
    rep->index = k;
    // Every replica derives its keypair from the same seed: a drone that
    // encrypted samples for the primary can finish its flight against any
    // follower.
    crypto::DeterministicRandom key_rng(config_.key_seed);
    rep->auditor =
        std::make_unique<Auditor>(config_.key_bits, key_rng, config_.params);

    ledger::Ledger::Config lc;
    if (!config_.ledger_directory.empty()) {
      lc.directory = config_.ledger_directory / ("replica" + std::to_string(k));
    }
    lc.segment_capacity = config_.segment_capacity;
    lc.metrics = config_.metrics;
    lc.recorder = config_.recorder;
    rep->ledger = std::make_shared<ledger::Ledger>(std::move(lc));

    rep->audit = std::make_shared<AuditLog>();
    rep->audit->attach_ledger(rep->ledger, config_.anchor_mask);
    rep->auditor->attach_audit_log(rep->audit);

    resilience::ReliableChannel::Config cc = config_.channel;
    cc.seed = config_.channel.seed + 7919 * (k + 1);
    if (cc.metrics == nullptr) cc.metrics = config_.metrics;
    if (cc.trace == nullptr) cc.trace = config_.recorder;
    rep->forward =
        std::make_unique<resilience::ReliableChannel>(bus, clock, cc);

    replicas_.push_back(std::move(rep));
  }
  for (auto& rep : replicas_) bind_replica(*rep);
}

std::vector<std::string> ReplicatedAuditor::client_prefixes() const {
  std::vector<std::string> prefixes;
  prefixes.reserve(replicas_.size());
  for (std::size_t k = 0; k < replicas_.size(); ++k) {
    prefixes.push_back(replica_prefix(k));
  }
  return prefixes;
}

bool ReplicatedAuditor::converged() const {
  const ledger::Digest first = replicas_.front()->ledger->root_hash();
  for (const auto& rep : replicas_) {
    if (rep->ledger->root_hash() != first) return false;
  }
  return true;
}

crypto::Bytes ReplicatedAuditor::encode_apply(Auditor::WireMethod method,
                                              const crypto::Bytes& frame) {
  net::Writer w;
  w.reserve(1 + net::Writer::field_size(frame.size()));
  w.u8(static_cast<std::uint8_t>(method));
  w.bytes(frame);
  return std::move(w).take();
}

void ReplicatedAuditor::bind_replica(Replica& rep) {
  const std::string prefix = replica_prefix(rep.index);
  Replica* r = &rep;

  for (const Auditor::WireMethod method : kAllMethods) {
    const std::string endpoint =
        prefix + "." + Auditor::method_suffix(method);
    if (is_write(method)) {
      bus_.register_endpoint(endpoint, [this, r, method](
                                           const crypto::Bytes& in) {
        return apply_local(*r, method, in, /*replicate=*/true);
      });
    } else {
      // Reads never touch the ledger: any replica answers from its own
      // replicated state.
      bus_.register_endpoint(endpoint, [r, method](const crypto::Bytes& in) {
        return r->auditor->handle_frame(method, in);
      });
    }
  }

  // Peer replication: a forwarded write, applied without re-forwarding.
  bus_.register_endpoint(prefix + ".apply", [this, r](const crypto::Bytes& in) {
    net::Reader reader(in);
    const auto method = reader.u8();
    const auto frame = reader.bytes();
    if (!method || !frame || !reader.at_end()) return crypto::Bytes{};
    return apply_local(*r, static_cast<Auditor::WireMethod>(*method), *frame,
                       /*replicate=*/false);
  });

  // Ledger introspection for divergence descent and catch-up.
  bus_.register_endpoint(prefix + ".ledger_info", [r](const crypto::Bytes&) {
    net::Writer w;
    w.u64(r->ledger->entry_count());
    w.u64(r->ledger->segment_count());
    w.bytes(r->ledger->root_hash());
    return std::move(w).take();
  });
  bus_.register_endpoint(
      prefix + ".ledger_range", [r](const crypto::Bytes& in) {
        net::Reader reader(in);
        const auto lo = reader.u64();
        const auto hi = reader.u64();
        if (!lo || !hi || !reader.at_end()) return crypto::Bytes{};
        const ledger::Digest digest = r->ledger->segment_range_hash(
            static_cast<std::size_t>(*lo), static_cast<std::size_t>(*hi));
        return crypto::Bytes(digest.begin(), digest.end());
      });
  bus_.register_endpoint(
      prefix + ".ledger_segment", [r](const crypto::Bytes& in) {
        net::Reader reader(in);
        const auto index = reader.u64();
        if (!index || !reader.at_end()) return crypto::Bytes{};
        return r->ledger->encode_segment(static_cast<std::size_t>(*index));
      });
}

crypto::Bytes ReplicatedAuditor::apply_local(Replica& rep,
                                             Auditor::WireMethod method,
                                             const crypto::Bytes& frame,
                                             bool replicate) {
  const crypto::Bytes apply_frame = encode_apply(method, frame);
  const crypto::Sha256::Digest digest = crypto::Sha256::hash(apply_frame);
  crypto::Bytes key(digest.begin(), digest.end());
  if (const auto it = rep.dedup.find(key); it != rep.dedup.end()) {
    // Replay: a client retry after a lost response, a failover
    // resubmission, or a peer forward of a write this replica already
    // served directly. Answer from cache, append nothing.
    dedup_hits_->increment();
    return it->second;
  }

  // Write-ahead: the request is on the ledger before its effects, with a
  // content-only timestamp — wall-clock apply times differ per replica
  // and would fork otherwise-identical streams.
  rep.ledger->append(ledger::EntryKind::kReplicatedRequest, 0.0, apply_frame);
  crypto::Bytes response = rep.auditor->handle_frame(method, frame);

  rep.dedup.emplace(std::move(key), response);
  rep.dedup_order.push_back(
      crypto::Bytes(digest.begin(), digest.end()));
  while (rep.dedup_order.size() > config_.dedup_capacity) {
    rep.dedup.erase(rep.dedup_order.front());
    rep.dedup_order.pop_front();
  }

  if (replicate) {
    for (const auto& peer : replicas_) {
      if (peer->index == rep.index) continue;
      forwards_->increment();
      const auto outcome = rep.forward->request(
          replica_prefix(peer->index) + ".apply", apply_frame);
      // A dead peer is not an error: it re-converges through catch_up()
      // once its outage window ends.
      if (!outcome.ok) forward_failures_->increment();
      if (config_.recorder != nullptr) {
        config_.recorder->record(obs::TraceKind::kReplicaForward, 0.0,
                                 rep.index, peer->index,
                                 outcome.ok ? "ok" : "failed");
      }
    }
  }
  return response;
}

std::optional<ReplicatedAuditor::Divergence> ReplicatedAuditor::check_divergence(
    std::size_t a, std::size_t b) const {
  const auto& ledger_a = *replicas_[a]->ledger;
  const auto& ledger_b = *replicas_[b]->ledger;
  if (ledger_a.root_hash() == ledger_b.root_hash()) return std::nullopt;

  // Probe range hashes through the same bus endpoints an external auditor
  // would use — neither ledger is trusted to name the divergence itself.
  const auto probe = [this](std::size_t k) {
    return [this, k](std::size_t lo,
                     std::size_t hi) -> std::optional<ledger::Digest> {
      net::Writer w;
      w.u64(lo);
      w.u64(hi);
      crypto::Bytes reply;
      try {
        reply = bus_.request(replica_prefix(k) + ".ledger_range",
                             std::move(w).take());
      } catch (const net::TimeoutError&) {
        return std::nullopt;  // peer unreachable: descent aborts, no verdict
      }
      ledger::Digest digest = ledger::kZeroDigest;
      if (reply.size() != digest.size()) return std::nullopt;
      std::copy(reply.begin(), reply.end(), digest.begin());
      return digest;
    };
  };
  Divergence div;
  div.replica_a = a;
  div.replica_b = b;
  div.segment = ledger::first_divergent_leaf(
      ledger_a.segment_count(), probe(a), ledger_b.segment_count(), probe(b));
  if (config_.recorder != nullptr) {
    config_.recorder->record(obs::TraceKind::kLedgerDivergence, 0.0, a, b,
                             div.segment ? "segment " + std::to_string(*div.segment)
                                         : "roots differ");
  }
  return div;
}

std::optional<std::size_t> ReplicatedAuditor::catch_up(std::size_t to,
                                                       std::size_t from) {
  Replica& dst = *replicas_[to];
  const Replica& src = *replicas_[from];
  const std::uint64_t have = dst.ledger->entry_count();
  std::size_t reapplied = 0;

  if (have < src.ledger->entry_count()) {
    const std::size_t segments = src.ledger->segment_count();
    for (std::size_t i = 0; i < segments; ++i) {
      const auto info = src.ledger->segment_info(i);
      if (!info) break;
      // Entirely behind this replica's frontier — nothing new in it.
      if (info->first_seq + info->entries <= have) continue;

      net::Writer w;
      w.u64(i);
      crypto::Bytes frame;
      try {
        frame = bus_.request(replica_prefix(from) + ".ledger_segment",
                             std::move(w).take());
      } catch (const net::TimeoutError&) {
        return std::nullopt;  // peer unreachable (or segment compacted away)
      }
      const auto decoded = ledger::decode_segment(frame);
      if (!decoded) return std::nullopt;

      for (const ledger::LedgerEntry& entry : decoded->entries) {
        // Re-applying a request regenerates its derived entries (audit
        // events) byte-identically, advancing our count past them — only
        // the requests themselves are replayed.
        if (entry.seq < dst.ledger->entry_count()) continue;
        if (entry.kind != ledger::EntryKind::kReplicatedRequest) continue;
        net::Reader reader(entry.payload);
        const auto method = reader.u8();
        const auto request = reader.bytes();
        if (!method || !request || !reader.at_end()) return std::nullopt;
        apply_local(dst, static_cast<Auditor::WireMethod>(*method), *request,
                    /*replicate=*/false);
        ++reapplied;
        reapplied_->increment();
      }
    }
  }

  if (dst.ledger->root_hash() != src.ledger->root_hash()) {
    // Not a prefix — a genuine fork. Leave a trace naming the segment.
    check_divergence(to, from);
    return std::nullopt;
  }
  return reapplied;
}

ReplicatedAuditor::Counters ReplicatedAuditor::counters() const {
  Counters c;
  c.forwards = forwards_->value();
  c.forward_failures = forward_failures_->value();
  c.dedup_hits = dedup_hits_->value();
  c.reapplied = reapplied_->value();
  return c;
}

}  // namespace alidrone::core
