// GPS forgery attack library (paper Section III-B).
//
// Implements the dishonest Drone Operator's moves so tests and demos can
// show each one being rejected by the Auditor:
//  - forge_trace:   fabricate an innocuous route and sign it with a key
//                   the attacker generated (T- is unreachable, so this is
//                   the best they can do);
//  - relay:         present another drone's honest PoA as this drone's;
//  - tamper_*:      modify samples of an honestly generated PoA;
//  - drop_samples:  cut out the window where the drone entered a zone
//                   (creates an insufficient gap, eq. (1) catches it);
//  - replay is resubmitting a stored PoA verbatim — no helper needed; the
//    accusation path shows why it fails (wrong flight window).
#pragma once

#include <vector>

#include "core/poa.h"
#include "crypto/random.h"
#include "gps/fix.h"

namespace alidrone::core::attacks {

/// Fabricate a PoA over `fake_route` signed by a fresh attacker keypair
/// (the operator cannot extract T-). Verification against the registered
/// T+ must fail.
ProofOfAlibi forge_trace(const DroneId& drone_id,
                         const std::vector<gps::GpsFix>& fake_route,
                         crypto::HashAlgorithm hash, std::size_t key_bits,
                         crypto::RandomSource& rng);

/// Rebrand another drone's honest PoA with this drone's id. Signatures
/// were made by the other drone's TEE, so verification against this
/// drone's registered T+ must fail.
ProofOfAlibi relay(const ProofOfAlibi& other, const DroneId& my_drone_id);

/// Move sample `index` to `new_position` without re-signing.
ProofOfAlibi tamper_position(const ProofOfAlibi& poa, std::size_t index,
                             geo::GeoPoint new_position);

/// Shift sample `index`'s timestamp by `delta_seconds` without re-signing.
ProofOfAlibi tamper_time(const ProofOfAlibi& poa, std::size_t index,
                         double delta_seconds);

/// Remove samples [from, to); signatures stay valid but the time gap
/// makes the alibi insufficient near any zone the drone approached.
ProofOfAlibi drop_samples(const ProofOfAlibi& poa, std::size_t from, std::size_t to);

}  // namespace alidrone::core::attacks
