// GPS forgery attack library (paper Section III-B).
//
// Implements the dishonest Drone Operator's moves so tests and demos can
// show each one being rejected by the Auditor:
//  - forge_trace:   fabricate an innocuous route and sign it with a key
//                   the attacker generated (T- is unreachable, so this is
//                   the best they can do);
//  - relay:         present another drone's honest PoA as this drone's;
//  - tamper_*:      modify samples of an honestly generated PoA;
//  - drop_samples:  cut out the window where the drone entered a zone
//                   (creates an insufficient gap, eq. (1) catches it);
//  - replay is resubmitting a stored PoA verbatim — no helper needed; the
//    accusation path shows why it fails (wrong flight window);
//  - tesla_*:       the broadcast-mode attacker: forged tags, late samples
//                   crafted from overheard (already public) chain keys,
//                   and disclosures that do not chain to the commitment.
//    A forked chain commitment is just a second, different announce under
//    the same (drone, session) — no helper needed; replaying a disclosure
//    verbatim is likewise just a resubmission.
#pragma once

#include <vector>

#include "core/messages.h"
#include "core/poa.h"
#include "crypto/hash_chain.h"
#include "crypto/random.h"
#include "geo/geopoint.h"
#include "gps/fix.h"
#include "gps/receiver_sim.h"
#include "tee/sample_codec.h"

namespace alidrone::core::attacks {

/// Fabricate a PoA over `fake_route` signed by a fresh attacker keypair
/// (the operator cannot extract T-). Verification against the registered
/// T+ must fail.
ProofOfAlibi forge_trace(const DroneId& drone_id,
                         const std::vector<gps::GpsFix>& fake_route,
                         crypto::HashAlgorithm hash, std::size_t key_bits,
                         crypto::RandomSource& rng);

/// Rebrand another drone's honest PoA with this drone's id. Signatures
/// were made by the other drone's TEE, so verification against this
/// drone's registered T+ must fail.
ProofOfAlibi relay(const ProofOfAlibi& other, const DroneId& my_drone_id);

/// Move sample `index` to `new_position` without re-signing.
ProofOfAlibi tamper_position(const ProofOfAlibi& poa, std::size_t index,
                             geo::GeoPoint new_position);

/// Shift sample `index`'s timestamp by `delta_seconds` without re-signing.
ProofOfAlibi tamper_time(const ProofOfAlibi& poa, std::size_t index,
                         double delta_seconds);

/// Remove samples [from, to); signatures stay valid but the time gap
/// makes the alibi insufficient near any zone the drone approached.
ProofOfAlibi drop_samples(const ProofOfAlibi& poa, std::size_t from, std::size_t to);

/// Gradual GPS-spoofing navigation deviation: wrap the drone's true
/// trajectory in a position source that, from `start_time` onward, drifts
/// the reported position toward `target_local` (frame coordinates) at
/// `drift_mps`. The offset grows slowly enough to ride under jump-detection
/// heuristics, but because every spoofed fix is signed by the real TEE the
/// PoA honestly documents the deviated path — an Auditor whose zone covers
/// the target sees the entry (accepted, non-compliant, violations > 0).
/// This is the paper's "GPS spoofing moves the drone, not the proof"
/// observation: the attack defeats navigation, never the alibi.
gps::PositionSource spoofed_drift_source(gps::PositionSource truth,
                                         const geo::LocalFrame& frame,
                                         geo::Vec2 target_local,
                                         double start_time, double drift_mps);

/// Thinning abuse: over-thin an honestly signed PoA down to `keep`
/// samples (first and last always survive, the rest evenly spaced),
/// mimicking a legitimate thin_poa pass but ignoring the sufficiency
/// constraint. Signatures stay valid; near any zone the drone approached
/// the surviving gaps violate eq. (1), so the Auditor must flag the PoA
/// as insufficient rather than silently accept the sparse trace.
/// `keep` is clamped to [2, samples.size()].
ProofOfAlibi thinning_abuse(const ProofOfAlibi& poa, std::size_t keep);

// ---- TESLA broadcast-mode attacks ----

/// Craft a broadcast sample for `interval` with a random tag (the real
/// chain key is still inside the TEE, so a guess is the attacker's best
/// move). The Auditor buffers it — nothing is checkable yet — and must
/// reject it with "tag invalid" once the interval's key is disclosed.
/// `fake_fix`'s timestamp is overwritten with the interval midpoint so the
/// sample is self-consistent (interval matches the embedded time).
TeslaSampleBroadcast tesla_forge_tag(const DroneId& drone_id,
                                     std::uint64_t session_nonce,
                                     std::uint64_t interval,
                                     const tee::TeslaCommit& commit,
                                     gps::GpsFix fake_fix,
                                     crypto::RandomSource& rng);

/// Craft a *correctly tagged* sample for an interval whose key is already
/// public: `disclosed_key` = K_disclosed_index, overheard on the channel;
/// walking the chain down yields K_interval for any interval <= index, so
/// any eavesdropper can compute a valid tag. The defense is temporal, not
/// cryptographic — the Auditor must reject it as late.
TeslaSampleBroadcast tesla_late_sample(const DroneId& drone_id,
                                       std::uint64_t session_nonce,
                                       const crypto::ChainKey& disclosed_key,
                                       std::uint64_t disclosed_index,
                                       std::uint64_t interval,
                                       const tee::TeslaCommit& commit,
                                       gps::GpsFix fake_fix);

/// Disclose a random "chain key" for `index`. Hashing it down to the
/// session frontier cannot reach the committed anchor, so the Auditor
/// must reject it without advancing the frontier.
TeslaDiscloseRequest tesla_forge_disclosure(const DroneId& drone_id,
                                            std::uint64_t session_nonce,
                                            std::uint64_t index,
                                            crypto::RandomSource& rng);

}  // namespace alidrone::core::attacks
