#include "core/poa.h"

#include "net/codec.h"
#include "tee/sample_codec.h"

namespace alidrone::core {

std::string to_string(AuthMode mode) {
  switch (mode) {
    case AuthMode::kRsaPerSample:
      return "rsa-per-sample";
    case AuthMode::kHmacSession:
      return "hmac-session";
    case AuthMode::kBatchSignature:
      return "batch-signature";
  }
  return "unknown";
}

std::optional<gps::GpsFix> SignedSample::fix() const {
  return tee::decode_sample(sample);
}

std::optional<double> ProofOfAlibi::start_time() const {
  if (samples.empty()) return std::nullopt;
  const auto f = samples.front().fix();
  if (!f) return std::nullopt;
  return f->unix_time;
}

std::optional<double> ProofOfAlibi::end_time() const {
  if (samples.empty()) return std::nullopt;
  const auto f = samples.back().fix();
  if (!f) return std::nullopt;
  return f->unix_time;
}

crypto::Bytes ProofOfAlibi::serialize() const {
  net::Writer w;
  w.str(drone_id);
  w.u8(static_cast<std::uint8_t>(mode));
  w.u8(hash == crypto::HashAlgorithm::kSha256 ? 1 : 0);
  w.u8(encrypted ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(samples.size()));
  for (const SignedSample& s : samples) {
    w.bytes(s.sample);
    w.bytes(s.signature);
  }
  w.bytes(batch_signature);
  w.bytes(session_key_ciphertext);
  w.bytes(session_key_signature);
  return std::move(w).take();
}

std::optional<ProofOfAlibi> ProofOfAlibi::parse(std::span<const std::uint8_t> data) {
  net::Reader r(data);
  ProofOfAlibi poa;

  const auto id = r.str();
  const auto mode = r.u8();
  const auto hash = r.u8();
  const auto encrypted = r.u8();
  const auto count = r.u32();
  if (!id || !mode || !hash || !encrypted || !count) return std::nullopt;
  if (*mode > static_cast<std::uint8_t>(AuthMode::kBatchSignature)) return std::nullopt;
  if (*hash > 1 || *encrypted > 1) return std::nullopt;

  poa.drone_id = *id;
  poa.mode = static_cast<AuthMode>(*mode);
  poa.hash = *hash == 1 ? crypto::HashAlgorithm::kSha256 : crypto::HashAlgorithm::kSha1;
  poa.encrypted = *encrypted == 1;

  // Bound the claimed count by the bytes actually present (every sample
  // costs at least two 4-byte length prefixes) before reserving — a
  // hostile count must not drive allocation.
  if (*count > r.remaining() / 8) return std::nullopt;
  poa.samples.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto sample = r.bytes();
    auto signature = r.bytes();
    if (!sample || !signature) return std::nullopt;
    poa.samples.push_back({std::move(*sample), std::move(*signature)});
  }

  auto batch_sig = r.bytes();
  auto key_ct = r.bytes();
  auto key_sig = r.bytes();
  if (!batch_sig || !key_ct || !key_sig) return std::nullopt;
  poa.batch_signature = std::move(*batch_sig);
  poa.session_key_ciphertext = std::move(*key_ct);
  poa.session_key_signature = std::move(*key_sig);

  if (!r.at_end()) return std::nullopt;  // trailing garbage
  return poa;
}

}  // namespace alidrone::core
