#include "core/poa.h"

#include "net/codec.h"
#include "tee/sample_codec.h"

namespace alidrone::core {

std::string to_string(AuthMode mode) {
  switch (mode) {
    case AuthMode::kRsaPerSample:
      return "rsa-per-sample";
    case AuthMode::kHmacSession:
      return "hmac-session";
    case AuthMode::kBatchSignature:
      return "batch-signature";
    case AuthMode::kTeslaChain:
      return "tesla-chain";
  }
  return "unknown";
}

std::optional<gps::GpsFix> SignedSample::fix() const {
  return tee::decode_sample(sample);
}

std::optional<double> ProofOfAlibi::start_time() const {
  if (samples.empty()) return std::nullopt;
  const auto f = samples.front().fix();
  if (!f) return std::nullopt;
  return f->unix_time;
}

std::optional<double> ProofOfAlibi::end_time() const {
  if (samples.empty()) return std::nullopt;
  const auto f = samples.back().fix();
  if (!f) return std::nullopt;
  return f->unix_time;
}

std::size_t ProofOfAlibi::encoded_size() const {
  std::size_t size = net::Writer::field_size(drone_id.size())  // drone_id
                     + 3                                       // mode, hash, encrypted
                     + 4;                                      // sample count
  for (const SignedSample& s : samples) {
    size += net::Writer::field_size(s.sample.size()) +
            net::Writer::field_size(s.signature.size());
  }
  size += net::Writer::field_size(batch_signature.size()) +
          net::Writer::field_size(session_key_ciphertext.size()) +
          net::Writer::field_size(session_key_signature.size());
  return size;
}

crypto::Bytes ProofOfAlibi::serialize() const {
  net::Writer w;
  w.reserve(encoded_size());
  w.str(drone_id);
  w.u8(static_cast<std::uint8_t>(mode));
  w.u8(hash == crypto::HashAlgorithm::kSha256 ? 1 : 0);
  w.u8(encrypted ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(samples.size()));
  for (const SignedSample& s : samples) {
    w.bytes(s.sample);
    w.bytes(s.signature);
  }
  w.bytes(batch_signature);
  w.bytes(session_key_ciphertext);
  w.bytes(session_key_signature);
  return std::move(w).take();
}

std::optional<ProofOfAlibi> ProofOfAlibi::parse(std::span<const std::uint8_t> data) {
  PoaView view;
  if (!PoaView::parse_into(data, view)) return std::nullopt;
  return view.materialize();
}

std::optional<gps::GpsFix> SignedSampleView::fix() const {
  return tee::decode_sample(sample);
}

bool PoaView::parse_into(std::span<const std::uint8_t> data, PoaView& out) {
  net::Reader r(data);
  out.samples.clear();  // capacity retained across batches

  const auto id = r.str_view();
  const auto mode = r.u8();
  const auto hash = r.u8();
  const auto encrypted = r.u8();
  const auto count = r.u32();
  if (!id || !mode || !hash || !encrypted || !count) return false;
  if (*mode > static_cast<std::uint8_t>(AuthMode::kTeslaChain)) return false;
  if (*hash > 1 || *encrypted > 1) return false;

  out.drone_id = *id;
  out.mode = static_cast<AuthMode>(*mode);
  out.hash = *hash == 1 ? crypto::HashAlgorithm::kSha256 : crypto::HashAlgorithm::kSha1;
  out.encrypted = *encrypted == 1;

  // Bound the claimed count by the bytes actually present (every sample
  // costs at least two 4-byte length prefixes) before reserving — a
  // hostile count must not drive allocation.
  if (*count > r.remaining() / 8) return false;
  out.samples.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto sample = r.bytes_view();
    auto signature = r.bytes_view();
    if (!sample || !signature) return false;
    out.samples.push_back({*sample, *signature});
  }

  auto batch_sig = r.bytes_view();
  auto key_ct = r.bytes_view();
  auto key_sig = r.bytes_view();
  if (!batch_sig || !key_ct || !key_sig) return false;
  out.batch_signature = *batch_sig;
  out.session_key_ciphertext = *key_ct;
  out.session_key_signature = *key_sig;

  return r.at_end();  // trailing garbage is an error
}

PoaView PoaView::of(const ProofOfAlibi& poa) {
  PoaView view;
  view.drone_id = poa.drone_id;
  view.mode = poa.mode;
  view.hash = poa.hash;
  view.encrypted = poa.encrypted;
  view.samples.reserve(poa.samples.size());
  for (const SignedSample& s : poa.samples) {
    view.samples.push_back({s.sample, s.signature});
  }
  view.batch_signature = poa.batch_signature;
  view.session_key_ciphertext = poa.session_key_ciphertext;
  view.session_key_signature = poa.session_key_signature;
  return view;
}

ProofOfAlibi PoaView::materialize() const {
  ProofOfAlibi poa;
  poa.drone_id = DroneId(drone_id);
  poa.mode = mode;
  poa.hash = hash;
  poa.encrypted = encrypted;
  poa.samples.reserve(samples.size());
  for (const SignedSampleView& s : samples) {
    poa.samples.push_back({crypto::Bytes(s.sample.begin(), s.sample.end()),
                           crypto::Bytes(s.signature.begin(), s.signature.end())});
  }
  poa.batch_signature.assign(batch_signature.begin(), batch_signature.end());
  poa.session_key_ciphertext.assign(session_key_ciphertext.begin(),
                                    session_key_ciphertext.end());
  poa.session_key_signature.assign(session_key_signature.begin(),
                                   session_key_signature.end());
  return poa;
}

std::optional<double> PoaView::start_time() const {
  if (samples.empty()) return std::nullopt;
  const auto f = samples.front().fix();
  if (!f) return std::nullopt;
  return f->unix_time;
}

std::optional<double> PoaView::end_time() const {
  if (samples.empty()) return std::nullopt;
  const auto f = samples.back().fix();
  if (!f) return std::nullopt;
  return f->unix_time;
}

}  // namespace alidrone::core
