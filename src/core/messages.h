// Wire messages between the drone client and the AliDrone server
// (protocol steps 0-4, Section IV-B). Every message has a strict binary
// encode/decode pair over net::Writer/Reader; decode returns nullopt on
// any malformation.
//
// Each struct also exposes `encoded_size_hint()` — the exact byte count
// encode() will produce — so encode() can reserve() the whole buffer up
// front (one allocation per message, none when the Writer's buffer comes
// from a BufferPool). The server's hot submission/query endpoints have
// additional `*_view` decoders that borrow the request frame instead of
// copying payloads.
#pragma once

#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "core/protocol_types.h"
#include "crypto/bytes.h"

namespace alidrone::core {

/// Canonical bytes a Zone Owner signs to prove ownership of a polygon
/// zone (Section VII-B2 registration).
crypto::Bytes polygon_zone_payload(const std::vector<geo::GeoPoint>& vertices,
                                   const std::string& description);

/// Step 0: drone registration — the operator submits D+ and T+.
struct RegisterDroneRequest {
  crypto::Bytes operator_key_n;
  crypto::Bytes operator_key_e;
  crypto::Bytes tee_key_n;
  crypto::Bytes tee_key_e;

  std::size_t encoded_size_hint() const;
  crypto::Bytes encode() const;
  static std::optional<RegisterDroneRequest> decode(std::span<const std::uint8_t>);

  crypto::RsaPublicKey operator_key() const;
  crypto::RsaPublicKey tee_key() const;
};

struct RegisterDroneResponse {
  bool ok = false;
  DroneId drone_id;

  std::size_t encoded_size_hint() const;
  crypto::Bytes encode() const;
  static std::optional<RegisterDroneResponse> decode(std::span<const std::uint8_t>);
};

/// Step 1: zone registration by a Zone Owner. `proof_signature` is the
/// owner's signature over the zone coordinates (the "proof of ownership").
struct RegisterZoneRequest {
  geo::GeoZone zone;
  std::string description;
  crypto::Bytes owner_key_n;
  crypto::Bytes owner_key_e;
  crypto::Bytes proof_signature;

  /// The exact bytes the ownership proof signs.
  crypto::Bytes signed_payload() const;

  std::size_t encoded_size_hint() const;
  crypto::Bytes encode() const;
  static std::optional<RegisterZoneRequest> decode(std::span<const std::uint8_t>);
};

struct RegisterZoneResponse {
  bool ok = false;
  ZoneId zone_id;

  std::size_t encoded_size_hint() const;
  crypto::Bytes encode() const;
  static std::optional<RegisterZoneResponse> decode(std::span<const std::uint8_t>);
};

/// Steps 2-3: zone query. The nonce is signed with D- so the Auditor knows
/// the query comes from a registered drone; the Auditor also rejects
/// repeated nonces (replayed queries).
struct ZoneQueryRequest {
  DroneId drone_id;
  QueryRect rect;
  crypto::Bytes nonce;
  crypto::Bytes nonce_signature;

  std::size_t encoded_size_hint() const;
  crypto::Bytes encode() const;
  static std::optional<ZoneQueryRequest> decode(std::span<const std::uint8_t>);
};

/// Borrowing decode of a ZoneQueryRequest: id/nonce/signature are views
/// into the request frame (the Auditor verifies the nonce signature and
/// answers without copying them; only the nonce is copied, into the
/// replay cache, after it is accepted).
struct ZoneQueryRequestView {
  std::string_view drone_id;
  QueryRect rect;
  std::span<const std::uint8_t> nonce;
  std::span<const std::uint8_t> nonce_signature;

  static std::optional<ZoneQueryRequestView> decode(std::span<const std::uint8_t>);
};

struct ZoneInfo {
  ZoneId id;
  geo::GeoZone zone;
};

struct ZoneQueryResponse {
  bool ok = false;
  std::string error;
  std::vector<ZoneInfo> zones;

  std::size_t encoded_size_hint() const;
  crypto::Bytes encode() const;
  static std::optional<ZoneQueryResponse> decode(std::span<const std::uint8_t>);
};

/// Step 4: PoA submission. The PoA body carries its own serialization.
struct SubmitPoaRequest {
  crypto::Bytes poa;  ///< ProofOfAlibi::serialize()

  std::size_t encoded_size_hint() const;
  crypto::Bytes encode() const;
  static std::optional<SubmitPoaRequest> decode(std::span<const std::uint8_t>);
  /// Borrowing decode: the PoA bytes as a view into the request frame
  /// (the ingestion path parses a PoaView straight out of it).
  static std::optional<std::span<const std::uint8_t>> decode_view(
      std::span<const std::uint8_t>);
};

/// The Auditor's verdict on a submitted PoA.
struct PoaVerdict {
  bool accepted = false;   ///< parseable, registered drone, valid signatures
  bool compliant = false;  ///< sufficient alibi w.r.t. every registered NFZ
  std::uint32_t violation_count = 0;
  std::string detail;

  std::size_t encoded_size_hint() const;
  crypto::Bytes encode() const;
  static std::optional<PoaVerdict> decode(std::span<const std::uint8_t>);
};

// ---- TESLA broadcast mode (hash-chain PoA, ROADMAP item 2) ----
//
// Unlike the request/response submission flow, these messages model a
// lossy broadcast: the drone fires samples and key disclosures at the
// Auditor without retries, any subset may be dropped or reordered, and
// the chain verifies whatever lands. Only announce and finalize are
// request/response-shaped.

/// Flight start: the drone announces its hash-chain commitment. The
/// commit payload is the exact byte string the TEE signed
/// (tee::tesla_commit_payload: anchor K_0, chain length, disclosure
/// delay, interval, flight epoch t0); the Auditor re-verifies it under
/// the drone's registered T+. Re-sending an identical announce is
/// idempotent (lossy links re-send); announcing a *different* commitment
/// under the same (drone, session_nonce) is a forked chain and rejected.
struct TeslaAnnounceRequest {
  DroneId drone_id;
  std::uint64_t session_nonce = 0;
  /// Digest algorithm of the TEE commitment signature (the TA's
  /// SamplerConfig::hash).
  crypto::HashAlgorithm hash = crypto::HashAlgorithm::kSha1;
  crypto::Bytes commit_payload;
  crypto::Bytes commit_signature;  ///< TEE signature over commit_payload

  std::size_t encoded_size_hint() const;
  crypto::Bytes encode() const;
  static std::optional<TeslaAnnounceRequest> decode(std::span<const std::uint8_t>);
};

/// Shared thin reply for announce/sample/disclose.
struct TeslaAck {
  bool accepted = false;
  std::string detail;

  std::size_t encoded_size_hint() const;
  crypto::Bytes encode() const;
  static std::optional<TeslaAck> decode(std::span<const std::uint8_t>);
};

/// One broadcast sample: canonical 32-byte sample plus its HMAC tag under
/// the (still secret) chain key of `interval`.
struct TeslaSampleBroadcast {
  DroneId drone_id;
  std::uint64_t session_nonce = 0;
  std::uint64_t interval = 0;
  crypto::Bytes sample;  ///< tee::kEncodedSampleSize bytes
  crypto::Bytes tag;     ///< 32 bytes

  std::size_t encoded_size_hint() const;
  crypto::Bytes encode() const;
  static std::optional<TeslaSampleBroadcast> decode(std::span<const std::uint8_t>);
};

/// Borrowing decode of a TeslaSampleBroadcast: the admission hot path
/// buffers sample/tag straight out of the frame without owning copies
/// until the sample is actually admitted.
struct TeslaSampleBroadcastView {
  std::string_view drone_id;
  std::uint64_t session_nonce = 0;
  std::uint64_t interval = 0;
  std::span<const std::uint8_t> sample;
  std::span<const std::uint8_t> tag;

  static std::optional<TeslaSampleBroadcastView> decode(
      std::span<const std::uint8_t>);
};

/// Delayed key disclosure: chain element K_index. Disclosures are also
/// lossy; a later disclosure K_j (j > index) settles everything at or
/// below j, so drops only delay verification.
struct TeslaDiscloseRequest {
  DroneId drone_id;
  std::uint64_t session_nonce = 0;
  std::uint64_t index = 0;
  crypto::Bytes key;  ///< 32 bytes

  std::size_t encoded_size_hint() const;
  crypto::Bytes encode() const;
  static std::optional<TeslaDiscloseRequest> decode(std::span<const std::uint8_t>);
};

struct TeslaDiscloseRequestView {
  std::string_view drone_id;
  std::uint64_t session_nonce = 0;
  std::uint64_t index = 0;
  std::span<const std::uint8_t> key;

  static std::optional<TeslaDiscloseRequestView> decode(
      std::span<const std::uint8_t>);
};

/// Flight end: adjudicate the accepted subset. The reply is a PoaVerdict,
/// exactly as for request/response submission.
struct TeslaFinalizeRequest {
  DroneId drone_id;
  std::uint64_t session_nonce = 0;
  double end_time = 0.0;

  std::size_t encoded_size_hint() const;
  crypto::Bytes encode() const;
  static std::optional<TeslaFinalizeRequest> decode(std::span<const std::uint8_t>);
};

/// A Zone Owner's incident report ("I saw drone X near my zone at time t").
struct AccusationRequest {
  ZoneId zone_id;
  DroneId drone_id;
  double incident_time = 0.0;
  crypto::Bytes owner_signature;  ///< over (zone_id, drone_id, time)

  crypto::Bytes signed_payload() const;
  std::size_t encoded_size_hint() const;
  crypto::Bytes encode() const;
  static std::optional<AccusationRequest> decode(std::span<const std::uint8_t>);
};

struct AccusationResponse {
  bool ok = false;           ///< accusation well-formed & zone/owner match
  bool alibi_holds = false;  ///< stored PoA proves non-entrance
  std::string detail;

  std::size_t encoded_size_hint() const;
  crypto::Bytes encode() const;
  static std::optional<AccusationResponse> decode(std::span<const std::uint8_t>);
};

}  // namespace alidrone::core
