// File-backed Proof-of-Alibi retention.
//
// The paper requires the AliDrone server to "save the PoAs for a couple
// of days" as evidence for later accusations (Section IV-C2). PoaStore
// persists serialized PoAs to a directory — one file per submission with
// a small header — so retention survives Auditor restarts, and expires
// files past the retention window.
#pragma once

#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "core/poa.h"
#include "core/protocol_types.h"

namespace alidrone::core {

class PoaStore {
 public:
  /// Creates the directory if needed; throws std::runtime_error when the
  /// path exists but is not a directory.
  explicit PoaStore(std::filesystem::path directory);

  struct StoredPoa {
    DroneId drone_id;
    double submission_time = 0.0;
    ProofOfAlibi poa;
  };

  /// Persist one submission; returns the file path written.
  std::filesystem::path save(const DroneId& drone_id, double submission_time,
                             const ProofOfAlibi& poa);

  /// Load every stored PoA (corrupt files are skipped and counted).
  std::vector<StoredPoa> load_all() const;

  /// Stored PoAs for one drone, sorted by submission time.
  std::vector<StoredPoa> load_for_drone(const DroneId& drone_id) const;

  /// Delete submissions older than `cutoff_time`; returns #deleted.
  std::size_t expire_before(double cutoff_time);

  std::size_t count() const;
  std::size_t corrupt_files_seen() const { return corrupt_; }
  const std::filesystem::path& directory() const { return directory_; }

 private:
  std::filesystem::path directory_;
  std::uint64_t next_sequence_ = 0;
  mutable std::size_t corrupt_ = 0;

  std::optional<StoredPoa> read_file(const std::filesystem::path& path) const;
};

}  // namespace alidrone::core
