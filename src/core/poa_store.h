// File-backed Proof-of-Alibi retention.
//
// The paper requires the AliDrone server to "save the PoAs for a couple
// of days" as evidence for later accusations (Section IV-C2). PoaStore
// persists serialized PoAs to a directory — one file per submission with
// a small header — so retention survives Auditor restarts, and expires
// files past the retention window.
//
// The hot lookup paths (load_for_drone, expire_before) are served by an
// in-memory per-drone index — lock-striped by a drone-id hash — built
// from one directory scan at construction and kept current by save() and
// expire_before(); they no longer re-read the whole directory per call.
// load_all() and count() still scan, preserving their "see everything,
// count corrupt files" semantics for files dropped into the directory
// from outside; such externally-added files are invisible to the indexed
// paths until the store is reopened.
#pragma once

#include <array>
#include <atomic>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/poa.h"
#include "core/protocol_types.h"
#include "ledger/ledger.h"
#include "obs/metrics.h"

namespace alidrone::core {

class PoaStore {
 public:
  /// Creates the directory if needed; throws std::runtime_error when the
  /// path exists but is not a directory. Scans the directory once to
  /// build the per-drone index.
  ///
  /// Crash consistency: new files are written with a CRC over their
  /// contents (v2 format; v1 files from older stores still load). If the
  /// scan finds that exactly the highest-sequence file is truncated or
  /// CRC-corrupt — the signature of a crash mid-save — that file is
  /// deleted and counted in the `core.poa_store#N.recovered_tail` gauge
  /// instead of being reported as corruption; any other unreadable file
  /// still counts in corrupt_files_seen() (that is damage, not a torn
  /// tail). Metrics register against `metrics` (the process-wide
  /// registry when null).
  explicit PoaStore(std::filesystem::path directory,
                    obs::MetricsRegistry* metrics = nullptr);

  struct StoredPoa {
    DroneId drone_id;
    double submission_time = 0.0;
    ProofOfAlibi poa;
  };

  /// Persist one submission; returns the file path written.
  std::filesystem::path save(const DroneId& drone_id, double submission_time,
                             const ProofOfAlibi& poa);

  /// Every successful save() additionally appends an
  /// EntryKind::kPoaAnchor entry — drone id, submission time, SHA-256 of
  /// the serialized proof — to the ledger, binding PoA retention into the
  /// tamper-evident chain. Swapping a stored file after the fact breaks
  /// the anchor digest.
  void attach_ledger(std::shared_ptr<ledger::Ledger> ledger);

  /// Load every stored PoA (corrupt files are skipped and counted).
  std::vector<StoredPoa> load_all() const;

  /// Stored PoAs for one drone, sorted by submission time. Served from
  /// the per-drone index — only this drone's files are read.
  std::vector<StoredPoa> load_for_drone(const DroneId& drone_id) const;

  /// Delete submissions older than `cutoff_time`; returns #deleted.
  /// Walks the index, not the directory.
  std::size_t expire_before(double cutoff_time);

  std::size_t count() const;
  std::size_t corrupt_files_seen() const {
    return corrupt_.load(std::memory_order_relaxed);
  }
  /// Files dropped as a crashed trailing save during the opening scan
  /// (also exported as the `core.poa_store#N.recovered_tail` gauge).
  std::size_t recovered_tail_files() const { return recovered_tail_; }
  const std::filesystem::path& directory() const { return directory_; }

 private:
  struct IndexEntry {
    std::string filename;
    double submission_time = 0.0;
  };
  struct IndexShard {
    mutable std::mutex mu;
    std::map<DroneId, std::vector<IndexEntry>, std::less<>> entries;
  };
  static constexpr std::size_t kIndexShards = 8;

  std::filesystem::path directory_;
  std::array<IndexShard, kIndexShards> index_;
  std::atomic<std::uint64_t> next_sequence_{0};
  mutable std::atomic<std::size_t> corrupt_{0};
  std::size_t recovered_tail_ = 0;
  obs::Gauge* recovered_tail_gauge_ = nullptr;
  std::shared_ptr<ledger::Ledger> ledger_;
  mutable std::mutex ledger_mu_;

  std::size_t index_shard_of(std::string_view drone_id) const;
  std::optional<StoredPoa> read_file(const std::filesystem::path& path,
                                     bool count_corrupt = true) const;
};

}  // namespace alidrone::core
