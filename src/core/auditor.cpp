#include "core/auditor.h"

#include "core/thinning.h"

#include <algorithm>
#include <map>
#include <set>

#include "crypto/batch_verify.h"
#include "crypto/hash_chain.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "net/codec.h"
#include "runtime/parallel_for.h"
#include "tee/sample_codec.h"

namespace alidrone::core {

namespace {
constexpr std::size_t kMinNonceBytes = 16;
}

Auditor::Auditor(std::size_t key_bits, crypto::RandomSource& rng, ProtocolParams params)
    : keypair_(crypto::generate_rsa_keypair(key_bits, rng)), params_(params) {
  const std::size_t shard_count = std::max<std::size_t>(1, params_.auditor_shards);
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<StateShard>());
  }
  zone_shapes_ = std::make_shared<const ZoneShapes>();
  obs::MetricsRegistry& reg = params_.metrics != nullptr
                                  ? *params_.metrics
                                  : obs::MetricsRegistry::global();
  const std::string scope = reg.instance_scope("core.auditor");
  duplicate_submissions_ = &reg.counter(scope + ".duplicate_poa_submissions");
  duplicate_registrations_ = &reg.counter(scope + ".duplicate_registrations");
  batch_groups_ = &reg.counter(scope + ".batch.groups");
  batch_samples_ = &reg.counter(scope + ".batch.samples");
  batch_fallbacks_ = &reg.counter(scope + ".batch.fallbacks");
  batch_max_group_ = &reg.gauge(scope + ".batch.max_group");
  TeslaVerifier::Config tesla_config;
  tesla_config.max_chain_length = params_.tesla_max_chain_length;
  tesla_config.max_disclosure_delay = params_.tesla_max_disclosure_delay;
  tesla_config.max_sessions = params_.tesla_max_sessions;
  tesla_config.max_buffered_samples = params_.tesla_max_buffered_samples;
  tesla_config.clock_skew_s = params_.tesla_clock_skew_s;
  tesla_config.clock = params_.clock;
  tesla_ = std::make_unique<TeslaVerifier>(tesla_config, reg, scope);
}

std::size_t Auditor::shard_index(std::string_view drone_id) const {
  // FNV-1a over the id, then a splitmix64 finalizer so ids differing only
  // in the last character still spread across stripes.
  std::uint64_t x = 0xcbf29ce484222325ull;
  for (const char c : drone_id) {
    x ^= static_cast<unsigned char>(c);
    x *= 0x100000001b3ull;
  }
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return static_cast<std::size_t>((x ^ (x >> 31)) % shards_.size());
}

std::shared_ptr<const DroneRecord> Auditor::find_drone(
    std::string_view drone_id) const {
  const StateShard& shard = shard_for(drone_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.drones.find(drone_id);
  return it == shard.drones.end() ? nullptr : it->second;
}

std::shared_ptr<const Auditor::ZoneShapes> Auditor::zone_shapes() const {
  std::shared_lock<std::shared_mutex> lock(zones_mu_);
  return zone_shapes_;
}

void Auditor::rebuild_zone_shapes_locked() {
  auto shapes = std::make_shared<ZoneShapes>();
  shapes->all.reserve(zones_.size());
  for (const auto& [id, record] : zones_) {
    shapes->all.push_back(record.zone);
    if (record.ceiling_m) {
      shapes->cylinders.push_back(
          {record.zone.center, record.zone.radius_m, *record.ceiling_m});
    } else {
      shapes->planar.push_back(record.zone);
    }
  }
  zone_shapes_ = std::move(shapes);
}

bool Auditor::note_nonce(std::span<const std::uint8_t> nonce) {
  crypto::Bytes owned(nonce.begin(), nonce.end());
  std::lock_guard<std::mutex> lock(nonce_mu_);
  if (seen_nonces_.contains(owned)) return false;
  nonce_order_.push_back(owned);
  seen_nonces_.insert(std::move(owned));
  while (nonce_order_.size() > params_.nonce_cache_size) {
    seen_nonces_.erase(nonce_order_.front());
    nonce_order_.pop_front();
  }
  return true;
}

std::optional<crypto::Bytes> Auditor::lookup_submission(const crypto::Bytes& digest) {
  std::lock_guard<std::mutex> lock(submit_mu_);
  const auto it = submit_cache_.find(digest);
  if (it == submit_cache_.end()) return std::nullopt;
  duplicate_submissions_->increment();
  return it->second;
}

void Auditor::note_submission(const crypto::Bytes& digest,
                              const crypto::Bytes& verdict) {
  std::lock_guard<std::mutex> lock(submit_mu_);
  if (submit_cache_.emplace(digest, verdict).second) {
    submit_cache_order_.push_back(digest);
    while (submit_cache_order_.size() > params_.submit_dedup_cache_size) {
      submit_cache_.erase(submit_cache_order_.front());
      submit_cache_order_.pop_front();
    }
  }
}

void Auditor::attach_registry(std::shared_ptr<RegistryStore> registry) {
  registry_ = std::move(registry);
  if (registry_ == nullptr) return;
  if (const auto snapshot = registry_->load()) {
    std::lock_guard<std::mutex> reg_lock(registration_mu_);
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->drones.clear();
    }
    for (const auto& [id, record] : snapshot->drones) {
      StateShard& shard = shard_for(id);
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.drones[id] = std::make_shared<const DroneRecord>(record);
    }
    {
      std::unique_lock<std::shared_mutex> lock(zones_mu_);
      zones_ = snapshot->zones;
      zone_index_ = ZoneIndex();
      for (const auto& [id, record] : zones_) zone_index_.insert(id, record.zone);
      rebuild_zone_shapes_locked();
    }
    next_drone_number_ = snapshot->next_drone_number;
    next_zone_number_ = snapshot->next_zone_number;
  }
}

void Auditor::audit(double time, AuditEventType type, const std::string& subject,
                    bool ok, const std::string& detail) const {
  if (audit_ == nullptr) return;
  AuditEvent event;
  event.time = time;
  event.type = type;
  event.subject = subject;
  event.outcome_ok = ok;
  event.detail = detail;
  audit_->record(std::move(event));
}

void Auditor::persist_registry() const {
  if (registry_ == nullptr) return;
  RegistryStore::Snapshot snapshot;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [id, record] : shard->drones) snapshot.drones[id] = *record;
  }
  {
    std::shared_lock<std::shared_mutex> lock(zones_mu_);
    snapshot.zones = zones_;
  }
  snapshot.next_drone_number = next_drone_number_;
  snapshot.next_zone_number = next_zone_number_;
  registry_->save(snapshot);
}

RegisterDroneResponse Auditor::register_drone(const RegisterDroneRequest& request) {
  const crypto::RsaPublicKey op_key = request.operator_key();
  const crypto::RsaPublicKey tee_key = request.tee_key();
  if (op_key.modulus_bits() < 512 || tee_key.modulus_bits() < 512) return {};

  std::lock_guard<std::mutex> reg_lock(registration_mu_);

  // One identity per TEE key: re-registering the same hardware under a new
  // operator key would let an attacker shed accusations. The same pairing
  // re-submitted is answered idempotently with the original id — a retry
  // after a lost response must not look like a refusal. (At most one
  // record per TEE key exists, so scan order across shards is irrelevant.)
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [id, record] : shard->drones) {
      if (record->tee_key == tee_key) {
        if (record->operator_key == op_key) {
          duplicate_registrations_->increment();
          return {true, id};
        }
        return {};
      }
    }
  }

  DroneId id = "drone-" + std::to_string(next_drone_number_++);
  {
    StateShard& shard = shard_for(id);
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.drones[id] =
        std::make_shared<const DroneRecord>(DroneRecord{id, op_key, tee_key});
  }
  persist_registry();
  audit(0.0, AuditEventType::kDroneRegistered, id, true, "D+ and T+ on file");
  return {true, std::move(id)};
}

RegisterZoneResponse Auditor::register_zone(const RegisterZoneRequest& request) {
  if (request.zone.radius_m <= 0.0) return {};
  if (std::abs(request.zone.center.lat_deg) > 90.0 ||
      std::abs(request.zone.center.lon_deg) > 180.0) {
    return {};
  }
  crypto::RsaPublicKey owner_key{crypto::BigInt::from_bytes(request.owner_key_n),
                                 crypto::BigInt::from_bytes(request.owner_key_e)};
  if (owner_key.modulus_bits() < 512) return {};

  // Proof of ownership: the owner's signature over the zone coordinates.
  if (!crypto::rsa_verify(owner_key, request.signed_payload(),
                          request.proof_signature,
                          crypto::HashAlgorithm::kSha256)) {
    return {};
  }

  std::lock_guard<std::mutex> reg_lock(registration_mu_);
  ZoneId id = "zone-" + std::to_string(next_zone_number_++);
  {
    std::unique_lock<std::shared_mutex> lock(zones_mu_);
    zones_[id] = ZoneRecord{id, request.zone, owner_key, request.description, {}};
    zone_index_.insert(id, request.zone);
    rebuild_zone_shapes_locked();
  }
  persist_registry();
  audit(0.0, AuditEventType::kZoneRegistered, id, true, request.description);
  return {true, std::move(id)};
}

RegisterZoneResponse Auditor::register_zone_3d(const RegisterZoneRequest& request,
                                               double ceiling_m) {
  if (ceiling_m <= 0.0) return {};
  RegisterZoneResponse response = register_zone(request);
  if (response.ok) {
    std::lock_guard<std::mutex> reg_lock(registration_mu_);
    {
      std::unique_lock<std::shared_mutex> lock(zones_mu_);
      zones_[response.zone_id].ceiling_m = ceiling_m;
      rebuild_zone_shapes_locked();
    }
    persist_registry();  // re-snapshot with the ceiling included
  }
  return response;
}

RegisterZoneResponse Auditor::register_polygon_zone(
    const std::vector<geo::GeoPoint>& vertices,
    const crypto::RsaPublicKey& owner_key, const crypto::Bytes& proof_signature,
    const std::string& description) {
  if (vertices.size() < 3) return {};
  if (owner_key.modulus_bits() < 512) return {};

  // Ownership is proven over the polygon itself.
  if (!crypto::rsa_verify(owner_key, polygon_zone_payload(vertices, description),
                          proof_signature, crypto::HashAlgorithm::kSha256)) {
    return {};
  }

  // Project into a frame at the first vertex, solve the smallest circle
  // problem, and register the covering circle (Section VII-B2).
  const geo::LocalFrame frame(vertices.front());
  std::vector<geo::Vec2> pts;
  pts.reserve(vertices.size());
  for (const geo::GeoPoint& v : vertices) pts.push_back(frame.to_local(v));
  const geo::Circle cover = geo::smallest_enclosing_circle(pts);

  std::lock_guard<std::mutex> reg_lock(registration_mu_);
  ZoneId id = "zone-" + std::to_string(next_zone_number_++);
  const geo::GeoZone covering{frame.to_geo(cover.center), cover.radius};
  {
    std::unique_lock<std::shared_mutex> lock(zones_mu_);
    zones_[id] = ZoneRecord{id, covering, owner_key, description, {}};
    zone_index_.insert(id, covering);
    rebuild_zone_shapes_locked();
  }
  persist_registry();
  return {true, std::move(id)};
}

ZoneQueryResponse Auditor::query_zones(const ZoneQueryRequest& request) {
  return query_zones_impl(request.drone_id, request.rect, request.nonce,
                          request.nonce_signature);
}

ZoneQueryResponse Auditor::query_zones_impl(
    std::string_view drone_id, const QueryRect& rect,
    std::span<const std::uint8_t> nonce,
    std::span<const std::uint8_t> nonce_signature) {
  const auto drone = find_drone(drone_id);
  if (drone == nullptr) return {false, "unknown drone", {}};
  if (nonce.size() < kMinNonceBytes) return {false, "nonce too short", {}};

  if (!crypto::rsa_verify(drone->operator_key, nonce, nonce_signature,
                          crypto::HashAlgorithm::kSha256)) {
    return {false, "bad nonce signature", {}};
  }
  if (!note_nonce(nonce)) return {false, "replayed nonce", {}};

  ZoneQueryResponse response;
  response.ok = true;
  {
    std::shared_lock<std::shared_mutex> lock(zones_mu_);
    for (const ZoneId& id : zone_index_.query_rect(rect)) {
      response.zones.push_back({id, zones_.at(id).zone});
    }
  }
  audit(0.0, AuditEventType::kZoneQuery, std::string(drone_id), true,
        std::to_string(response.zones.size()) + " zones returned");
  return response;
}

std::string Auditor::authenticate_samples(const PoaView& poa,
                                          const DroneRecord& drone,
                                          std::vector<gps::GpsFix>& out_samples,
                                          BatchVerifyStats* stats) const {
  // Mode-specific key material checks first.
  crypto::Bytes hmac_key;
  if (poa.mode == AuthMode::kHmacSession) {
    if (!crypto::rsa_verify(drone.tee_key, poa.session_key_ciphertext,
                            poa.session_key_signature, poa.hash)) {
      return "session key signature invalid";
    }
    const auto key = crypto::rsa_decrypt(keypair_.priv, poa.session_key_ciphertext);
    if (!key || key->size() != 32) return "session key unreadable";
    hmac_key = *key;
  }

  // TESLA chain mode: the PoA is self-contained (see AuthMode docs) — the
  // commitment is re-verified under T+, the carried frontier element is
  // chained down to the committed anchor, and every MAC key the proof
  // needs is captured along that single walk. One RSA verify total; the
  // rest is hashing.
  std::map<std::uint64_t, crypto::ChainKey> tesla_keys;
  std::vector<std::uint64_t> tesla_intervals;
  if (poa.mode == AuthMode::kTeslaChain) {
    if (poa.encrypted) return "encrypted TESLA PoA unsupported";
    const auto commit = tee::parse_tesla_commit(poa.batch_signature);
    if (!commit) return "tesla commitment malformed";
    if (commit->chain_length > params_.tesla_max_chain_length) {
      return "tesla chain too long";
    }
    if (!crypto::rsa_verify(drone.tee_key, poa.batch_signature,
                            poa.session_key_signature, poa.hash)) {
      return "tesla commitment signature invalid";
    }
    if (poa.session_key_ciphertext.size() != 8 + crypto::kChainKeySize) {
      return "tesla frontier malformed";
    }
    std::uint64_t top_index = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      top_index = (top_index << 8) | poa.session_key_ciphertext[i];
    }
    if (top_index > commit->chain_length) return "tesla frontier out of range";
    crypto::ChainKey cur{};
    std::copy_n(poa.session_key_ciphertext.begin() + 8, crypto::kChainKeySize,
                cur.begin());
    // Interval of every sample, from its embedded canonical timestamp.
    std::set<std::uint64_t> needed;
    tesla_intervals.reserve(poa.samples.size());
    for (std::size_t i = 0; i < poa.samples.size(); ++i) {
      const auto t_us = tee::sample_time_us(poa.samples[i].sample);
      if (!t_us) return "sample " + std::to_string(i) + " malformed";
      const std::uint64_t interval =
          tee::tesla_interval(*t_us, commit->t0_us, commit->interval_us);
      if (interval == 0 || interval > top_index) {
        return "sample " + std::to_string(i) + " key undisclosed";
      }
      tesla_intervals.push_back(interval);
      needed.insert(interval);
    }
    std::uint64_t at = top_index;
    for (auto it = needed.rbegin(); it != needed.rend(); ++it) {
      while (at > *it) {
        cur = crypto::chain_step(cur);
        --at;
      }
      tesla_keys.emplace(*it, crypto::tesla_mac_key(cur));
    }
    while (at > 0) {
      cur = crypto::chain_step(cur);
      --at;
    }
    if (cur != commit->anchor) return "tesla frontier does not chain to anchor";
  }

  // Batched per-sample RSA: every signature in the PoA is under the one
  // TEE key, so an e-th-power product settles up to max_batch of them
  // with a single exponent ladder (crypto::BatchRsaVerifier). Verdict
  // equivalence to serial hangs on one rule: any exit taken below while
  // signatures are still queued must settle the queue FIRST, because
  // serial verification would have reported a bad signature at a lower
  // index before ever reaching the sample that triggered the exit.
  //
  // Cost gate: the challenged product costs about (check_bits + 3)
  // multiplies per item where the serial engine's ladder costs about
  // (e_bits + 2), so batching only engages when the exponent is clearly
  // wider than the challenge (or the operator explicitly opted into the
  // check_bits = 0 screening test, which is permutation-invariant set
  // authenticity — see BatchRsaVerifier's header). For the standard
  // e = 65537 with 16-bit challenges the gate keeps the serial engine,
  // which is the faster sound configuration.
  std::optional<crypto::BatchRsaVerifier> batcher;
  const bool batch_predicted_win =
      params_.batch_verify_check_bits == 0 ||
      drone.tee_key.e.bit_length() > params_.batch_verify_check_bits + 4;
  if (params_.batch_verify && batch_predicted_win &&
      poa.mode == AuthMode::kRsaPerSample &&
      poa.samples.size() >= std::max<std::size_t>(
                                params_.batch_verify_min_samples, 2) &&
      crypto::BatchRsaVerifier::supports(drone.tee_key)) {
    crypto::BatchVerifyConfig config;
    config.max_batch = params_.batch_verify_max_batch;
    config.check_bits = params_.batch_verify_check_bits;
    batcher.emplace(drone.tee_key, config);
  }
  const auto settle = [&]() -> std::optional<std::size_t> {
    if (!batcher || batcher->size() == 0) return std::nullopt;
    const std::size_t flushed = batcher->size();
    const auto bad = batcher->flush();
    if (stats != nullptr) {
      ++stats->groups;
      stats->samples += flushed;
      if (bad) ++stats->fallbacks;
      stats->max_group = std::max<std::uint64_t>(stats->max_group, flushed);
    }
    return bad;
  };

  crypto::Bytes batch_payload;
  out_samples.clear();
  out_samples.reserve(poa.samples.size());

  for (std::size_t i = 0; i < poa.samples.size(); ++i) {
    const SignedSampleView& s = poa.samples[i];

    // Plaintext canonical bytes: borrowed straight from the frame unless
    // the PoA is encrypted, in which case the decryption owns them.
    crypto::Bytes decrypted_storage;
    std::span<const std::uint8_t> plain = s.sample;
    if (poa.encrypted) {
      auto decrypted = crypto::rsa_decrypt(keypair_.priv, s.sample);
      if (!decrypted) {
        if (const auto bad = settle()) {
          return "sample " + std::to_string(*bad) + " signature invalid";
        }
        return "sample " + std::to_string(i) + " undecryptable";
      }
      decrypted_storage = std::move(*decrypted);
      plain = decrypted_storage;
    }
    const auto fix = tee::decode_sample(plain);
    if (!fix) {
      if (const auto bad = settle()) {
        return "sample " + std::to_string(*bad) + " signature invalid";
      }
      return "sample " + std::to_string(i) + " malformed";
    }

    switch (poa.mode) {
      case AuthMode::kRsaPerSample:
        if (batcher) {
          // The batcher copies what it needs (Montgomery limbs and the
          // challenge transcript), so `plain` may die with this iteration.
          if (!batcher->enqueue(i, plain, s.signature, poa.hash)) {
            // Structurally invalid — serial rejects it without
            // exponentiating, but only after clearing every lower index.
            if (const auto bad = settle()) {
              return "sample " + std::to_string(*bad) + " signature invalid";
            }
            return "sample " + std::to_string(i) + " signature invalid";
          }
          if (batcher->full()) {
            if (const auto bad = settle()) {
              return "sample " + std::to_string(*bad) + " signature invalid";
            }
          }
        } else if (!crypto::rsa_verify(drone.tee_key, plain, s.signature,
                                       poa.hash)) {
          return "sample " + std::to_string(i) + " signature invalid";
        }
        break;
      case AuthMode::kHmacSession: {
        const auto tag = crypto::HmacSha256::mac(hmac_key, plain);
        if (s.signature.size() != tag.size() ||
            !crypto::constant_time_equal(s.signature, tag)) {
          return "sample " + std::to_string(i) + " MAC invalid";
        }
        break;
      }
      case AuthMode::kBatchSignature:
        batch_payload.insert(batch_payload.end(), plain.begin(), plain.end());
        break;
      case AuthMode::kTeslaChain: {
        const crypto::ChainKey tag = crypto::tesla_tag(
            tesla_keys.at(tesla_intervals[i]), tesla_intervals[i], plain);
        if (s.signature.size() != tag.size() ||
            !crypto::constant_time_equal(s.signature, tag)) {
          return "sample " + std::to_string(i) + " tag invalid";
        }
        break;
      }
    }
    out_samples.push_back(*fix);
  }

  if (const auto bad = settle()) {
    return "sample " + std::to_string(*bad) + " signature invalid";
  }

  if (poa.mode == AuthMode::kBatchSignature) {
    if (poa.samples.empty()) return "empty batch";
    if (!crypto::rsa_verify(drone.tee_key, batch_payload, poa.batch_signature,
                            poa.hash)) {
      return "batch signature invalid";
    }
  }
  return "";
}

Auditor::PoaEvaluation Auditor::evaluate_poa(const PoaView& poa) const {
  PoaEvaluation evaluation;
  PoaVerdict& verdict = evaluation.verdict;
  const auto drone = find_drone(poa.drone_id);
  if (drone == nullptr) {
    verdict.detail = "unknown drone";
    return evaluation;
  }
  if (poa.samples.empty()) {
    verdict.detail = "empty PoA";
    return evaluation;
  }

  std::vector<gps::GpsFix> samples;
  const std::string failure =
      authenticate_samples(poa, *drone, samples, &evaluation.batch);
  if (!failure.empty()) {
    verdict.detail = failure;
    return evaluation;
  }
  verdict.accepted = true;

  // Planar zones use the paper's eq. (1); cylinder zones (the Section
  // VII-B1 extension) use the altitude-aware ellipsoid check. Both read
  // the immutable shapes snapshot — no allocation, no zone lock.
  const auto shapes = zone_shapes();
  const SufficiencyReport planar =
      check_sufficiency(samples, shapes->planar, params_.vmax_mps);
  if (!planar.well_formed) {
    verdict.accepted = false;
    verdict.detail = "samples not time-ordered";
    return evaluation;
  }
  SufficiencyReport volumetric;
  volumetric.well_formed = true;
  volumetric.sufficient = true;
  if (!shapes->cylinders.empty()) {
    volumetric = check_sufficiency_3d(samples, shapes->cylinders, params_.vmax_mps);
  }

  verdict.compliant = planar.sufficient && volumetric.sufficient;
  verdict.violation_count = static_cast<std::uint32_t>(planar.violations.size() +
                                                       volumetric.violations.size());
  verdict.detail = verdict.compliant ? "sufficient alibi" : "insufficient alibi";

  // Prepare retention (Section IV-C2): only now pay for an owning copy of
  // the proof. Optionally thinned first: the minimal sufficient witness
  // answers accusations just as well.
  evaluation.retain = true;
  evaluation.to_retain = poa.materialize();
  evaluation.retained_samples = std::move(samples);
  if (params_.thin_before_retention) {
    ProofOfAlibi thinned =
        thin_poa(evaluation.to_retain, shapes->all, params_.vmax_mps);
    if (thinned.samples.size() < evaluation.to_retain.samples.size()) {
      evaluation.retained_samples.clear();
      for (const SignedSample& s : thinned.samples) {
        if (const auto f = s.fix()) evaluation.retained_samples.push_back(*f);
      }
    }
    evaluation.to_retain = std::move(thinned);
  }
  return evaluation;
}

PoaVerdict Auditor::commit_evaluation(std::string_view drone_id,
                                      PoaEvaluation evaluation,
                                      double submission_time) {
  // Publish batching work here — commits are serialized in submission
  // order, so registry snapshots come out byte-identical regardless of
  // how many threads ran the evaluations.
  if (evaluation.batch.groups != 0) {
    batch_groups_->add(evaluation.batch.groups);
    batch_samples_->add(evaluation.batch.samples);
    batch_fallbacks_->add(evaluation.batch.fallbacks);
    batch_max_group_->set_max(static_cast<double>(evaluation.batch.max_group));
  }
  if (!evaluation.retain) return std::move(evaluation.verdict);

  // Retain for later accusations — in memory and, when a store is
  // attached, durably on disk.
  if (store_ != nullptr) {
    store_->save(evaluation.to_retain.drone_id, submission_time,
                 evaluation.to_retain);
  }
  RetainedPoa retained;
  retained.submission_time = submission_time;
  retained.poa = std::move(evaluation.to_retain);
  retained.samples = std::move(evaluation.retained_samples);
  {
    StateShard& shard = shard_for(drone_id);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.retained.find(drone_id);
    if (it == shard.retained.end()) {
      it = shard.retained.emplace(DroneId(drone_id), std::vector<RetainedPoa>{})
               .first;
    }
    it->second.push_back(std::move(retained));
  }
  audit(submission_time, AuditEventType::kPoaVerdict, std::string(drone_id),
        evaluation.verdict.compliant, evaluation.verdict.detail);
  return std::move(evaluation.verdict);
}

PoaVerdict Auditor::verify_poa(const ProofOfAlibi& poa, double submission_time) {
  return commit_evaluation(poa.drone_id, evaluate_poa(PoaView::of(poa)),
                           submission_time);
}

std::vector<PoaVerdict> Auditor::verify_poa_batch(
    std::span<const ProofOfAlibi> poas, double submission_time,
    runtime::ThreadPool* pool) {
  std::vector<PoaVerdict> verdicts(poas.size());
  if (pool == nullptr || pool->size() <= 1 || poas.size() <= 1) {
    for (std::size_t i = 0; i < poas.size(); ++i) {
      verdicts[i] = verify_poa(poas[i], submission_time);
    }
    return verdicts;
  }

  // Phase 1 — parallel, read-only: evaluate_poa reads per-drone records
  // under brief shard locks and zone geometry via the shapes snapshot.
  std::vector<PoaEvaluation> evaluations(poas.size());
  runtime::parallel_for(*pool, 0, poas.size(), [&](std::size_t i) {
    evaluations[i] = evaluate_poa(PoaView::of(poas[i]));
  });

  // Phase 2 — serial, in submission order: retention order and audit-log
  // contents match the verify_poa loop byte for byte.
  for (std::size_t i = 0; i < poas.size(); ++i) {
    verdicts[i] = commit_evaluation(poas[i].drone_id, std::move(evaluations[i]),
                                    submission_time);
  }
  return verdicts;
}

PoaVerdict Auditor::verify_poa_bytes(std::span<const std::uint8_t> poa_bytes,
                                     double submission_time) {
  PoaView view;
  if (!PoaView::parse_into(poa_bytes, view)) {
    PoaVerdict verdict;
    verdict.detail = "unparseable PoA";
    return verdict;
  }
  return commit_evaluation(view.drone_id, evaluate_poa(view), submission_time);
}

TeslaAck Auditor::tesla_announce(const TeslaAnnounceRequest& request) {
  const auto drone = find_drone(request.drone_id);
  if (drone == nullptr) {
    audit(0.0, AuditEventType::kTeslaSession, request.drone_id, false,
          "unknown drone");
    return {false, "unknown drone"};
  }
  const auto commit = tee::parse_tesla_commit(request.commit_payload);
  if (!commit) {
    audit(0.0, AuditEventType::kTeslaSession, request.drone_id, false,
          "malformed commitment");
    return {false, "malformed commitment"};
  }
  // The anchor's pedigree: only this drone's TEE can have signed it.
  if (!crypto::rsa_verify(drone->tee_key, request.commit_payload,
                          request.commit_signature, request.hash)) {
    audit(0.0, AuditEventType::kTeslaSession, request.drone_id, false,
          "commitment signature invalid");
    return {false, "commitment signature invalid"};
  }
  const TeslaAck ack = tesla_->announce(request, *commit);
  // Idempotent re-sends of an accepted announce (lossy links) are not
  // re-audited: the log records sessions, not deliveries.
  if (ack.detail != "duplicate announce") {
    audit(static_cast<double>(commit->t0_us) * 1e-6,
          AuditEventType::kTeslaSession, request.drone_id, ack.accepted,
          ack.detail);
  }
  return ack;
}

TeslaAck Auditor::tesla_sample(const TeslaSampleBroadcastView& sample) {
  const TeslaAck ack = tesla_->sample(sample);
  if (!ack.accepted) {
    const auto t_us = tee::sample_time_us(sample.sample);
    audit(t_us ? static_cast<double>(*t_us) * 1e-6 : 0.0,
          AuditEventType::kTeslaSampleRejected, std::string(sample.drone_id),
          false, ack.detail);
  }
  return ack;
}

TeslaAck Auditor::tesla_disclose(const TeslaDiscloseRequestView& disclose) {
  const TeslaVerifier::DiscloseResult result = tesla_->disclose(disclose);
  if (!result.ack.accepted) {
    audit(0.0, AuditEventType::kTeslaKeyRejected, std::string(disclose.drone_id),
          false, result.ack.detail);
  }
  for (const auto& [interval, detail] : result.tag_rejects) {
    audit(0.0, AuditEventType::kTeslaSampleRejected,
          std::string(disclose.drone_id), false,
          "interval " + std::to_string(interval) + ": " + detail);
  }
  return result.ack;
}

PoaVerdict Auditor::tesla_finalize(const TeslaFinalizeRequest& request) {
  std::string error;
  const auto poa =
      tesla_->finalize(request.drone_id, request.session_nonce, &error);
  if (!poa) {
    audit(request.end_time, AuditEventType::kTeslaSession, request.drone_id,
          false, error);
    PoaVerdict verdict;
    verdict.detail = error;
    return verdict;
  }
  // The accepted subset goes through the standard pipeline: sufficiency,
  // retention, audit — and authenticate_samples re-verifies the whole
  // chain-of-custody from the self-contained proof.
  return verify_poa(*poa, request.end_time);
}

AccusationResponse Auditor::handle_accusation(const AccusationRequest& request) {
  std::optional<ZoneRecord> zone;
  {
    std::shared_lock<std::shared_mutex> lock(zones_mu_);
    const auto zone_it = zones_.find(request.zone_id);
    if (zone_it != zones_.end()) zone = zone_it->second;
  }
  if (!zone) return {false, false, "unknown zone"};
  const auto drone = find_drone(request.drone_id);
  if (drone == nullptr) return {false, false, "unknown drone"};

  // Only the Zone Owner can accuse for her zone.
  if (!crypto::rsa_verify(zone->owner_key, request.signed_payload(),
                          request.owner_signature, crypto::HashAlgorithm::kSha256)) {
    return {false, false, "bad owner signature"};
  }

  const auto finish = [&](AccusationResponse response) {
    audit(request.incident_time, AuditEventType::kAccusation, request.drone_id,
          response.alibi_holds, response.detail);
    return response;
  };

  // The burden of proof rests on the operator: find a retained PoA whose
  // flight window covers the incident and whose samples around the
  // incident time prove non-entrance to this zone.
  {
    StateShard& shard = shard_for(request.drone_id);
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto retained_it = shard.retained.find(request.drone_id);
    if (retained_it != shard.retained.end()) {
      for (const RetainedPoa& r : retained_it->second) {
        if (const auto response =
                adjudicate(r.samples, *zone, request.incident_time)) {
          return finish(*response);
        }
      }
    }
  }

  // Fall back to the durable store (survives Auditor restarts). Stored
  // PoAs must be re-authenticated: the disk is part of the trust base but
  // the samples still carry their TEE signatures, so re-checking is cheap
  // insurance against tampered storage.
  if (store_ != nullptr) {
    for (const PoaStore::StoredPoa& stored :
         store_->load_for_drone(request.drone_id)) {
      std::vector<gps::GpsFix> samples;
      if (!authenticate_samples(PoaView::of(stored.poa), *drone, samples).empty()) {
        continue;
      }
      if (const auto response =
              adjudicate(samples, *zone, request.incident_time)) {
        return finish(*response);
      }
    }
  }
  return finish({true, false, "no PoA covers the incident time"});
}

std::optional<AccusationResponse> Auditor::adjudicate(
    const std::vector<gps::GpsFix>& samples, const ZoneRecord& zone,
    double incident_time) const {
  if (samples.empty()) return std::nullopt;
  if (incident_time < samples.front().unix_time ||
      incident_time > samples.back().unix_time) {
    return std::nullopt;
  }
  // Check eq. (1) for this zone across the whole covered flight: any
  // insufficient pair near the zone breaks the alibi.
  const SufficiencyReport report =
      check_sufficiency(samples, {zone.zone}, params_.vmax_mps);
  if (report.well_formed && report.sufficient) {
    return AccusationResponse{true, true, "retained PoA proves non-entrance"};
  }
  return AccusationResponse{true, false, "retained PoA does not prove non-entrance"};
}

void Auditor::expire_poas(double now) {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto& [id, list] : shard->retained) {
      std::erase_if(list, [&](const RetainedPoa& r) {
        return now - r.submission_time > params_.poa_retention_seconds;
      });
    }
  }
  if (store_ != nullptr) {
    store_->expire_before(now - params_.poa_retention_seconds);
  }
}

std::size_t Auditor::drone_count() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    n += shard->drones.size();
  }
  return n;
}

std::size_t Auditor::zone_count() const {
  std::shared_lock<std::shared_mutex> lock(zones_mu_);
  return zones_.size();
}

std::size_t Auditor::retained_poa_count() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [id, list] : shard->retained) n += list.size();
  }
  return n;
}

const char* Auditor::method_suffix(WireMethod method) {
  switch (method) {
    case WireMethod::kRegisterDrone: return "register_drone";
    case WireMethod::kRegisterZone: return "register_zone";
    case WireMethod::kQueryZones: return "query_zones";
    case WireMethod::kSubmitPoa: return "submit_poa";
    case WireMethod::kTeslaAnnounce: return "tesla_announce";
    case WireMethod::kTeslaSample: return "tesla_sample";
    case WireMethod::kTeslaDisclose: return "tesla_disclose";
    case WireMethod::kTeslaFinalize: return "tesla_finalize";
    case WireMethod::kAccuse: return "accuse";
  }
  return "unknown";
}

crypto::Bytes Auditor::handle_frame(WireMethod method,
                                    const crypto::Bytes& in) {
  switch (method) {
    case WireMethod::kRegisterDrone: {
      const auto request = RegisterDroneRequest::decode(in);
      return (request ? register_drone(*request) : RegisterDroneResponse{})
          .encode();
    }
    case WireMethod::kRegisterZone: {
      const auto request = RegisterZoneRequest::decode(in);
      return (request ? register_zone(*request) : RegisterZoneResponse{})
          .encode();
    }
    case WireMethod::kQueryZones: {
      // Borrowing decode: id, nonce and signature stay views into the
      // request frame; only an accepted nonce is copied (into the replay
      // cache).
      const auto request = ZoneQueryRequestView::decode(in);
      return (request ? query_zones_impl(request->drone_id, request->rect,
                                         request->nonce,
                                         request->nonce_signature)
                      : ZoneQueryResponse{false, "bad request", {}})
          .encode();
    }
    case WireMethod::kSubmitPoa: {
      const auto poa_bytes = SubmitPoaRequest::decode_view(in);
      if (!poa_bytes) {
        PoaVerdict verdict;
        verdict.detail = "bad request";
        return verdict.encode();
      }
      // Content-based dedup: retried and duplicated deliveries of the same
      // proof bytes return the first verdict verbatim, with no second
      // verification, retention or audit event — retry storms cannot
      // double-count a flight.
      const auto digest_arr = crypto::Sha256::hash(*poa_bytes);
      const crypto::Bytes digest(digest_arr.begin(), digest_arr.end());
      if (auto hit = lookup_submission(digest)) return *hit;
      // Zero-copy verification straight out of the request frame; an owning
      // proof is materialized only if the verdict reaches retention.
      PoaView view;
      PoaVerdict verdict;
      if (!PoaView::parse_into(*poa_bytes, view)) {
        verdict.detail = "unparseable PoA";
      } else {
        // Submission time: latest sample time stands in for server wall clock.
        const double t = view.end_time().value_or(0.0);
        verdict = commit_evaluation(view.drone_id, evaluate_poa(view), t);
      }
      crypto::Bytes encoded = verdict.encode();
      // Only accepted proofs had side effects worth fencing; rejected ones
      // re-verify idempotently and stay out of the bounded cache.
      if (verdict.accepted) note_submission(digest, encoded);
      return encoded;
    }
    case WireMethod::kTeslaAnnounce: {
      const auto request = TeslaAnnounceRequest::decode(in);
      return (request ? tesla_announce(*request) : TeslaAck{false, "bad request"})
          .encode();
    }
    case WireMethod::kTeslaSample: {
      // Borrowing decode: sample and tag stay views into the frame until
      // the verifier actually buffers them.
      const auto view = TeslaSampleBroadcastView::decode(in);
      return (view ? tesla_sample(*view) : TeslaAck{false, "bad request"})
          .encode();
    }
    case WireMethod::kTeslaDisclose: {
      const auto view = TeslaDiscloseRequestView::decode(in);
      return (view ? tesla_disclose(*view) : TeslaAck{false, "bad request"})
          .encode();
    }
    case WireMethod::kTeslaFinalize: {
      const auto request = TeslaFinalizeRequest::decode(in);
      if (!request) {
        PoaVerdict verdict;
        verdict.detail = "bad request";
        return verdict.encode();
      }
      return tesla_finalize(*request).encode();
    }
    case WireMethod::kAccuse: {
      const auto request = AccusationRequest::decode(in);
      return (request ? handle_accusation(*request)
                      : AccusationResponse{false, false, "bad request"})
          .encode();
    }
  }
  return {};
}

void Auditor::bind(net::Transport& bus, const std::string& prefix) {
  for (const WireMethod method :
       {WireMethod::kRegisterDrone, WireMethod::kRegisterZone,
        WireMethod::kQueryZones, WireMethod::kSubmitPoa,
        WireMethod::kTeslaAnnounce, WireMethod::kTeslaSample,
        WireMethod::kTeslaDisclose, WireMethod::kTeslaFinalize,
        WireMethod::kAccuse}) {
    bus.register_endpoint(prefix + "." + method_suffix(method),
                          [this, method](const crypto::Bytes& in) {
                            return handle_frame(method, in);
                          });
  }
}

}  // namespace alidrone::core
