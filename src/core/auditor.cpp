#include "core/auditor.h"

#include "core/thinning.h"

#include <algorithm>

#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "net/codec.h"
#include "runtime/parallel_for.h"
#include "tee/sample_codec.h"

namespace alidrone::core {

namespace {
constexpr std::size_t kMinNonceBytes = 16;
}

Auditor::Auditor(std::size_t key_bits, crypto::RandomSource& rng, ProtocolParams params)
    : keypair_(crypto::generate_rsa_keypair(key_bits, rng)), params_(params) {}

bool Auditor::note_nonce(const crypto::Bytes& nonce) {
  if (seen_nonces_.contains(nonce)) return false;
  seen_nonces_.insert(nonce);
  nonce_order_.push_back(nonce);
  while (nonce_order_.size() > params_.nonce_cache_size) {
    seen_nonces_.erase(nonce_order_.front());
    nonce_order_.pop_front();
  }
  return true;
}

void Auditor::note_submission(const crypto::Bytes& digest,
                              const crypto::Bytes& verdict) {
  if (submit_cache_.emplace(digest, verdict).second) {
    submit_cache_order_.push_back(digest);
    while (submit_cache_order_.size() > params_.submit_dedup_cache_size) {
      submit_cache_.erase(submit_cache_order_.front());
      submit_cache_order_.pop_front();
    }
  }
}

void Auditor::attach_registry(std::shared_ptr<RegistryStore> registry) {
  registry_ = std::move(registry);
  if (registry_ == nullptr) return;
  if (const auto snapshot = registry_->load()) {
    drones_ = snapshot->drones;
    zones_ = snapshot->zones;
    next_drone_number_ = snapshot->next_drone_number;
    next_zone_number_ = snapshot->next_zone_number;
    zone_index_ = ZoneIndex();
    for (const auto& [id, record] : zones_) zone_index_.insert(id, record.zone);
  }
}

void Auditor::audit(double time, AuditEventType type, const std::string& subject,
                    bool ok, const std::string& detail) const {
  if (audit_ == nullptr) return;
  AuditEvent event;
  event.time = time;
  event.type = type;
  event.subject = subject;
  event.outcome_ok = ok;
  event.detail = detail;
  audit_->record(std::move(event));
}

void Auditor::persist_registry() const {
  if (registry_ == nullptr) return;
  RegistryStore::Snapshot snapshot;
  snapshot.drones = drones_;
  snapshot.zones = zones_;
  snapshot.next_drone_number = next_drone_number_;
  snapshot.next_zone_number = next_zone_number_;
  registry_->save(snapshot);
}

RegisterDroneResponse Auditor::register_drone(const RegisterDroneRequest& request) {
  const crypto::RsaPublicKey op_key = request.operator_key();
  const crypto::RsaPublicKey tee_key = request.tee_key();
  if (op_key.modulus_bits() < 512 || tee_key.modulus_bits() < 512) return {};

  // One identity per TEE key: re-registering the same hardware under a new
  // operator key would let an attacker shed accusations. The same pairing
  // re-submitted is answered idempotently with the original id — a retry
  // after a lost response must not look like a refusal.
  for (const auto& [id, record] : drones_) {
    if (record.tee_key == tee_key) {
      if (record.operator_key == op_key) {
        ++duplicate_registrations_;
        return {true, id};
      }
      return {};
    }
  }

  DroneId id = "drone-" + std::to_string(next_drone_number_++);
  drones_[id] = DroneRecord{id, op_key, tee_key};
  persist_registry();
  audit(0.0, AuditEventType::kDroneRegistered, id, true, "D+ and T+ on file");
  return {true, std::move(id)};
}

RegisterZoneResponse Auditor::register_zone(const RegisterZoneRequest& request) {
  if (request.zone.radius_m <= 0.0) return {};
  if (std::abs(request.zone.center.lat_deg) > 90.0 ||
      std::abs(request.zone.center.lon_deg) > 180.0) {
    return {};
  }
  crypto::RsaPublicKey owner_key{crypto::BigInt::from_bytes(request.owner_key_n),
                                 crypto::BigInt::from_bytes(request.owner_key_e)};
  if (owner_key.modulus_bits() < 512) return {};

  // Proof of ownership: the owner's signature over the zone coordinates.
  if (!crypto::rsa_verify(owner_key, request.signed_payload(),
                          request.proof_signature,
                          crypto::HashAlgorithm::kSha256)) {
    return {};
  }

  ZoneId id = "zone-" + std::to_string(next_zone_number_++);
  zones_[id] = ZoneRecord{id, request.zone, owner_key, request.description, {}};
  zone_index_.insert(id, request.zone);
  persist_registry();
  audit(0.0, AuditEventType::kZoneRegistered, id, true, request.description);
  return {true, std::move(id)};
}

RegisterZoneResponse Auditor::register_zone_3d(const RegisterZoneRequest& request,
                                               double ceiling_m) {
  if (ceiling_m <= 0.0) return {};
  RegisterZoneResponse response = register_zone(request);
  if (response.ok) {
    zones_[response.zone_id].ceiling_m = ceiling_m;
    persist_registry();  // re-snapshot with the ceiling included
  }
  return response;
}

RegisterZoneResponse Auditor::register_polygon_zone(
    const std::vector<geo::GeoPoint>& vertices,
    const crypto::RsaPublicKey& owner_key, const crypto::Bytes& proof_signature,
    const std::string& description) {
  if (vertices.size() < 3) return {};
  if (owner_key.modulus_bits() < 512) return {};

  // Ownership is proven over the polygon itself.
  if (!crypto::rsa_verify(owner_key, polygon_zone_payload(vertices, description),
                          proof_signature, crypto::HashAlgorithm::kSha256)) {
    return {};
  }

  // Project into a frame at the first vertex, solve the smallest circle
  // problem, and register the covering circle (Section VII-B2).
  const geo::LocalFrame frame(vertices.front());
  std::vector<geo::Vec2> pts;
  pts.reserve(vertices.size());
  for (const geo::GeoPoint& v : vertices) pts.push_back(frame.to_local(v));
  const geo::Circle cover = geo::smallest_enclosing_circle(pts);

  ZoneId id = "zone-" + std::to_string(next_zone_number_++);
  const geo::GeoZone covering{frame.to_geo(cover.center), cover.radius};
  zones_[id] = ZoneRecord{id, covering, owner_key, description, {}};
  zone_index_.insert(id, covering);
  persist_registry();
  return {true, std::move(id)};
}

ZoneQueryResponse Auditor::query_zones(const ZoneQueryRequest& request) {
  const auto it = drones_.find(request.drone_id);
  if (it == drones_.end()) return {false, "unknown drone", {}};
  if (request.nonce.size() < kMinNonceBytes) return {false, "nonce too short", {}};

  if (!crypto::rsa_verify(it->second.operator_key, request.nonce,
                          request.nonce_signature, crypto::HashAlgorithm::kSha256)) {
    return {false, "bad nonce signature", {}};
  }
  if (!note_nonce(request.nonce)) return {false, "replayed nonce", {}};

  ZoneQueryResponse response;
  response.ok = true;
  for (const ZoneId& id : zone_index_.query_rect(request.rect)) {
    response.zones.push_back({id, zones_.at(id).zone});
  }
  audit(0.0, AuditEventType::kZoneQuery, request.drone_id, true,
        std::to_string(response.zones.size()) + " zones returned");
  return response;
}

std::vector<geo::GeoZone> Auditor::all_zone_shapes() const {
  std::vector<geo::GeoZone> out;
  out.reserve(zones_.size());
  for (const auto& [id, record] : zones_) out.push_back(record.zone);
  return out;
}

std::vector<geo::GeoZone> Auditor::planar_zone_shapes() const {
  std::vector<geo::GeoZone> out;
  for (const auto& [id, record] : zones_) {
    if (!record.ceiling_m) out.push_back(record.zone);
  }
  return out;
}

std::vector<geo::GeoZone3> Auditor::cylinder_zone_shapes() const {
  std::vector<geo::GeoZone3> out;
  for (const auto& [id, record] : zones_) {
    if (record.ceiling_m) {
      out.push_back({record.zone.center, record.zone.radius_m, *record.ceiling_m});
    }
  }
  return out;
}

std::string Auditor::authenticate_samples(const ProofOfAlibi& poa,
                                          const DroneRecord& drone,
                                          std::vector<gps::GpsFix>& out_samples) const {
  // Mode-specific key material checks first.
  crypto::Bytes hmac_key;
  if (poa.mode == AuthMode::kHmacSession) {
    if (!crypto::rsa_verify(drone.tee_key, poa.session_key_ciphertext,
                            poa.session_key_signature, poa.hash)) {
      return "session key signature invalid";
    }
    const auto key = crypto::rsa_decrypt(keypair_.priv, poa.session_key_ciphertext);
    if (!key || key->size() != 32) return "session key unreadable";
    hmac_key = *key;
  }

  crypto::Bytes batch_payload;
  out_samples.clear();
  out_samples.reserve(poa.samples.size());

  for (std::size_t i = 0; i < poa.samples.size(); ++i) {
    const SignedSample& s = poa.samples[i];

    crypto::Bytes plain = s.sample;
    if (poa.encrypted) {
      const auto decrypted = crypto::rsa_decrypt(keypair_.priv, s.sample);
      if (!decrypted) return "sample " + std::to_string(i) + " undecryptable";
      plain = *decrypted;
    }
    const auto fix = tee::decode_sample(plain);
    if (!fix) return "sample " + std::to_string(i) + " malformed";

    switch (poa.mode) {
      case AuthMode::kRsaPerSample:
        if (!crypto::rsa_verify(drone.tee_key, plain, s.signature, poa.hash)) {
          return "sample " + std::to_string(i) + " signature invalid";
        }
        break;
      case AuthMode::kHmacSession: {
        const auto tag = crypto::HmacSha256::mac(hmac_key, plain);
        if (s.signature.size() != tag.size() ||
            !crypto::constant_time_equal(s.signature, tag)) {
          return "sample " + std::to_string(i) + " MAC invalid";
        }
        break;
      }
      case AuthMode::kBatchSignature:
        batch_payload.insert(batch_payload.end(), plain.begin(), plain.end());
        break;
    }
    out_samples.push_back(*fix);
  }

  if (poa.mode == AuthMode::kBatchSignature) {
    if (poa.samples.empty()) return "empty batch";
    if (!crypto::rsa_verify(drone.tee_key, batch_payload, poa.batch_signature,
                            poa.hash)) {
      return "batch signature invalid";
    }
  }
  return "";
}

Auditor::PoaEvaluation Auditor::evaluate_poa(const ProofOfAlibi& poa) const {
  PoaEvaluation evaluation;
  PoaVerdict& verdict = evaluation.verdict;
  const auto drone_it = drones_.find(poa.drone_id);
  if (drone_it == drones_.end()) {
    verdict.detail = "unknown drone";
    return evaluation;
  }
  if (poa.samples.empty()) {
    verdict.detail = "empty PoA";
    return evaluation;
  }

  std::vector<gps::GpsFix> samples;
  const std::string failure = authenticate_samples(poa, drone_it->second, samples);
  if (!failure.empty()) {
    verdict.detail = failure;
    return evaluation;
  }
  verdict.accepted = true;

  // Planar zones use the paper's eq. (1); cylinder zones (the Section
  // VII-B1 extension) use the altitude-aware ellipsoid check.
  const SufficiencyReport planar =
      check_sufficiency(samples, planar_zone_shapes(), params_.vmax_mps);
  if (!planar.well_formed) {
    verdict.accepted = false;
    verdict.detail = "samples not time-ordered";
    return evaluation;
  }
  const auto cylinders = cylinder_zone_shapes();
  SufficiencyReport volumetric;
  volumetric.well_formed = true;
  volumetric.sufficient = true;
  if (!cylinders.empty()) {
    volumetric = check_sufficiency_3d(samples, cylinders, params_.vmax_mps);
  }

  verdict.compliant = planar.sufficient && volumetric.sufficient;
  verdict.violation_count = static_cast<std::uint32_t>(planar.violations.size() +
                                                       volumetric.violations.size());
  verdict.detail = verdict.compliant ? "sufficient alibi" : "insufficient alibi";

  // Prepare retention (Section IV-C2). Optionally thinned first: the
  // minimal sufficient witness answers accusations just as well.
  evaluation.retain = true;
  evaluation.to_retain = poa;
  evaluation.retained_samples = std::move(samples);
  if (params_.thin_before_retention) {
    evaluation.to_retain = thin_poa(poa, all_zone_shapes(), params_.vmax_mps);
    if (evaluation.to_retain.samples.size() < poa.samples.size()) {
      evaluation.retained_samples.clear();
      for (const SignedSample& s : evaluation.to_retain.samples) {
        if (const auto f = s.fix()) evaluation.retained_samples.push_back(*f);
      }
    }
  }
  return evaluation;
}

PoaVerdict Auditor::commit_evaluation(const DroneId& drone_id,
                                      PoaEvaluation evaluation,
                                      double submission_time) {
  if (!evaluation.retain) return std::move(evaluation.verdict);

  // Retain for later accusations — in memory and, when a store is
  // attached, durably on disk.
  if (store_ != nullptr) {
    store_->save(drone_id, submission_time, evaluation.to_retain);
  }
  RetainedPoa retained;
  retained.submission_time = submission_time;
  retained.poa = std::move(evaluation.to_retain);
  retained.samples = std::move(evaluation.retained_samples);
  retained_[drone_id].push_back(std::move(retained));
  audit(submission_time, AuditEventType::kPoaVerdict, drone_id,
        evaluation.verdict.compliant, evaluation.verdict.detail);
  return std::move(evaluation.verdict);
}

PoaVerdict Auditor::verify_poa(const ProofOfAlibi& poa, double submission_time) {
  return commit_evaluation(poa.drone_id, evaluate_poa(poa), submission_time);
}

std::vector<PoaVerdict> Auditor::verify_poa_batch(
    std::span<const ProofOfAlibi> poas, double submission_time,
    runtime::ThreadPool* pool) {
  std::vector<PoaVerdict> verdicts(poas.size());
  if (pool == nullptr || pool->size() <= 1 || poas.size() <= 1) {
    for (std::size_t i = 0; i < poas.size(); ++i) {
      verdicts[i] = verify_poa(poas[i], submission_time);
    }
    return verdicts;
  }

  // Phase 1 — parallel, read-only: every registry/keypair access in
  // evaluate_poa is const and no mutator runs until the barrier below.
  std::vector<PoaEvaluation> evaluations(poas.size());
  runtime::parallel_for(*pool, 0, poas.size(),
                        [&](std::size_t i) { evaluations[i] = evaluate_poa(poas[i]); });

  // Phase 2 — serial, in submission order: retention order and audit-log
  // contents match the verify_poa loop byte for byte.
  for (std::size_t i = 0; i < poas.size(); ++i) {
    verdicts[i] = commit_evaluation(poas[i].drone_id, std::move(evaluations[i]),
                                    submission_time);
  }
  return verdicts;
}

PoaVerdict Auditor::verify_poa_bytes(std::span<const std::uint8_t> poa_bytes,
                                     double submission_time) {
  const auto poa = ProofOfAlibi::parse(poa_bytes);
  if (!poa) {
    PoaVerdict verdict;
    verdict.detail = "unparseable PoA";
    return verdict;
  }
  return verify_poa(*poa, submission_time);
}

AccusationResponse Auditor::handle_accusation(const AccusationRequest& request) {
  const auto zone_it = zones_.find(request.zone_id);
  if (zone_it == zones_.end()) return {false, false, "unknown zone"};
  if (!drones_.contains(request.drone_id)) return {false, false, "unknown drone"};

  // Only the Zone Owner can accuse for her zone.
  if (!crypto::rsa_verify(zone_it->second.owner_key, request.signed_payload(),
                          request.owner_signature, crypto::HashAlgorithm::kSha256)) {
    return {false, false, "bad owner signature"};
  }

  const auto finish = [&](AccusationResponse response) {
    audit(request.incident_time, AuditEventType::kAccusation, request.drone_id,
          response.alibi_holds, response.detail);
    return response;
  };

  // The burden of proof rests on the operator: find a retained PoA whose
  // flight window covers the incident and whose samples around the
  // incident time prove non-entrance to this zone.
  const auto retained_it = retained_.find(request.drone_id);
  if (retained_it != retained_.end()) {
    for (const RetainedPoa& r : retained_it->second) {
      if (const auto response =
              adjudicate(r.samples, zone_it->second, request.incident_time)) {
        return finish(*response);
      }
    }
  }

  // Fall back to the durable store (survives Auditor restarts). Stored
  // PoAs must be re-authenticated: the disk is part of the trust base but
  // the samples still carry their TEE signatures, so re-checking is cheap
  // insurance against tampered storage.
  if (store_ != nullptr) {
    const auto drone_it = drones_.find(request.drone_id);
    for (const PoaStore::StoredPoa& stored :
         store_->load_for_drone(request.drone_id)) {
      std::vector<gps::GpsFix> samples;
      if (drone_it == drones_.end() ||
          !authenticate_samples(stored.poa, drone_it->second, samples).empty()) {
        continue;
      }
      if (const auto response =
              adjudicate(samples, zone_it->second, request.incident_time)) {
        return finish(*response);
      }
    }
  }
  return finish({true, false, "no PoA covers the incident time"});
}

std::optional<AccusationResponse> Auditor::adjudicate(
    const std::vector<gps::GpsFix>& samples, const ZoneRecord& zone,
    double incident_time) const {
  if (samples.empty()) return std::nullopt;
  if (incident_time < samples.front().unix_time ||
      incident_time > samples.back().unix_time) {
    return std::nullopt;
  }
  // Check eq. (1) for this zone across the whole covered flight: any
  // insufficient pair near the zone breaks the alibi.
  const SufficiencyReport report =
      check_sufficiency(samples, {zone.zone}, params_.vmax_mps);
  if (report.well_formed && report.sufficient) {
    return AccusationResponse{true, true, "retained PoA proves non-entrance"};
  }
  return AccusationResponse{true, false, "retained PoA does not prove non-entrance"};
}

void Auditor::expire_poas(double now) {
  for (auto& [id, list] : retained_) {
    std::erase_if(list, [&](const RetainedPoa& r) {
      return now - r.submission_time > params_.poa_retention_seconds;
    });
  }
  if (store_ != nullptr) {
    store_->expire_before(now - params_.poa_retention_seconds);
  }
}

std::size_t Auditor::retained_poa_count() const {
  std::size_t n = 0;
  for (const auto& [id, list] : retained_) n += list.size();
  return n;
}

void Auditor::bind(net::MessageBus& bus) {
  bus.register_endpoint("auditor.register_drone", [this](const crypto::Bytes& in) {
    const auto request = RegisterDroneRequest::decode(in);
    return (request ? register_drone(*request) : RegisterDroneResponse{}).encode();
  });
  bus.register_endpoint("auditor.register_zone", [this](const crypto::Bytes& in) {
    const auto request = RegisterZoneRequest::decode(in);
    return (request ? register_zone(*request) : RegisterZoneResponse{}).encode();
  });
  bus.register_endpoint("auditor.query_zones", [this](const crypto::Bytes& in) {
    const auto request = ZoneQueryRequest::decode(in);
    return (request ? query_zones(*request)
                    : ZoneQueryResponse{false, "bad request", {}})
        .encode();
  });
  bus.register_endpoint("auditor.submit_poa", [this](const crypto::Bytes& in) {
    const auto request = SubmitPoaRequest::decode(in);
    if (!request) {
      PoaVerdict verdict;
      verdict.detail = "bad request";
      return verdict.encode();
    }
    // Content-based dedup: retried and duplicated deliveries of the same
    // proof bytes return the first verdict verbatim, with no second
    // verification, retention or audit event — retry storms cannot
    // double-count a flight.
    const auto digest_arr = crypto::Sha256::hash(request->poa);
    const crypto::Bytes digest(digest_arr.begin(), digest_arr.end());
    if (const auto hit = submit_cache_.find(digest); hit != submit_cache_.end()) {
      ++duplicate_submissions_;
      return hit->second;
    }
    // Submission time: latest sample time stands in for server wall clock.
    const auto poa = ProofOfAlibi::parse(request->poa);
    const double t = poa && poa->end_time() ? *poa->end_time() : 0.0;
    const PoaVerdict verdict = verify_poa_bytes(request->poa, t);
    crypto::Bytes encoded = verdict.encode();
    // Only accepted proofs had side effects worth fencing; rejected ones
    // re-verify idempotently and stay out of the bounded cache.
    if (verdict.accepted) note_submission(digest, encoded);
    return encoded;
  });
  bus.register_endpoint("auditor.accuse", [this](const crypto::Bytes& in) {
    const auto request = AccusationRequest::decode(in);
    return (request ? handle_accusation(*request)
                    : AccusationResponse{false, false, "bad request"})
        .encode();
  });
}

}  // namespace alidrone::core
