#include "core/sampler.h"

#include <cstdio>
#include <limits>

namespace alidrone::core {

AdaptiveSampler::AdaptiveSampler(geo::LocalFrame frame,
                                 std::vector<geo::Circle> local_zones,
                                 double vmax_mps, double update_rate_hz)
    : frame_(frame),
      zones_(std::move(local_zones)),
      vmax_(vmax_mps),
      update_period_(1.0 / update_rate_hz) {}

bool AdaptiveSampler::should_authenticate(const gps::GpsFix& fix) {
  ++checks_;
  if (!has_last_) return true;  // S_0: anchor the alibi
  if (zones_.empty()) return false;

  const geo::Vec2 pos = frame_.to_local(fix.position);

  // FindNearestZone: nearest by focal sum D1 + D2, since that is the
  // binding constraint in conditions (2)/(3).
  double focal = std::numeric_limits<double>::infinity();
  for (const geo::Circle& z : zones_) {
    focal = std::min(focal, z.boundary_distance(last_pos_) + z.boundary_distance(pos));
  }

  const double elapsed = fix.unix_time - last_time_;
  const bool sufficient_now = focal >= vmax_ * elapsed;            // (2)
  const bool urgent = focal < vmax_ * (elapsed + 2.0 * update_period_);  // (3)
  if (!sufficient_now) return true;  // already late: record best effort
  return urgent;
}

void AdaptiveSampler::on_recorded(const gps::GpsFix& fix) {
  has_last_ = true;
  last_pos_ = frame_.to_local(fix.position);
  last_time_ = fix.unix_time;
}

FixedRateSampler::FixedRateSampler(double rate_hz, double start_time)
    : period_(1.0 / rate_hz), next_wake_(start_time) {}

bool FixedRateSampler::should_authenticate(const gps::GpsFix& fix) {
  // Awake iff the wake time has passed; the first fresh update then gets
  // authenticated. Tolerance sized for unix-epoch double magnitudes.
  return fix.unix_time >= next_wake_ - 1e-6;
}

void FixedRateSampler::on_recorded(const gps::GpsFix& fix) {
  // Sleep one period from the moment the sample was taken.
  next_wake_ = fix.unix_time + period_;
}

std::string FixedRateSampler::name() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "fixed-%.3gHz", 1.0 / period_);
  return buf;
}

}  // namespace alidrone::core
