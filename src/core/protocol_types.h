// Protocol identities, keys and records — Table I of the paper, as types.
//
//   id_drone  DroneId      carried on the drone, like a license plate
//   id_zone   ZoneId       issued by the Auditor at zone registration
//   T-        (in the TEE) tee::KeyVault private half — never leaves TEE
//   T+        RsaPublicKey TEE verification key, known to Operator/Auditor
//   D-        RsaPrivateKey operator sign key (authenticates zone queries)
//   D+        RsaPublicKey operator verification key, known to the Auditor
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/rsa.h"
#include "geo/units.h"
#include "geo/zone.h"

namespace alidrone::obs {
class Clock;
class MetricsRegistry;
}  // namespace alidrone::obs

namespace alidrone::core {

using DroneId = std::string;
using ZoneId = std::string;

/// The Auditor's record of a registered drone: (id_drone, D+, T+).
struct DroneRecord {
  DroneId id;
  crypto::RsaPublicKey operator_key;  ///< D+
  crypto::RsaPublicKey tee_key;       ///< T+
};

/// The Auditor's record of a registered no-fly-zone: (id_zone, z).
struct ZoneRecord {
  ZoneId id;
  geo::GeoZone zone;                      ///< z = (lat, lon, r)
  crypto::RsaPublicKey owner_key;         ///< for accusations & ownership
  std::string description;
  /// Section VII-B1 extension: when set, the zone is a cylinder from the
  /// ground to this altitude and altitude-aware PoAs can prove alibi by
  /// overflying it; unset means unbounded (the paper's 2D model).
  std::optional<double> ceiling_m;
};

/// A rectangular navigation area for zone queries: two opposite corners
/// (x1, y1), (x2, y2) in geodetic degrees, as in protocol step 2.
struct QueryRect {
  geo::GeoPoint corner1;
  geo::GeoPoint corner2;

  bool contains(geo::GeoPoint p) const {
    const double lat_lo = std::min(corner1.lat_deg, corner2.lat_deg);
    const double lat_hi = std::max(corner1.lat_deg, corner2.lat_deg);
    const double lon_lo = std::min(corner1.lon_deg, corner2.lon_deg);
    const double lon_hi = std::max(corner1.lon_deg, corner2.lon_deg);
    return p.lat_deg >= lat_lo && p.lat_deg <= lat_hi && p.lon_deg >= lon_lo &&
           p.lon_deg <= lon_hi;
  }
};

/// Protocol constants.
struct ProtocolParams {
  /// FAA speed cap used in the possible-traveling-range computation.
  double vmax_mps = geo::kFaaMaxSpeedMps;
  /// How long the Auditor retains verified PoAs for later accusations
  /// ("a couple of days", Section IV-C2).
  double poa_retention_seconds = 3.0 * 24 * 3600;
  /// Zone-query nonces seen within this window are rejected as replays.
  std::size_t nonce_cache_size = 4096;
  /// Accepted PoA submissions remembered (by proof digest) for
  /// content-based dedup of retried/duplicated bus deliveries: a retry
  /// storm re-sends byte-identical proofs and must not double-retain.
  std::size_t submit_dedup_cache_size = 4096;
  /// Thin plaintext per-sample PoAs to their minimal sufficient witness
  /// before retention (Section IV-C3's monotonicity, applied offline).
  bool thin_before_retention = false;
  /// Lock stripes for the Auditor's per-drone state (registration records,
  /// retained PoAs). Affects contention only — verdicts and audit logs are
  /// byte-identical for any value. Must be >= 1.
  std::size_t auditor_shards = 8;
  /// Batched RSA-per-sample verification (crypto::BatchRsaVerifier): group
  /// a PoA's signatures under its single TEE key and check a randomized
  /// e-th-power product, falling back to per-sample checks on mismatch.
  /// The Auditor only engages the batcher when its cost model predicts a
  /// win over the serial RsaVerifyEngine (see batch_verify_check_bits);
  /// verdicts and audit logs are byte-identical to serial either way.
  bool batch_verify = true;
  /// Below this many samples, batching buys nothing — verify serially.
  std::size_t batch_verify_min_samples = 2;
  /// Samples per product check; more amortizes the exponent ladder
  /// further but raises the cost of a fallback.
  std::size_t batch_verify_max_batch = 32;
  /// Small-exponents challenge width (soundness error 2^-check_bits per
  /// batch). Distinct per-item challenges are what make batch verdicts
  /// match serial ones: the check_bits = 0 plain product test is
  /// permutation-invariant — swapping two valid signatures between
  /// samples leaves both products unchanged, so a batch passes where
  /// serial verification rejects both samples (the repo's signature-swap
  /// attack test demonstrates this). check_bits = 0 is therefore never
  /// selected implicitly; it remains an explicit opt-in for deployments
  /// that accept set-level authenticity. Challenges cost roughly
  /// (check_bits + 3) multiplies per item against the serial ladder's
  /// (e_bits + 2), so for e = 65537 (17 bits) the default 16-bit
  /// challenges are not a win and the Auditor's cost gate falls back to
  /// the serial engine; batching pays off for wider public exponents.
  std::size_t batch_verify_check_bits = 16;
  /// --- TESLA broadcast mode (hash-chain PoA, ROADMAP item 2) ---
  /// Receive-time authority for the TESLA disclosure-delay security
  /// condition: a sample for interval i is admitted only while
  /// clock->now() < t0 + (i + d) * tau, i.e. before its key could have
  /// been disclosed. Null disables the arrival-time check (offline
  /// replay of recorded flights; chain + tag verification still apply).
  const obs::Clock* clock = nullptr;
  /// Upper bound on announced chain lengths (bounds verifier hash work
  /// and frontier walks per session).
  std::uint32_t tesla_max_chain_length = 1u << 20;
  /// Upper bound on announced disclosure delays d.
  std::uint32_t tesla_max_disclosure_delay = 4096;
  /// Concurrent TESLA sessions the Auditor will track.
  std::size_t tesla_max_sessions = 4096;
  /// Tagged-but-unsettled samples buffered per session; beyond this,
  /// new samples are rejected (memory bound against flooding).
  std::size_t tesla_max_buffered_samples = 65536;
  /// Tolerated receiver/drone clock skew (seconds) in the arrival-time
  /// safety check. 0 in deterministic simulations (one shared clock).
  double tesla_clock_skew_s = 0.0;
  /// Registry the Auditor (and its ingestion pipeline) publishes counters
  /// to. Null means the process-wide obs::MetricsRegistry::global().
  /// Deterministic scenarios that compare snapshots byte-for-byte pass a
  /// scenario-local registry here.
  obs::MetricsRegistry* metrics = nullptr;
};

}  // namespace alidrone::core
