#include "core/registry_store.h"

#include <fstream>

#include "net/codec.h"

namespace alidrone::core {

namespace {

constexpr std::uint32_t kMagic = 0xA11D4E61;  // "AliD registry v1"

void write_key(net::Writer& w, const crypto::RsaPublicKey& key) {
  w.bytes(key.n.to_bytes());
  w.bytes(key.e.to_bytes());
}

std::optional<crypto::RsaPublicKey> read_key(net::Reader& r) {
  auto n = r.bytes();
  auto e = r.bytes();
  if (!n || !e) return std::nullopt;
  return crypto::RsaPublicKey{crypto::BigInt::from_bytes(*n),
                              crypto::BigInt::from_bytes(*e)};
}

}  // namespace

void RegistryStore::save(const Snapshot& snapshot) const {
  net::Writer w;
  w.u32(kMagic);
  w.u32(static_cast<std::uint32_t>(snapshot.next_drone_number));
  w.u32(static_cast<std::uint32_t>(snapshot.next_zone_number));

  w.u32(static_cast<std::uint32_t>(snapshot.drones.size()));
  for (const auto& [id, record] : snapshot.drones) {
    w.str(id);
    write_key(w, record.operator_key);
    write_key(w, record.tee_key);
  }

  w.u32(static_cast<std::uint32_t>(snapshot.zones.size()));
  for (const auto& [id, record] : snapshot.zones) {
    w.str(id);
    w.f64(record.zone.center.lat_deg);
    w.f64(record.zone.center.lon_deg);
    w.f64(record.zone.radius_m);
    write_key(w, record.owner_key);
    w.str(record.description);
    w.u8(record.ceiling_m.has_value() ? 1 : 0);
    w.f64(record.ceiling_m.value_or(0.0));
  }

  const std::filesystem::path tmp = file_.string() + ".tmp";
  std::lock_guard<std::mutex> lock(mu_);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("RegistryStore: cannot write " + tmp.string());
    const crypto::Bytes& data = w.data();
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
    if (!out) throw std::runtime_error("RegistryStore: short write");
  }
  std::filesystem::rename(tmp, file_);
}

std::optional<RegistryStore::Snapshot> RegistryStore::load() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ifstream in(file_, std::ios::binary);
  if (!in) return std::nullopt;
  const crypto::Bytes data((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());

  net::Reader r(data);
  const auto magic = r.u32();
  if (!magic || *magic != kMagic) return std::nullopt;

  Snapshot snapshot;
  const auto next_drone = r.u32();
  const auto next_zone = r.u32();
  const auto drone_count = r.u32();
  if (!next_drone || !next_zone || !drone_count) return std::nullopt;
  snapshot.next_drone_number = static_cast<int>(*next_drone);
  snapshot.next_zone_number = static_cast<int>(*next_zone);

  for (std::uint32_t i = 0; i < *drone_count; ++i) {
    auto id = r.str();
    auto op_key = read_key(r);
    auto tee_key = read_key(r);
    if (!id || !op_key || !tee_key) return std::nullopt;
    snapshot.drones[*id] = DroneRecord{*id, std::move(*op_key), std::move(*tee_key)};
  }

  const auto zone_count = r.u32();
  if (!zone_count) return std::nullopt;
  for (std::uint32_t i = 0; i < *zone_count; ++i) {
    auto id = r.str();
    auto lat = r.f64();
    auto lon = r.f64();
    auto radius = r.f64();
    auto owner_key = read_key(r);
    auto description = r.str();
    auto has_ceiling = r.u8();
    auto ceiling = r.f64();
    if (!id || !lat || !lon || !radius || !owner_key || !description ||
        !has_ceiling || !ceiling) {
      return std::nullopt;
    }
    ZoneRecord record{*id,
                      geo::GeoZone{{*lat, *lon}, *radius},
                      std::move(*owner_key),
                      std::move(*description),
                      {}};
    if (*has_ceiling == 1) record.ceiling_m = *ceiling;
    snapshot.zones[*id] = std::move(record);
  }

  if (!r.at_end()) return std::nullopt;
  return snapshot;
}

}  // namespace alidrone::core
