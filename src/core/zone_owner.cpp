#include "core/zone_owner.h"

namespace alidrone::core {

ZoneOwner::ZoneOwner(std::size_t key_bits, crypto::RandomSource& rng)
    : keypair_(crypto::generate_rsa_keypair(key_bits, rng)) {}

RegisterZoneRequest ZoneOwner::make_zone_request(const geo::GeoZone& zone,
                                                 const std::string& description) const {
  RegisterZoneRequest request;
  request.zone = zone;
  request.description = description;
  request.owner_key_n = keypair_.pub.n.to_bytes();
  request.owner_key_e = keypair_.pub.e.to_bytes();
  request.proof_signature = crypto::rsa_sign(keypair_.priv, request.signed_payload(),
                                             crypto::HashAlgorithm::kSha256);
  return request;
}

crypto::Bytes ZoneOwner::sign_polygon(const std::vector<geo::GeoPoint>& vertices,
                                      const std::string& description) const {
  return crypto::rsa_sign(keypair_.priv, polygon_zone_payload(vertices, description),
                          crypto::HashAlgorithm::kSha256);
}

AccusationRequest ZoneOwner::make_accusation(const ZoneId& zone_id,
                                             const DroneId& drone_id,
                                             double incident_time) const {
  AccusationRequest request;
  request.zone_id = zone_id;
  request.drone_id = drone_id;
  request.incident_time = incident_time;
  request.owner_signature = crypto::rsa_sign(keypair_.priv, request.signed_payload(),
                                             crypto::HashAlgorithm::kSha256);
  return request;
}

ZoneId ZoneOwner::register_zone(net::Transport& bus, const geo::GeoZone& zone,
                                const std::string& description,
                                const std::string& auditor_prefix) const {
  const crypto::Bytes reply =
      bus.request(auditor_prefix + ".register_zone",
                  make_zone_request(zone, description).encode());
  const auto response = RegisterZoneResponse::decode(reply);
  if (!response || !response->ok) return "";
  return response->zone_id;
}

std::optional<AccusationResponse> ZoneOwner::accuse(
    net::Transport& bus, const ZoneId& zone_id, const DroneId& drone_id,
    double incident_time, const std::string& auditor_prefix) const {
  const crypto::Bytes reply =
      bus.request(auditor_prefix + ".accuse",
                  make_accusation(zone_id, drone_id, incident_time).encode());
  return AccusationResponse::decode(reply);
}

}  // namespace alidrone::core
