// Auditor — the AliDrone server (paper Sections III-A, IV-B, IV-C2).
//
// Maintains the registered-drone and NFZ databases, answers signed zone
// queries, verifies submitted Proofs-of-Alibi (signatures, well-formedness
// and eq.-(1) sufficiency) and retains verified PoAs so later accusations
// from Zone Owners can be adjudicated. All functionality is available as
// a direct API and as serialized endpoints on a net::Transport.
//
// Fleet-scale concurrency model: per-drone state (registration records,
// retained PoAs) is split across N lock-striped shards keyed by a hash of
// the drone id, so unrelated drones never contend; zone state is a single
// read-mostly table under a shared_mutex with an immutable shapes
// snapshot that hot verification borrows via shared_ptr. Shard layout
// only decides which mutex guards which drone — commit order is decided
// by the caller (serial in bind(), admission order in AuditorIngest), so
// verdicts and audit logs are byte-identical to the serial path for any
// shard or thread count, mirroring verify_poa_batch's evaluate-parallel/
// commit-serial discipline.
//
// Lock order (outer to inner): registration_mu_ -> zones_mu_ -> shard.mu.
// The nonce and submit-dedup caches use their own leaf mutexes and are
// deliberately global, not sharded: both are bounded FIFOs whose eviction
// order must not depend on the shard count.
#pragma once

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <vector>

#include "core/audit_log.h"
#include "core/messages.h"
#include "core/poa.h"
#include "core/poa_store.h"
#include "core/protocol_types.h"
#include "core/registry_store.h"
#include "core/sufficiency.h"
#include "core/tesla.h"
#include "core/zone_index.h"
#include "crypto/random.h"
#include "crypto/rsa.h"
#include "geo/polygon.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "runtime/thread_pool.h"

namespace alidrone::core {

class AuditorIngest;

class Auditor {
 public:
  /// The Auditor has its own keypair: the public half encrypts PoA samples
  /// in transit/storage (Section V-C). Key generation uses `rng`.
  Auditor(std::size_t key_bits, crypto::RandomSource& rng,
          ProtocolParams params = {});

  /// Public encryption key handed to drone clients.
  const crypto::RsaPublicKey& encryption_key() const { return keypair_.pub; }

  // ---- Step 0: drone registration ----
  RegisterDroneResponse register_drone(const RegisterDroneRequest& request);

  // ---- Step 1: zone registration ----
  RegisterZoneResponse register_zone(const RegisterZoneRequest& request);

  /// Section VII-B2: polygon NFZ registration. The Auditor reduces the
  /// polygon to its smallest enclosing circle at registration time.
  /// `proof_signature` must verify over polygon_zone_payload(..).
  RegisterZoneResponse register_polygon_zone(
      const std::vector<geo::GeoPoint>& vertices,
      const crypto::RsaPublicKey& owner_key, const crypto::Bytes& proof_signature,
      const std::string& description);

  /// Section VII-B1: register a cylindrical zone with a ceiling altitude;
  /// altitude-aware PoAs can prove alibi by flying above it.
  RegisterZoneResponse register_zone_3d(const RegisterZoneRequest& request,
                                        double ceiling_m);

  // ---- Steps 2-3: zone query ----
  ZoneQueryResponse query_zones(const ZoneQueryRequest& request);

  // ---- Step 4: PoA verification ----
  PoaVerdict verify_poa(const ProofOfAlibi& poa, double submission_time);
  PoaVerdict verify_poa_bytes(std::span<const std::uint8_t> poa_bytes,
                              double submission_time);

  /// Batched verification. With a pool, the per-proof evaluation work
  /// (signature checks, decryption, sufficiency) fans out across the
  /// workers; all state mutation (retention, audit events) then happens
  /// serially in submission order. Verdicts, retained PoAs and audit-log
  /// contents are byte-identical to calling verify_poa in a loop,
  /// regardless of thread count. Pass nullptr (or a 1-thread pool) for
  /// the serial path.
  std::vector<PoaVerdict> verify_poa_batch(std::span<const ProofOfAlibi> poas,
                                           double submission_time,
                                           runtime::ThreadPool* pool = nullptr);

  // ---- TESLA broadcast mode (hash-chain PoA) ----
  //
  // The lossy-broadcast alternative to submit_poa: announce a chain
  // commitment, stream tagged samples, disclose keys, finalize. Calls
  // must be presented in a deterministic admission order (bind() serial
  // endpoints, or AuditorIngest's commit phase) — then verdicts and
  // audit events are byte-identical for any thread or shard count.

  /// Verify the TEE commitment signature under the drone's registered T+
  /// and open (or idempotently re-acknowledge) the session.
  TeslaAck tesla_announce(const TeslaAnnounceRequest& request);
  /// Admit one broadcast sample (buffered until its key is disclosed).
  TeslaAck tesla_sample(const TeslaSampleBroadcastView& sample);
  /// Verify a disclosed chain key and settle the intervals it covers;
  /// failed tags are audited as kTeslaSampleRejected.
  TeslaAck tesla_disclose(const TeslaDiscloseRequestView& disclose);
  /// Assemble the session's accepted subset into a kTeslaChain PoA and
  /// adjudicate it through the standard verify/retain/audit pipeline.
  PoaVerdict tesla_finalize(const TeslaFinalizeRequest& request);
  std::size_t tesla_session_count() const { return tesla_->session_count(); }

  // ---- Accusations ----
  AccusationResponse handle_accusation(const AccusationRequest& request);

  /// Drop retained PoAs older than the retention window.
  void expire_poas(double now);

  /// Attach durable PoA retention: verified PoAs are also written to the
  /// store, and accusations consult it when memory has no match (e.g.
  /// after an Auditor restart).
  void attach_store(std::shared_ptr<PoaStore> store) { store_ = std::move(store); }

  /// Attach durable identity databases: restores any existing snapshot
  /// (drones, zones, id counters) immediately, then persists after every
  /// registration.
  void attach_registry(std::shared_ptr<RegistryStore> registry);

  /// Attach an audit log; registrations, queries, verdicts and
  /// accusations are recorded from then on.
  void attach_audit_log(std::shared_ptr<AuditLog> log) { audit_ = std::move(log); }

  // ---- Introspection ----
  std::size_t drone_count() const;
  std::size_t zone_count() const;
  std::size_t retained_poa_count() const;
  /// Bus submissions answered from the proof-digest dedup cache (retry
  /// storms, duplicated deliveries) without re-verification or retention.
  std::uint64_t duplicate_poa_submissions() const {
    return duplicate_submissions_->value();
  }
  /// register_drone calls answered idempotently (same TEE + operator key
  /// re-submitted, e.g. a retry after a lost response).
  std::uint64_t duplicate_registrations() const {
    return duplicate_registrations_->value();
  }
  /// Zone table, for inspection. Not synchronized against concurrent zone
  /// registration — callers take it while no mutator runs.
  const std::map<ZoneId, ZoneRecord>& zones() const { return zones_; }
  const ProtocolParams& params() const { return params_; }

  /// The wire-visible operations bind() serves, in a stable numbering —
  /// also the method byte of the ledger's kReplicatedRequest entries, so
  /// renumbering is a ledger format break.
  enum class WireMethod : std::uint8_t {
    kRegisterDrone = 1,
    kRegisterZone,
    kQueryZones,
    kSubmitPoa,
    kTeslaAnnounce,
    kTeslaSample,
    kTeslaDisclose,
    kTeslaFinalize,
    kAccuse,
  };
  static const char* method_suffix(WireMethod method);

  /// Serve one serialized request frame exactly as the corresponding bus
  /// endpoint would (same decode, same dedup, same audit events). This is
  /// the seam ReplicatedAuditor re-executes requests through: feeding the
  /// same frames in the same order to two Auditors yields byte-identical
  /// responses, state and ledger streams.
  crypto::Bytes handle_frame(WireMethod method, const crypto::Bytes& request);

  /// Register the serialized endpoints ("<prefix>.register_drone", ...).
  /// The prefix is the Auditor's bus address — replicas bind the same
  /// methods as "auditor0.", "auditor1.", ... so clients can re-target.
  void bind(net::Transport& bus, const std::string& prefix = "auditor");

 private:
  friend class AuditorIngest;

  crypto::RsaKeyPair keypair_;
  ProtocolParams params_;

  struct RetainedPoa {
    double submission_time = 0.0;
    ProofOfAlibi poa;
    std::vector<gps::GpsFix> samples;  ///< decoded, decrypted
  };

  /// One lock stripe of per-drone state. A drone's registration record
  /// and its retained PoAs live in the shard its id hashes to. Records
  /// are immutable once registered and handed out as shared_ptr<const>,
  /// so verification never holds a shard lock while doing RSA math.
  struct StateShard {
    mutable std::mutex mu;
    std::map<DroneId, std::shared_ptr<const DroneRecord>, std::less<>> drones;
    std::map<DroneId, std::vector<RetainedPoa>, std::less<>> retained;
  };
  std::vector<std::unique_ptr<StateShard>> shards_;

  std::size_t shard_index(std::string_view drone_id) const;
  StateShard& shard_for(std::string_view drone_id) const {
    return *shards_[shard_index(drone_id)];
  }
  /// nullptr when unknown. The record outlives the shard lock.
  std::shared_ptr<const DroneRecord> find_drone(std::string_view drone_id) const;

  // Zone state: read-mostly, global (zones are shared by every drone).
  mutable std::shared_mutex zones_mu_;
  std::map<ZoneId, ZoneRecord> zones_;
  ZoneIndex zone_index_;  // spatial index over zones_ for queries

  /// Immutable snapshot of the registered zone geometry, rebuilt by zone
  /// mutators; hot verification borrows it with one shared_ptr copy
  /// instead of rebuilding three vectors per proof.
  struct ZoneShapes {
    std::vector<geo::GeoZone> all;
    std::vector<geo::GeoZone> planar;     ///< unbounded zones, eq. (1)
    std::vector<geo::GeoZone3> cylinders; ///< Section VII-B1 ceilings
  };
  std::shared_ptr<const ZoneShapes> zone_shapes_;
  std::shared_ptr<const ZoneShapes> zone_shapes() const;
  /// Caller holds zones_mu_ exclusively.
  void rebuild_zone_shapes_locked();

  // Registration order (id counters, TEE-key uniqueness scan, registry
  // persistence) is serialized; queries and verification never take this.
  mutable std::mutex registration_mu_;
  int next_drone_number_ = 1;
  int next_zone_number_ = 1;

  // Replay defense for zone-query nonces (bounded FIFO + set).
  std::mutex nonce_mu_;
  std::set<crypto::Bytes> seen_nonces_;
  std::deque<crypto::Bytes> nonce_order_;

  // Replay defense for PoA submissions over the bus: proof digest ->
  // encoded verdict of the first accepted delivery (bounded FIFO + map).
  mutable std::mutex submit_mu_;
  std::map<crypto::Bytes, crypto::Bytes> submit_cache_;
  std::deque<crypto::Bytes> submit_cache_order_;
  // Registry-backed counters (instance scope "core.auditor" in
  // params_.metrics, or the process-wide registry when unset).
  obs::Counter* duplicate_submissions_;
  obs::Counter* duplicate_registrations_;
  // Batched-verification totals (published at commit time; see
  // BatchVerifyStats for why not during evaluation).
  obs::Counter* batch_groups_;
  obs::Counter* batch_samples_;
  obs::Counter* batch_fallbacks_;
  obs::Gauge* batch_max_group_;

  /// Cached verdict for a previously accepted submission digest; counts a
  /// duplicate on hit.
  std::optional<crypto::Bytes> lookup_submission(const crypto::Bytes& digest);
  /// Remember an accepted submission's verdict for dedup.
  void note_submission(const crypto::Bytes& digest, const crypto::Bytes& verdict);

  std::shared_ptr<PoaStore> store_;             // optional durable retention
  std::shared_ptr<RegistryStore> registry_;     // optional durable identities
  std::shared_ptr<AuditLog> audit_;             // optional event log

  /// TESLA session state (hash-chain commitments, buffered samples,
  /// disclosure frontiers). Own mutex, leaf in the lock order.
  std::unique_ptr<TeslaVerifier> tesla_;

  /// Caller holds registration_mu_ (serializes snapshot contents).
  void persist_registry() const;
  void audit(double time, AuditEventType type, const std::string& subject,
             bool ok, const std::string& detail) const;

  /// Batched-verification work done while evaluating one PoA. Carried on
  /// the evaluation and published to the registry only at commit time, in
  /// commit order, so metric snapshots stay byte-identical no matter how
  /// many threads ran the (pure) evaluations.
  struct BatchVerifyStats {
    std::uint64_t groups = 0;     ///< product checks (flushes)
    std::uint64_t samples = 0;    ///< signatures settled through batches
    std::uint64_t fallbacks = 0;  ///< product mismatches -> per-sample scans
    std::uint64_t max_group = 0;  ///< largest single flush
  };

  /// Result of the side-effect-free half of PoA verification.
  struct PoaEvaluation {
    PoaVerdict verdict;
    bool retain = false;  ///< reached the retention point (accepted + ordered)
    ProofOfAlibi to_retain;
    std::vector<gps::GpsFix> retained_samples;
    BatchVerifyStats batch;
  };

  /// Pure verification: signatures, decryption, sufficiency, thinning.
  /// Reads registries and the Auditor keypair but mutates nothing
  /// (per-drone records via shard locks, zone geometry via the shapes
  /// snapshot), so calls may run concurrently with each other and with
  /// other evaluations. The view borrows the caller's frame; an owning
  /// ProofOfAlibi is materialized only on the retain path.
  PoaEvaluation evaluate_poa(const PoaView& poa) const;

  /// Apply an evaluation's side effects (retention, store write, audit
  /// event) and return its verdict. Callers serialize commits and order
  /// them by submission for deterministic logs.
  PoaVerdict commit_evaluation(std::string_view drone_id, PoaEvaluation evaluation,
                               double submission_time);

  ZoneQueryResponse query_zones_impl(std::string_view drone_id,
                                     const QueryRect& rect,
                                     std::span<const std::uint8_t> nonce,
                                     std::span<const std::uint8_t> nonce_signature);

  /// Evaluate one retained flight against an accusation; nullopt when the
  /// incident is outside the flight window.
  std::optional<AccusationResponse> adjudicate(
      const std::vector<gps::GpsFix>& samples, const ZoneRecord& zone,
      double incident_time) const;

  bool note_nonce(std::span<const std::uint8_t> nonce);

  /// Decrypt + authenticate the samples of a PoA; on success fills
  /// `out_samples` with decoded fixes. Returns a failure detail or "".
  /// RSA-per-sample signatures go through crypto::BatchRsaVerifier when
  /// params_.batch_verify allows; the failure strings and the index of the
  /// first reported failure are byte-identical to serial verification.
  /// `stats` (may be null) accumulates the batching work performed.
  std::string authenticate_samples(const PoaView& poa,
                                   const DroneRecord& drone,
                                   std::vector<gps::GpsFix>& out_samples,
                                   BatchVerifyStats* stats = nullptr) const;
};

}  // namespace alidrone::core
