// Auditor — the AliDrone server (paper Sections III-A, IV-B, IV-C2).
//
// Maintains the registered-drone and NFZ databases, answers signed zone
// queries, verifies submitted Proofs-of-Alibi (signatures, well-formedness
// and eq.-(1) sufficiency) and retains verified PoAs so later accusations
// from Zone Owners can be adjudicated. All functionality is available as
// a direct API and as serialized endpoints on a net::MessageBus.
#pragma once

#include <deque>
#include <map>
#include <set>
#include <vector>

#include <memory>

#include "core/audit_log.h"
#include "core/messages.h"
#include "core/poa.h"
#include "core/poa_store.h"
#include "core/protocol_types.h"
#include "core/registry_store.h"
#include "core/sufficiency.h"
#include "core/zone_index.h"
#include "crypto/random.h"
#include "crypto/rsa.h"
#include "geo/polygon.h"
#include "net/message_bus.h"
#include "runtime/thread_pool.h"

namespace alidrone::core {

class Auditor {
 public:
  /// The Auditor has its own keypair: the public half encrypts PoA samples
  /// in transit/storage (Section V-C). Key generation uses `rng`.
  Auditor(std::size_t key_bits, crypto::RandomSource& rng,
          ProtocolParams params = {});

  /// Public encryption key handed to drone clients.
  const crypto::RsaPublicKey& encryption_key() const { return keypair_.pub; }

  // ---- Step 0: drone registration ----
  RegisterDroneResponse register_drone(const RegisterDroneRequest& request);

  // ---- Step 1: zone registration ----
  RegisterZoneResponse register_zone(const RegisterZoneRequest& request);

  /// Section VII-B2: polygon NFZ registration. The Auditor reduces the
  /// polygon to its smallest enclosing circle at registration time.
  /// `proof_signature` must verify over polygon_zone_payload(..).
  RegisterZoneResponse register_polygon_zone(
      const std::vector<geo::GeoPoint>& vertices,
      const crypto::RsaPublicKey& owner_key, const crypto::Bytes& proof_signature,
      const std::string& description);

  /// Section VII-B1: register a cylindrical zone with a ceiling altitude;
  /// altitude-aware PoAs can prove alibi by flying above it.
  RegisterZoneResponse register_zone_3d(const RegisterZoneRequest& request,
                                        double ceiling_m);

  // ---- Steps 2-3: zone query ----
  ZoneQueryResponse query_zones(const ZoneQueryRequest& request);

  // ---- Step 4: PoA verification ----
  PoaVerdict verify_poa(const ProofOfAlibi& poa, double submission_time);
  PoaVerdict verify_poa_bytes(std::span<const std::uint8_t> poa_bytes,
                              double submission_time);

  /// Batched verification. With a pool, the per-proof evaluation work
  /// (signature checks, decryption, sufficiency) fans out across the
  /// workers; all state mutation (retention, audit events) then happens
  /// serially in submission order. Verdicts, retained PoAs and audit-log
  /// contents are byte-identical to calling verify_poa in a loop,
  /// regardless of thread count. Pass nullptr (or a 1-thread pool) for
  /// the serial path.
  std::vector<PoaVerdict> verify_poa_batch(std::span<const ProofOfAlibi> poas,
                                           double submission_time,
                                           runtime::ThreadPool* pool = nullptr);

  // ---- Accusations ----
  AccusationResponse handle_accusation(const AccusationRequest& request);

  /// Drop retained PoAs older than the retention window.
  void expire_poas(double now);

  /// Attach durable PoA retention: verified PoAs are also written to the
  /// store, and accusations consult it when memory has no match (e.g.
  /// after an Auditor restart).
  void attach_store(std::shared_ptr<PoaStore> store) { store_ = std::move(store); }

  /// Attach durable identity databases: restores any existing snapshot
  /// (drones, zones, id counters) immediately, then persists after every
  /// registration.
  void attach_registry(std::shared_ptr<RegistryStore> registry);

  /// Attach an audit log; registrations, queries, verdicts and
  /// accusations are recorded from then on.
  void attach_audit_log(std::shared_ptr<AuditLog> log) { audit_ = std::move(log); }

  // ---- Introspection ----
  std::size_t drone_count() const { return drones_.size(); }
  std::size_t zone_count() const { return zones_.size(); }
  std::size_t retained_poa_count() const;
  /// Bus submissions answered from the proof-digest dedup cache (retry
  /// storms, duplicated deliveries) without re-verification or retention.
  std::uint64_t duplicate_poa_submissions() const { return duplicate_submissions_; }
  /// register_drone calls answered idempotently (same TEE + operator key
  /// re-submitted, e.g. a retry after a lost response).
  std::uint64_t duplicate_registrations() const { return duplicate_registrations_; }
  const std::map<ZoneId, ZoneRecord>& zones() const { return zones_; }
  const ProtocolParams& params() const { return params_; }

  /// Register the serialized endpoints ("auditor.register_drone", ...).
  void bind(net::MessageBus& bus);

 private:
  crypto::RsaKeyPair keypair_;
  ProtocolParams params_;
  std::map<DroneId, DroneRecord> drones_;
  std::map<ZoneId, ZoneRecord> zones_;
  ZoneIndex zone_index_;  // spatial index over zones_ for queries
  int next_drone_number_ = 1;
  int next_zone_number_ = 1;

  // Replay defense for zone-query nonces (bounded FIFO + set).
  std::set<crypto::Bytes> seen_nonces_;
  std::deque<crypto::Bytes> nonce_order_;

  // Replay defense for PoA submissions over the bus: proof digest ->
  // encoded verdict of the first accepted delivery (bounded FIFO + map).
  std::map<crypto::Bytes, crypto::Bytes> submit_cache_;
  std::deque<crypto::Bytes> submit_cache_order_;
  std::uint64_t duplicate_submissions_ = 0;
  std::uint64_t duplicate_registrations_ = 0;

  /// Remember an accepted submission's verdict for dedup.
  void note_submission(const crypto::Bytes& digest, const crypto::Bytes& verdict);

  struct RetainedPoa {
    double submission_time = 0.0;
    ProofOfAlibi poa;
    std::vector<gps::GpsFix> samples;  ///< decoded, decrypted
  };
  std::map<DroneId, std::vector<RetainedPoa>> retained_;
  std::shared_ptr<PoaStore> store_;             // optional durable retention
  std::shared_ptr<RegistryStore> registry_;     // optional durable identities
  std::shared_ptr<AuditLog> audit_;             // optional event log

  void persist_registry() const;
  void audit(double time, AuditEventType type, const std::string& subject,
             bool ok, const std::string& detail) const;

  /// Result of the side-effect-free half of PoA verification.
  struct PoaEvaluation {
    PoaVerdict verdict;
    bool retain = false;  ///< reached the retention point (accepted + ordered)
    ProofOfAlibi to_retain;
    std::vector<gps::GpsFix> retained_samples;
  };

  /// Pure verification: signatures, decryption, sufficiency, thinning.
  /// Reads registries and the Auditor keypair but mutates nothing, so
  /// calls may run concurrently as long as no mutator runs alongside.
  PoaEvaluation evaluate_poa(const ProofOfAlibi& poa) const;

  /// Apply an evaluation's side effects (retention, store write, audit
  /// event) and return its verdict. Must run on one thread at a time;
  /// batch commits run in submission order for deterministic logs.
  PoaVerdict commit_evaluation(const DroneId& drone_id, PoaEvaluation evaluation,
                               double submission_time);

  /// Evaluate one retained flight against an accusation; nullopt when the
  /// incident is outside the flight window.
  std::optional<AccusationResponse> adjudicate(
      const std::vector<gps::GpsFix>& samples, const ZoneRecord& zone,
      double incident_time) const;

  bool note_nonce(const crypto::Bytes& nonce);
  std::vector<geo::GeoZone> all_zone_shapes() const;
  std::vector<geo::GeoZone> planar_zone_shapes() const;
  std::vector<geo::GeoZone3> cylinder_zone_shapes() const;

  /// Decrypt + authenticate the samples of a PoA; on success fills
  /// `out_samples` with decoded fixes. Returns a failure detail or "".
  std::string authenticate_samples(const ProofOfAlibi& poa,
                                   const DroneRecord& drone,
                                   std::vector<gps::GpsFix>& out_samples) const;
};

}  // namespace alidrone::core
