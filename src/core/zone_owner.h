// Zone Owner — the party who registers no-fly-zones over her property and
// reports suspected violations (paper Section III-A).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/messages.h"
#include "core/protocol_types.h"
#include "crypto/random.h"
#include "crypto/rsa.h"
#include "net/transport.h"

namespace alidrone::core {

class ZoneOwner {
 public:
  ZoneOwner(std::size_t key_bits, crypto::RandomSource& rng);

  const crypto::RsaPublicKey& public_key() const { return keypair_.pub; }

  /// Build a signed circular-zone registration (protocol step 1).
  RegisterZoneRequest make_zone_request(const geo::GeoZone& zone,
                                        const std::string& description) const;

  /// Signature for a polygon-zone registration (Section VII-B2).
  crypto::Bytes sign_polygon(const std::vector<geo::GeoPoint>& vertices,
                             const std::string& description) const;

  /// Build a signed accusation ("drone X was near my zone at time t").
  AccusationRequest make_accusation(const ZoneId& zone_id, const DroneId& drone_id,
                                    double incident_time) const;

  /// Convenience: register a zone over the bus. Returns the issued id
  /// ("" on rejection). `auditor_prefix` addresses a specific replica in
  /// a federated deployment.
  ZoneId register_zone(net::Transport& bus, const geo::GeoZone& zone,
                       const std::string& description,
                       const std::string& auditor_prefix = "auditor") const;

  /// Convenience: file a signed accusation over the bus; any replica can
  /// adjudicate it from its replicated retention. Nullopt on an
  /// undecodable reply.
  std::optional<AccusationResponse> accuse(
      net::Transport& bus, const ZoneId& zone_id, const DroneId& drone_id,
      double incident_time, const std::string& auditor_prefix = "auditor") const;

 private:
  crypto::RsaKeyPair keypair_;
};

}  // namespace alidrone::core
