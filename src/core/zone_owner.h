// Zone Owner — the party who registers no-fly-zones over her property and
// reports suspected violations (paper Section III-A).
#pragma once

#include <vector>

#include "core/messages.h"
#include "core/protocol_types.h"
#include "crypto/random.h"
#include "crypto/rsa.h"
#include "net/message_bus.h"

namespace alidrone::core {

class ZoneOwner {
 public:
  ZoneOwner(std::size_t key_bits, crypto::RandomSource& rng);

  const crypto::RsaPublicKey& public_key() const { return keypair_.pub; }

  /// Build a signed circular-zone registration (protocol step 1).
  RegisterZoneRequest make_zone_request(const geo::GeoZone& zone,
                                        const std::string& description) const;

  /// Signature for a polygon-zone registration (Section VII-B2).
  crypto::Bytes sign_polygon(const std::vector<geo::GeoPoint>& vertices,
                             const std::string& description) const;

  /// Build a signed accusation ("drone X was near my zone at time t").
  AccusationRequest make_accusation(const ZoneId& zone_id, const DroneId& drone_id,
                                    double incident_time) const;

  /// Convenience: register a zone over the bus. Returns the issued id
  /// ("" on rejection).
  ZoneId register_zone(net::MessageBus& bus, const geo::GeoZone& zone,
                       const std::string& description) const;

 private:
  crypto::RsaKeyPair keypair_;
};

}  // namespace alidrone::core
