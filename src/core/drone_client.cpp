#include "core/drone_client.h"

#include "tee/gps_sampler_ta.h"

namespace alidrone::core {

DroneClient::DroneClient(tee::DroneTee& tee, std::size_t operator_key_bits,
                         crypto::RandomSource& rng,
                         obs::MetricsRegistry* registry)
    : tee_(tee), keypair_(crypto::generate_rsa_keypair(operator_key_bits, rng)) {
  obs::MetricsRegistry& reg =
      registry != nullptr ? *registry : obs::MetricsRegistry::global();
  const std::string scope = reg.instance_scope("core.drone_client");
  enqueued_ = &reg.counter(scope + ".outbox_enqueued");
  delivered_ = &reg.counter(scope + ".outbox_delivered");
  drain_attempts_ = &reg.counter(scope + ".outbox_drain_attempts");
  undecodable_responses_ = &reg.counter(scope + ".outbox_undecodable_responses");
  failovers_ = &reg.counter(scope + ".failovers");
}

void DroneClient::set_auditor_endpoints(std::vector<std::string> prefixes) {
  targets_ = resilience::EndpointFailover(std::move(prefixes));
}

bool DroneClient::fail_over() {
  if (targets_.size() <= 1) return false;
  targets_.rotate();
  failovers_->increment();
  if (recorder_ != nullptr) {
    recorder_->record(obs::TraceKind::kReplicaFailover, 0.0,
                      targets_.active_index(), 0, targets_.active());
  }
  return true;
}

DroneClient::OutboxCounters DroneClient::outbox_counters() const {
  OutboxCounters c;
  c.enqueued = enqueued_->value();
  c.delivered = delivered_->value();
  c.drain_attempts = drain_attempts_->value();
  c.undecodable_responses = undecodable_responses_->value();
  return c;
}

std::optional<RegisterDroneRequest> DroneClient::make_register_request() {
  // Read T+ through the monitored TA interface, as the operator would at
  // merchandising time.
  const tee::InvokeResult key = tee_.monitor().invoke(
      tee_.sampler_uuid(),
      static_cast<std::uint32_t>(tee::SamplerCommand::kGetPublicKey));
  if (!key.ok() || key.outputs.size() != 2) return std::nullopt;

  RegisterDroneRequest request;
  request.operator_key_n = keypair_.pub.n.to_bytes();
  request.operator_key_e = keypair_.pub.e.to_bytes();
  request.tee_key_n = key.outputs[0];
  request.tee_key_e = key.outputs[1];
  return request;
}

bool DroneClient::accept_register_reply(const crypto::Bytes& reply) {
  const auto response = RegisterDroneResponse::decode(reply);
  if (!response || !response->ok) return false;
  id_ = response->drone_id;
  return true;
}

bool DroneClient::register_with_auditor(net::Transport& bus) {
  const auto request = make_register_request();
  if (!request) return false;
  return accept_register_reply(
      bus.request(targets_.endpoint("register_drone"), request->encode()));
}

bool DroneClient::register_with_auditor(resilience::ReliableChannel& channel) {
  const auto request = make_register_request();
  if (!request) return false;
  // Registration is idempotent on every replica, so trying each target in
  // turn can at worst register twice under different prefixes — the
  // replicas replicate the first write, and the second is answered from
  // the duplicate-registration path.
  for (std::size_t tried = 0; tried < targets_.size(); ++tried) {
    const auto outcome =
        channel.request(targets_.endpoint("register_drone"), request->encode());
    if (outcome.ok) return accept_register_reply(outcome.response);
    if (!fail_over()) break;
  }
  return false;
}

ZoneQueryRequest DroneClient::make_zone_query(const QueryRect& rect) {
  ZoneQueryRequest request;
  request.drone_id = id_;
  request.rect = rect;
  request.nonce = nonce_rng_.bytes(16);
  request.nonce_signature = crypto::rsa_sign(keypair_.priv, request.nonce,
                                             crypto::HashAlgorithm::kSha256);
  return request;
}

std::optional<std::vector<ZoneInfo>> DroneClient::query_zones(net::Transport& bus,
                                                              const QueryRect& rect) {
  const crypto::Bytes reply =
      bus.request(targets_.endpoint("query_zones"), make_zone_query(rect).encode());
  const auto response = ZoneQueryResponse::decode(reply);
  if (!response || !response->ok) return std::nullopt;
  return response->zones;
}

std::optional<std::vector<ZoneInfo>> DroneClient::query_zones(
    resilience::ReliableChannel& channel, const QueryRect& rect) {
  // A zone query is read-only, so redelivery is harmless — but the
  // Auditor remembers nonces, so a retry AFTER a lost response would be
  // rejected as a replay. Each attempt therefore signs a fresh nonce
  // (a new logical request), with the channel handling backoff between.
  for (std::uint32_t attempt = 0; attempt < channel.config().retry.max_attempts;
       ++attempt) {
    const auto outcome = channel.request(targets_.endpoint("query_zones"),
                                         make_zone_query(rect).encode());
    if (outcome.circuit_open) {
      // The active auditor's breaker is open: a follower can serve the
      // (read-only) query instead. Single-target clients give up, as
      // before.
      if (!fail_over()) return std::nullopt;
      continue;
    }
    if (!outcome.ok) {
      fail_over();
      continue;
    }
    const auto response = ZoneQueryResponse::decode(outcome.response);
    if (!response) continue;  // corrupted in transit: ask again
    if (!response->ok && response->error == "replayed nonce") continue;
    if (!response->ok) return std::nullopt;
    return response->zones;
  }
  return std::nullopt;
}

ProofOfAlibi DroneClient::fly(gps::GpsReceiverSim& receiver, SamplingPolicy& policy,
                              FlightConfig config, crypto::HashAlgorithm hash) {
  last_flight_ = run_flight(tee_, receiver, policy, config);
  return assemble_poa(id_, config, hash, last_flight_);
}

std::optional<PoaVerdict> DroneClient::submit_poa(net::Transport& bus,
                                                  const ProofOfAlibi& poa) {
  SubmitPoaRequest request{poa.serialize()};
  const crypto::Bytes reply =
      bus.request(targets_.endpoint("submit_poa"), request.encode());
  return PoaVerdict::decode(reply);
}

std::optional<PoaVerdict> DroneClient::submit_poa(
    resilience::ReliableChannel& channel, const ProofOfAlibi& poa) {
  const std::size_t backlog = outbox_.size();
  enqueue_poa(poa);
  const std::vector<PoaVerdict> verdicts = drain_outbox(channel);
  // The drain delivers oldest-first: this proof's verdict is the one
  // after the backlog's, and only if everything before it also went out.
  if (verdicts.size() > backlog) return verdicts[backlog];
  return std::nullopt;
}

void DroneClient::enqueue_poa(const ProofOfAlibi& poa) {
  outbox_.push_back(OutboxEntry{poa.serialize(), 0});
  enqueued_->increment();
}

std::vector<PoaVerdict> DroneClient::drain_outbox(
    resilience::ReliableChannel& channel) {
  std::vector<PoaVerdict> verdicts;
  std::deque<OutboxEntry> remaining;
  bool stop = false;
  while (!outbox_.empty()) {
    OutboxEntry entry = std::move(outbox_.front());
    outbox_.pop_front();
    if (stop) {
      remaining.push_back(std::move(entry));
      continue;
    }

    // One pass over the target list: try the active auditor, and on
    // failure rotate to the next replica for this same entry. The proof
    // bytes are frozen at enqueue, so a cross-replica redelivery hits the
    // replicas' shared content-dedup discipline and stays exactly-once.
    std::optional<PoaVerdict> verdict;
    bool last_circuit_open = false;
    for (std::size_t tried = 0; tried < targets_.size(); ++tried) {
      const auto outcome =
          channel.request(targets_.endpoint("submit_poa"),
                          SubmitPoaRequest{entry.poa_bytes}.encode());
      drain_attempts_->add(outcome.attempts);
      ++entry.attempts;
      last_circuit_open = outcome.circuit_open;
      if (outcome.ok) {
        verdict = PoaVerdict::decode(outcome.response);
        if (!verdict) undecodable_responses_->increment();
      }
      if (verdict) break;
      if (!fail_over()) break;
    }
    if (verdict) {
      delivered_->increment();
      verdicts.push_back(std::move(*verdict));
      continue;
    }
    // Not delivered (or the verdict was mangled in transit — the Auditor
    // may already have verified it; content dedup makes the redelivery
    // return the same verdict). Keep it for the next drain, and stop
    // hammering a tripped endpoint.
    remaining.push_back(std::move(entry));
    if (last_circuit_open) stop = true;
  }
  outbox_ = std::move(remaining);
  return verdicts;
}

}  // namespace alidrone::core
