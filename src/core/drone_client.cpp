#include "core/drone_client.h"

#include "tee/gps_sampler_ta.h"

namespace alidrone::core {

DroneClient::DroneClient(tee::DroneTee& tee, std::size_t operator_key_bits,
                         crypto::RandomSource& rng)
    : tee_(tee), keypair_(crypto::generate_rsa_keypair(operator_key_bits, rng)) {}

bool DroneClient::register_with_auditor(net::MessageBus& bus) {
  // Read T+ through the monitored TA interface, as the operator would at
  // merchandising time.
  const tee::InvokeResult key = tee_.monitor().invoke(
      tee_.sampler_uuid(),
      static_cast<std::uint32_t>(tee::SamplerCommand::kGetPublicKey));
  if (!key.ok() || key.outputs.size() != 2) return false;

  RegisterDroneRequest request;
  request.operator_key_n = keypair_.pub.n.to_bytes();
  request.operator_key_e = keypair_.pub.e.to_bytes();
  request.tee_key_n = key.outputs[0];
  request.tee_key_e = key.outputs[1];

  const crypto::Bytes reply = bus.request("auditor.register_drone", request.encode());
  const auto response = RegisterDroneResponse::decode(reply);
  if (!response || !response->ok) return false;
  id_ = response->drone_id;
  return true;
}

ZoneQueryRequest DroneClient::make_zone_query(const QueryRect& rect) {
  ZoneQueryRequest request;
  request.drone_id = id_;
  request.rect = rect;
  request.nonce = nonce_rng_.bytes(16);
  request.nonce_signature = crypto::rsa_sign(keypair_.priv, request.nonce,
                                             crypto::HashAlgorithm::kSha256);
  return request;
}

std::optional<std::vector<ZoneInfo>> DroneClient::query_zones(net::MessageBus& bus,
                                                              const QueryRect& rect) {
  const crypto::Bytes reply =
      bus.request("auditor.query_zones", make_zone_query(rect).encode());
  const auto response = ZoneQueryResponse::decode(reply);
  if (!response || !response->ok) return std::nullopt;
  return response->zones;
}

ProofOfAlibi DroneClient::fly(gps::GpsReceiverSim& receiver, SamplingPolicy& policy,
                              FlightConfig config, crypto::HashAlgorithm hash) {
  last_flight_ = run_flight(tee_, receiver, policy, config);

  ProofOfAlibi poa;
  poa.drone_id = id_;
  poa.mode = config.auth_mode;
  poa.hash = hash;
  poa.encrypted = config.auditor_encryption_key.has_value();
  poa.samples = last_flight_.poa_samples;
  poa.session_key_ciphertext = last_flight_.session_key_ciphertext;
  poa.session_key_signature = last_flight_.session_key_signature;
  poa.batch_signature = last_flight_.batch_signature;
  return poa;
}

std::optional<PoaVerdict> DroneClient::submit_poa(net::MessageBus& bus,
                                                  const ProofOfAlibi& poa) {
  SubmitPoaRequest request{poa.serialize()};
  const crypto::Bytes reply = bus.request("auditor.submit_poa", request.encode());
  return PoaVerdict::decode(reply);
}

}  // namespace alidrone::core
