// Sampling policies: the paper's Adaptive Sampling (Algorithm 1) and the
// Fix Rate Sampling baseline it is evaluated against (Section VI-A1).
//
// Both run in the normal-world Adapter. On every fresh (unauthenticated)
// GPS update read via ReadGPS(), the policy decides whether to pay for a
// GetGPSAuth() round trip into the TEE.
#pragma once

#include <memory>
#include <vector>

#include "geo/circle.h"
#include "geo/geopoint.h"
#include "gps/fix.h"

namespace alidrone::core {

/// Decision interface shared by both samplers.
class SamplingPolicy {
 public:
  virtual ~SamplingPolicy() = default;

  /// Called for every fresh GPS update at the receiver rate R.
  /// Return true to call GetGPSAuth() and record the sample in the PoA.
  virtual bool should_authenticate(const gps::GpsFix& fix) = 0;

  /// Notification that `fix` was authenticated and recorded.
  virtual void on_recorded(const gps::GpsFix& fix) = 0;

  virtual std::string name() const = 0;
};

/// Algorithm 1. Records a sample when:
///   (2)  D1 + D2 >= v_max (t2 - t1)        -- alibi still sufficient now
///   (3)  D1 + D2 <  v_max (t2 - t1 + 2/R)  -- it would stop being by the
///                                             update after next
/// plus two protocol-level guards the algorithm's text implies: the first
/// fix of a flight is always recorded (S_{k_0} = S_0), and a pair that has
/// already gone insufficient (condition (2) false, e.g. after a missed GPS
/// update) is recorded immediately as a best effort — this is how the one
/// adaptive-sampling insufficiency in the paper's residential study ends
/// up inside the PoA at all.
class AdaptiveSampler final : public SamplingPolicy {
 public:
  /// `local_zones` in the frame; `update_rate_hz` is the receiver rate R.
  AdaptiveSampler(geo::LocalFrame frame, std::vector<geo::Circle> local_zones,
                  double vmax_mps, double update_rate_hz);

  bool should_authenticate(const gps::GpsFix& fix) override;
  void on_recorded(const gps::GpsFix& fix) override;
  std::string name() const override { return "adaptive"; }

  /// Number of condition evaluations (for the cost model).
  std::uint64_t checks() const { return checks_; }

 private:
  geo::LocalFrame frame_;
  std::vector<geo::Circle> zones_;
  double vmax_;
  double update_period_;
  bool has_last_ = false;
  geo::Vec2 last_pos_{};
  double last_time_ = 0.0;
  std::uint64_t checks_ = 0;
};

/// Fix Rate Sampling at `rate_hz`: after each recorded sample the thread
/// sleeps for one period, then waits for the first fresh measurement — so
/// actual sample times snap to GPS update instants and the effective rate
/// can be slightly below the setting (Section VI-A1).
class FixedRateSampler final : public SamplingPolicy {
 public:
  FixedRateSampler(double rate_hz, double start_time);

  bool should_authenticate(const gps::GpsFix& fix) override;
  void on_recorded(const gps::GpsFix& fix) override;
  std::string name() const override;

 private:
  double period_;
  double next_wake_;
};

}  // namespace alidrone::core
