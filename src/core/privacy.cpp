#include "core/privacy.h"

#include <algorithm>

#include "crypto/chacha20.h"
#include "geo/ellipse.h"
#include "tee/sample_codec.h"

namespace alidrone::core {

namespace {
// One-time keys: each key encrypts exactly one sample, so a fixed nonce is
// safe (no key/nonce pair ever repeats).
const crypto::Bytes kZeroNonce(crypto::ChaCha20::kNonceSize, 0);
}  // namespace

PrivatePoaBundle build_private_poa(const ProofOfAlibi& plain,
                                   crypto::RandomSource& rng) {
  PrivatePoaBundle bundle;
  bundle.upload.drone_id = plain.drone_id;
  bundle.upload.hash = plain.hash;
  bundle.upload.entries.reserve(plain.samples.size());
  bundle.secrets.keys.reserve(plain.samples.size());
  bundle.secrets.sample_times.reserve(plain.samples.size());

  for (const SignedSample& s : plain.samples) {
    crypto::Bytes key = rng.bytes(crypto::ChaCha20::kKeySize);
    PrivatePoaEntry entry;
    entry.ciphertext = crypto::ChaCha20::crypt(key, kZeroNonce, s.sample);
    entry.signature = s.signature;
    bundle.upload.entries.push_back(std::move(entry));

    const auto fix = s.fix();
    bundle.secrets.sample_times.push_back(fix ? fix->unix_time : 0.0);
    bundle.secrets.keys.push_back(std::move(key));
  }
  return bundle;
}

std::optional<KeyReveal> make_reveal(const PrivatePoaSecrets& secrets,
                                     double incident_time) {
  const auto& times = secrets.sample_times;
  if (times.size() < 2) return std::nullopt;
  if (incident_time < times.front() || incident_time > times.back()) {
    return std::nullopt;
  }
  const auto it = std::upper_bound(times.begin(), times.end(), incident_time);
  std::size_t hi = static_cast<std::size_t>(it - times.begin());
  hi = std::clamp<std::size_t>(hi, 1, times.size() - 1);

  KeyReveal reveal;
  reveal.first_index = hi - 1;
  reveal.key_first = secrets.keys[hi - 1];
  reveal.key_second = secrets.keys[hi];
  return reveal;
}

PrivateAuditResult audit_reveal(const PrivatePoa& upload, const KeyReveal& reveal,
                                const crypto::RsaPublicKey& tee_key,
                                const geo::GeoZone& zone, double incident_time,
                                double vmax_mps) {
  PrivateAuditResult result;
  const std::size_t i = reveal.first_index;
  if (i + 1 >= upload.entries.size()) return result;
  if (reveal.key_first.size() != crypto::ChaCha20::kKeySize ||
      reveal.key_second.size() != crypto::ChaCha20::kKeySize) {
    return result;
  }

  const crypto::Bytes plain1 =
      crypto::ChaCha20::crypt(reveal.key_first, kZeroNonce, upload.entries[i].ciphertext);
  const crypto::Bytes plain2 = crypto::ChaCha20::crypt(reveal.key_second, kZeroNonce,
                                                       upload.entries[i + 1].ciphertext);

  if (!crypto::rsa_verify(tee_key, plain1, upload.entries[i].signature, upload.hash) ||
      !crypto::rsa_verify(tee_key, plain2, upload.entries[i + 1].signature,
                          upload.hash)) {
    return result;
  }
  result.signatures_valid = true;

  const auto fix1 = tee::decode_sample(plain1);
  const auto fix2 = tee::decode_sample(plain2);
  if (!fix1 || !fix2) return result;
  result.first = fix1;
  result.second = fix2;

  result.bracket_covers_incident =
      fix1->unix_time <= incident_time && incident_time <= fix2->unix_time;
  if (!result.bracket_covers_incident) return result;

  // Alibi for the accused zone: the travel ellipse of the revealed pair
  // must be disjoint from the zone (focal criterion, eq. (2)).
  const geo::LocalFrame frame(fix1->position);
  const geo::Circle local_zone = geo::to_local(frame, zone);
  const geo::TravelEllipse ellipse = geo::TravelEllipse::from_samples(
      frame.to_local(fix1->position), fix1->unix_time,
      frame.to_local(fix2->position), fix2->unix_time, vmax_mps);
  result.alibi_holds = ellipse.focal_test_disjoint(local_zone);
  return result;
}

}  // namespace alidrone::core
