// Preflight analysis — the planning-side counterpart of Algorithm 1.
//
// The paper's Fig. 3 observes that the minimum sampling rate producing a
// sufficient alibi makes the travel-range ellipse tangent to the NFZ: a
// pair of samples straddling distance D from a zone boundary must be no
// more than (D1 + D2)/v_max apart in time. Given a planned route and the
// zone list from the Auditor, this module computes, before takeoff:
//   - the closest approach to any zone,
//   - the peak sampling rate Algorithm 1 will need,
//   - whether the GPS hardware (and the TEE's signing throughput) can
//     deliver it, and
//   - an estimate of the number of PoA samples the flight will record.
// A drone can thus refuse a route its hardware cannot prove compliant —
// turning a runtime insufficiency (Fig. 8(c)) into a planning error.
#pragma once

#include <vector>

#include "geo/circle.h"
#include "resource/cost_model.h"
#include "sim/route.h"

namespace alidrone::core {

struct PreflightConfig {
  double vmax_mps = geo::kFaaMaxSpeedMps;
  double gps_rate_hz = 5.0;          ///< receiver capability
  std::size_t tee_key_bits = 1024;   ///< determines signing throughput
  resource::CostProfile cost_profile = resource::CostProfile::raspberry_pi3();
  double analysis_step_s = 0.2;      ///< route scan granularity
};

struct PreflightReport {
  /// Closest approach of the route to any zone boundary (meters);
  /// +infinity when no zones. Negative means the route enters a zone.
  double min_clearance_m = 0.0;
  /// Time of the closest approach (absolute, route clock).
  double min_clearance_time = 0.0;

  /// Peak instantaneous sampling rate Algorithm 1 needs along the route:
  /// v_max / (D1 + D2) evaluated pointwise (Hz). 0 when no zones.
  double required_peak_rate_hz = 0.0;

  /// Estimated total PoA samples for the whole flight (integral of the
  /// required rate, clamped to the GPS rate, with a floor of one sample).
  std::size_t estimated_samples = 0;

  bool route_avoids_zones = false;   ///< no point of the route inside a zone
  bool gps_rate_sufficient = false;  ///< receiver can deliver the peak rate
  bool tee_can_keep_up = false;      ///< signing cost fits the peak rate

  /// All four gates pass: fly it.
  bool feasible() const {
    return route_avoids_zones && gps_rate_sufficient && tee_can_keep_up;
  }
};

PreflightReport analyze_route(const sim::Route& route,
                              const std::vector<geo::Circle>& local_zones,
                              const PreflightConfig& config = {});

/// The tangency bound itself (paper Fig. 3): the longest admissible time
/// between two samples at boundary distances d1 and d2 from the nearest
/// zone, (d1 + d2)/v_max. Non-positive distances return 0: the drone is
/// touching the zone and no sampling interval can prove alibi.
double max_sample_interval_s(double d1_m, double d2_m, double vmax_mps);

}  // namespace alidrone::core
