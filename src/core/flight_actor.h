// FlightActor — the resumable flight state machine (ROADMAP item 5).
//
// run_flight and run_tesla_broadcast_flight were blocking functions: each
// monopolized its receiver, TEE and the caller's thread from takeoff to
// end_time, so one process could never interleave two flights — let alone
// the fleet-scale campaign. FlightActor is the same control flow cut at
// the GPS update grid: each step() performs exactly one receiver tick of
// the original loop (setup and teardown fold into the first/last ticks)
// and reports when it next wants to run, so a discrete-event scheduler
// (sim::FleetScheduler) can interleave hundreds of flights on one virtual
// clock. Network I/O is split out through an outbox: step() only enqueues
// ActorSends; flush() performs them against a Transport and routes each
// reply (or timeout) to its callback. Because the secure world never
// observes bus replies and each actor's requests drain in FIFO order
// before its next step, the request sequence an Auditor sees from one
// actor — and therefore every verdict, counter and audit event — is
// byte-identical to the original blocking loops. The legacy entry points
// are now thin single-actor drivers over this class.
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <string>

#include "core/flight.h"
#include "core/tee_invoke.h"
#include "core/tesla.h"
#include "crypto/random.h"
#include "gps/driver.h"
#include "net/transport.h"
#include "resilience/retry_policy.h"

namespace alidrone::core {

/// One deferred network request. A null reply pointer at the callback
/// means the request (or its response) was lost — net::TimeoutError on
/// the wire — mirroring the lossy-broadcast contract of the TESLA loop.
struct ActorSend {
  std::string endpoint;
  crypto::Bytes frame;
  std::function<void(const crypto::Bytes* reply)> on_reply;
};

/// Resumable flight: construct in standard (request/response PoA) or
/// TESLA broadcast mode, then repeatedly
///
///   while (!actor.done()) {
///     /* wait until the virtual clock reaches actor.next_wakeup() */
///     actor.step();
///     actor.flush(bus);   // or drain actor.outbox() yourself
///   }
///
/// The actor borrows its TEE, receiver and policy for its lifetime (the
/// same contract the blocking loops had) and is address-stable: outbox
/// callbacks capture `this`, so the actor is neither copyable nor movable.
class FlightActor {
 public:
  /// Optional post-flight submission for standard-mode actors: assemble
  /// the PoA from the FlightResult, run it through the attack hook, and
  /// submit it to "<auditor_prefix>.submit_poa" with capped-backoff
  /// retries on loss or retry-later backpressure (AuditorIngest's
  /// admission-queue sentinel). The verdict lands in submission_verdict().
  struct Submission {
    DroneId drone_id;
    crypto::HashAlgorithm hash = crypto::HashAlgorithm::kSha1;
    std::string auditor_prefix = "auditor";
    /// Attack hook: transforms the honest PoA before serialization
    /// (core/attacks strategies slot in here). Identity when empty.
    std::function<ProofOfAlibi(ProofOfAlibi)> mutate;
    resilience::RetryPolicy retry{};
    /// Seeds the backoff jitter stream (deterministic per actor).
    std::string backoff_seed = "flight-actor-backoff";
  };

  /// Standard mode: the run_flight loop, one receiver update per step.
  FlightActor(tee::DroneTee& tee, gps::GpsReceiverSim& receiver,
              SamplingPolicy& policy, FlightConfig config);

  /// TESLA broadcast mode: the run_tesla_broadcast_flight loop.
  FlightActor(tee::DroneTee& tee, gps::GpsReceiverSim& receiver,
              SamplingPolicy& policy, DroneId drone_id,
              TeslaFlightConfig config);

  FlightActor(const FlightActor&) = delete;
  FlightActor& operator=(const FlightActor&) = delete;

  /// Standard mode only; must be called before the first step().
  void set_submission(Submission submission);

  /// Run one slice of the flight (one receiver tick, one flush probe, or
  /// one submission attempt). Mode-setup failures throw exactly as the
  /// blocking loops did (std::invalid_argument / std::runtime_error from
  /// the first step of a standard flight). Precondition: !done().
  void step();

  /// Perform every queued send against `bus` in FIFO order, delivering
  /// each reply (nullptr on net::TimeoutError) to its callback.
  void flush(net::Transport& bus);

  /// Pending sends for schedulers that batch transport I/O themselves.
  std::deque<ActorSend>& outbox() { return outbox_; }

  bool done() const { return done_; }

  /// Virtual time at which the actor next wants step() — refreshed by
  /// step() and by reply callbacks (a retry backoff moves it), so read it
  /// after flush(). Meaningless once done().
  double next_wakeup() const { return wakeup_; }

  bool is_tesla() const { return is_tesla_; }
  const DroneId& drone_id() const { return drone_id_; }

  const FlightResult& flight() const { return flight_; }
  FlightResult take_flight() { return std::move(flight_); }
  const TeslaFlightResult& tesla() const { return tesla_; }
  TeslaFlightResult take_tesla() { return std::move(tesla_); }

  /// Verdict from the submission phase (standard mode with a Submission);
  /// empty if submission was disabled, exhausted its retries, or the
  /// reply was undecodable.
  const std::optional<PoaVerdict>& submission_verdict() const {
    return verdict_;
  }
  /// Submission attempts actually sent (retry-later and losses included).
  std::uint32_t submission_attempts() const { return submit_attempts_; }

 private:
  enum class State {
    kStandardSetup,
    kStandardSampling,
    kSubmitting,
    kTeslaInit,
    kTeslaSampling,
    kTeslaFlush,
    kTeslaFinalize,
    kDone,
  };

  // Standard mode.
  void step_standard_setup();
  void standard_tick();
  void advance_standard();
  void standard_finish();
  void begin_submission();
  void enqueue_submit_attempt();

  // TESLA mode.
  void step_tesla_init();
  void step_tesla_sampling();
  void step_tesla_flush();
  void step_tesla_finalize();
  void enter_tesla_flush();
  void enter_tesla_finalize();
  void feed_one_update(double at);
  void enqueue_try_announce();
  void disclose_up_to(std::uint64_t matured);
  std::uint64_t matured_at(double unix_time) const;
  void finish_now();

  tee::DroneTee& tee_;
  gps::GpsReceiverSim& receiver_;
  SamplingPolicy& policy_;

  const bool is_tesla_;
  FlightConfig config_{};
  TeslaFlightConfig tesla_config_{};
  DroneId drone_id_;

  State state_;
  bool done_ = false;
  double wakeup_ = 0.0;
  double now_ = 0.0;     ///< float-accumulated loop time, as in the loops
  double period_ = 0.0;
  double start_ = 0.0;

  std::deque<ActorSend> outbox_;

  // Standard-mode flight state.
  FlightResult flight_;
  gps::GpsDriver normal_world_driver_;
  std::uint64_t last_seq_ = 0;
  std::optional<GpsDropAuditScope> drop_scope_;
  std::optional<crypto::SecureRandom> os_entropy_;
  crypto::RandomSource* encryption_rng_ = nullptr;
  CostMeter cost_;
  tee::SamplerCommand sample_command_{};

  // TESLA-mode flight state.
  TeslaFlightResult tesla_;
  std::uint32_t chain_length_ = 0;
  std::uint64_t interval_us_ = 0;
  std::optional<tee::TeslaCommit> commit_;
  crypto::Bytes announce_frame_;
  std::uint64_t last_disclosed_ = 0;
  double last_fix_time_ = 0.0;
  std::uint64_t flush_target_ = 0;
  std::size_t flush_i_ = 0;
  crypto::Bytes finalize_frame_;
  std::size_t finalize_attempts_ = 0;
  bool finalize_pending_refeed_ = false;

  // Submission state.
  std::optional<Submission> submission_;
  crypto::Bytes submit_frame_;
  std::optional<crypto::DeterministicRandom> backoff_rng_;
  std::uint32_t submit_attempts_ = 0;
  std::optional<PoaVerdict> verdict_;
};

}  // namespace alidrone::core
