// Shared drone-side TEE invocation plumbing for the flight loops.
//
// Before the FlightActor refactor, run_flight and
// run_tesla_broadcast_flight each carried a private copy of the bounded
// kBusy retry loop, and only the standard loop wired up CPU accounting
// and the kGpsFixDropped audit trail. This header is the one home for
// all three concerns, used by core::FlightActor for every flight mode:
//
//   invoke_sampler_with_retry  world switch with the bounded transient-
//                              retry budget (a persistently busy secure
//                              world surfaces as a tee_failure, never a
//                              hang);
//   CostMeter                  null-safe CPU accounting (Table II) — a
//                              flight without an accountant charges
//                              nothing and branches nowhere else;
//   GpsDropAuditScope          audit-trail the secure driver's evidence
//                              loss: one onset event when the pending-fix
//                              queue first overflows, one end-of-flight
//                              summary, and guaranteed listener detach.
#pragma once

#include <cstdint>
#include <span>

#include "core/audit_log.h"
#include "resource/cost_model.h"
#include "tee/gps_sampler_ta.h"
#include "tee/secure_monitor.h"

namespace alidrone::core {

/// Extra invocations allowed per command to ride out transient (kBusy)
/// world-switch failures. Bounded: a persistently busy secure world must
/// surface as a tee_failure, not hang the flight loop.
inline constexpr int kMaxTransientTeeRetries = 3;

/// Invoke one sampler command, retrying kBusy up to the transient budget.
/// When `retries` is non-null each extra invocation increments it (the
/// FlightResult::tee_retries accounting; the TESLA loop passes null).
tee::InvokeResult invoke_sampler_with_retry(
    tee::DroneTee& tee, tee::SamplerCommand command,
    std::span<const crypto::Bytes> params = {},
    std::uint64_t* retries = nullptr);

/// Null-safe wrapper over the optional CPU accountant: every charge site
/// collapses to one call instead of an `if (cpu != nullptr)` ladder.
struct CostMeter {
  resource::CpuAccountant* cpu = nullptr;
  resource::CostProfile profile{};

  bool enabled() const { return cpu != nullptr; }
  void advance_wall(double seconds) const {
    if (cpu != nullptr) cpu->advance_wall(seconds);
  }
  void charge(resource::Op op) const {
    if (cpu != nullptr) cpu->charge(op, profile);
  }
};

/// Arms the TEE's GPS-drop listener for the duration of one flight and
/// records the audit evidence of secure-world fix loss. Overflows are
/// frequent on the per-sample path (it never drains the pending queue),
/// so instead of one event per dropped fix the flight records the onset
/// plus an end-of-flight summary. The listener borrows `audit`, so the
/// destructor always detaches it; finish() is idempotent.
class GpsDropAuditScope {
 public:
  /// A null `audit` disables the wiring entirely (nothing is armed).
  GpsDropAuditScope(tee::DroneTee& tee, AuditLog* audit);
  ~GpsDropAuditScope();

  GpsDropAuditScope(const GpsDropAuditScope&) = delete;
  GpsDropAuditScope& operator=(const GpsDropAuditScope&) = delete;

  /// Record the flight-summary event (total fixes dropped since the scope
  /// was armed) stamped at `end_time`, and detach the listener.
  void finish(double end_time);

 private:
  tee::DroneTee& tee_;
  AuditLog* audit_;
  std::uint64_t dropped_at_start_ = 0;
  bool armed_ = false;
  bool onset_logged_ = false;
};

}  // namespace alidrone::core
