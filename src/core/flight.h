// FlightSession — the normal-world Adapter's main loop (paper Fig. 4).
//
// Drives one flight end to end: the GPS receiver emits NMEA at its update
// rate; every sentence reaches both the secure-world driver (the hardware
// UART is wired into the TEE) and a normal-world driver the Adapter polls
// with ReadGPS(). On each fresh fix the sampling policy decides whether to
// cross into the TEE for GetGPSAuth(); authenticated samples are appended
// to the PoA (optionally RSAES-encrypted for the Auditor) and all costs
// are charged to the CPU accountant, which is how Table II is measured.
#pragma once

#include <optional>
#include <vector>

#include "core/audit_log.h"
#include "core/poa.h"
#include "core/sampler.h"
#include "crypto/rsa.h"
#include "gps/driver.h"
#include "gps/receiver_sim.h"
#include "resource/cost_model.h"
#include "tee/secure_monitor.h"

namespace alidrone::core {

/// One row of the flight's time series, recorded per GPS update — the raw
/// material for Fig. 6 and Fig. 8.
struct FlightLogEntry {
  double time = 0.0;                 ///< unix time of the update
  double nearest_zone_distance = 0.0;///< boundary distance, meters
  bool recorded = false;             ///< did this update enter the PoA?
  std::size_t cumulative_samples = 0;
};

struct FlightResult {
  std::vector<SignedSample> poa_samples;
  std::vector<FlightLogEntry> log;
  std::uint64_t gps_updates = 0;
  std::uint64_t authentications = 0;
  std::uint64_t tee_failures = 0;    ///< GetGPSAuth returned non-success
  /// Extra invocations spent recovering from transient (kBusy) world-
  /// switch failures; a fault only lands in tee_failures once the bounded
  /// retry budget is exhausted.
  std::uint64_t tee_retries = 0;
  /// kHmacSession: the TEE's encrypted session key + signature over it.
  crypto::Bytes session_key_ciphertext;
  crypto::Bytes session_key_signature;
  /// kBatchSignature: one signature over the concatenated trace.
  crypto::Bytes batch_signature;
};

struct FlightConfig {
  double end_time = 0.0;             ///< stop once the receiver clock passes this
  /// How samples are authenticated (Section IV-C2 baseline or the
  /// Section VII-A1 alternatives). kHmacSession requires
  /// auditor_encryption_key (the session key is wrapped for the Auditor).
  AuthMode auth_mode = AuthMode::kRsaPerSample;
  /// Encrypt each recorded sample for this key (Section V-C); plaintext
  /// PoA when absent.
  std::optional<crypto::RsaPublicKey> auditor_encryption_key;
  /// Randomness for the encryption padding. OS entropy when null;
  /// replicated-ledger tests inject a DeterministicRandom so a recorded
  /// flight replays byte-identically. Borrowed for the flight only.
  crypto::RandomSource* encryption_rng = nullptr;
  /// Cost accounting (Table II); disabled when cpu is null.
  resource::CpuAccountant* cpu = nullptr;
  resource::CostProfile cost_profile{};
  /// When set, drone-side incidents (secure GPS queue overflow dropping a
  /// fix) are recorded here as kGpsFixDropped events. Borrowed for the
  /// duration of the flight only.
  AuditLog* audit = nullptr;
  std::vector<geo::Circle> local_zones;  ///< for the distance log
  geo::LocalFrame frame{geo::GeoPoint{0.0, 0.0}};
};

/// Run a full flight. The receiver is advanced from its current clock to
/// config.end_time; the policy decides which updates become PoA samples.
/// Implemented as a thin driver over core::FlightActor (flight_actor.h),
/// which exposes the same loop in resumable one-tick steps.
FlightResult run_flight(tee::DroneTee& tee, gps::GpsReceiverSim& receiver,
                        SamplingPolicy& policy, const FlightConfig& config);

/// Package a flight's authenticated trace as the drone's ProofOfAlibi —
/// the submission-side assembly DroneClient::fly and the fleet campaign
/// share (mode, hash, encryption flag and signatures all come from the
/// flight configuration and result).
ProofOfAlibi assemble_poa(const DroneId& drone_id, const FlightConfig& config,
                          crypto::HashAlgorithm hash,
                          const FlightResult& flight);

}  // namespace alidrone::core
