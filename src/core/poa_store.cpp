#include "core/poa_store.h"

#include <algorithm>
#include <charconv>
#include <fstream>

#include "crypto/sha256.h"
#include "ledger/crc32.h"
#include "net/codec.h"

namespace alidrone::core {

namespace {
constexpr std::uint32_t kMagicV1 = 0xA11D0A01;  // "AliD PoA v1" (no CRC)
constexpr std::uint32_t kMagicV2 = 0xA11D0A02;  // v2: u32 crc32 after magic
constexpr const char* kExtension = ".poa";

/// Sequence number out of "poa-<seq>.poa"; nullopt for foreign names.
std::optional<std::uint64_t> filename_sequence(const std::string& name) {
  constexpr std::string_view kPrefix = "poa-";
  if (name.size() <= kPrefix.size() || name.compare(0, kPrefix.size(), kPrefix) != 0) {
    return std::nullopt;
  }
  const char* begin = name.data() + kPrefix.size();
  const char* end = name.data() + name.size() - 4;  // strip ".poa"
  if (begin >= end) return std::nullopt;
  std::uint64_t seq = 0;
  const auto [ptr, ec] = std::from_chars(begin, end, seq);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  return seq;
}
}  // namespace

PoaStore::PoaStore(std::filesystem::path directory,
                   obs::MetricsRegistry* metrics)
    : directory_(std::move(directory)) {
  obs::MetricsRegistry& reg =
      metrics != nullptr ? *metrics : obs::MetricsRegistry::global();
  recovered_tail_gauge_ =
      &reg.gauge(reg.instance_scope("core.poa_store") + ".recovered_tail");
  if (std::filesystem::exists(directory_)) {
    if (!std::filesystem::is_directory(directory_)) {
      throw std::runtime_error("PoaStore: not a directory: " + directory_.string());
    }
  } else {
    std::filesystem::create_directories(directory_);
  }
  // One scan: continue sequence numbers after any existing files and
  // build the per-drone index. Unreadable files stay out of the index
  // (they are never loaded or expired, exactly as before) — except the
  // highest-sequence file when it alone is unreadable: that is the
  // signature of a crash mid-save, and the torn file is dropped rather
  // than reported as corruption.
  struct FailedFile {
    std::filesystem::path path;
    std::optional<std::uint64_t> seq;
  };
  std::vector<FailedFile> failed;
  std::optional<std::uint64_t> max_seq;
  for (const auto& entry : std::filesystem::directory_iterator(directory_)) {
    if (entry.path().extension() != kExtension) continue;
    const auto seq = filename_sequence(entry.path().filename().string());
    if (seq && (!max_seq || *seq > *max_seq)) max_seq = *seq;
    if (const auto stored = read_file(entry.path(), /*count_corrupt=*/false)) {
      IndexShard& shard = index_[index_shard_of(stored->drone_id)];
      shard.entries[stored->drone_id].push_back(
          {entry.path().filename().string(), stored->submission_time});
    } else {
      failed.push_back({entry.path(), seq});
    }
  }
  if (max_seq) {
    next_sequence_.store(*max_seq + 1, std::memory_order_relaxed);
  }
  if (failed.size() == 1 && failed[0].seq && max_seq &&
      *failed[0].seq == *max_seq) {
    std::error_code ec;
    std::filesystem::remove(failed[0].path, ec);
    recovered_tail_ = 1;
  } else {
    corrupt_.fetch_add(failed.size(), std::memory_order_relaxed);
  }
  recovered_tail_gauge_->set(static_cast<double>(recovered_tail_));
  // Deterministic order within each drone regardless of scan order.
  for (IndexShard& shard : index_) {
    for (auto& [id, list] : shard.entries) {
      std::sort(list.begin(), list.end(),
                [](const IndexEntry& a, const IndexEntry& b) {
                  return a.submission_time != b.submission_time
                             ? a.submission_time < b.submission_time
                             : a.filename < b.filename;
                });
    }
  }
}

void PoaStore::attach_ledger(std::shared_ptr<ledger::Ledger> ledger) {
  const std::lock_guard<std::mutex> lock(ledger_mu_);
  ledger_ = std::move(ledger);
}

std::size_t PoaStore::index_shard_of(std::string_view drone_id) const {
  std::uint64_t x = 0xcbf29ce484222325ull;
  for (const char c : drone_id) {
    x ^= static_cast<unsigned char>(c);
    x *= 0x100000001b3ull;
  }
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return static_cast<std::size_t>((x ^ (x >> 31)) % kIndexShards);
}

std::filesystem::path PoaStore::save(const DroneId& drone_id,
                                     double submission_time,
                                     const ProofOfAlibi& poa) {
  const crypto::Bytes poa_bytes = poa.serialize();
  net::Writer body;
  body.reserve(net::Writer::field_size(drone_id.size()) + 8 +
               net::Writer::field_size(poa_bytes.size()));
  body.str(drone_id);
  body.f64(submission_time);
  body.bytes(poa_bytes);
  const crypto::Bytes body_bytes = std::move(body).take();

  // v2 layout: u32 magic, u32 crc32(body), body — the CRC is what lets a
  // reopening store tell a crashed (torn) save from honest data.
  crypto::Bytes data;
  data.reserve(8 + body_bytes.size());
  const std::uint32_t crc = ledger::crc32(body_bytes);
  for (int i = 0; i < 4; ++i) {
    data.push_back(static_cast<std::uint8_t>(kMagicV2 >> (8 * i)));
  }
  for (int i = 0; i < 4; ++i) {
    data.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  }
  data.insert(data.end(), body_bytes.begin(), body_bytes.end());

  // Filename avoids trusting the drone id's characters.
  const std::string filename =
      "poa-" +
      std::to_string(next_sequence_.fetch_add(1, std::memory_order_relaxed)) +
      kExtension;
  const std::filesystem::path path = directory_ / filename;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("PoaStore: cannot write " + path.string());
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  out.flush();
  if (!out) throw std::runtime_error("PoaStore: short write to " + path.string());

  {
    const std::lock_guard<std::mutex> lock(ledger_mu_);
    if (ledger_ != nullptr) {
      const crypto::Sha256::Digest digest = crypto::Sha256::hash(poa_bytes);
      net::Writer anchor;
      anchor.str(drone_id);
      anchor.f64(submission_time);
      anchor.bytes(crypto::Bytes(digest.begin(), digest.end()));
      const crypto::Bytes anchor_bytes = std::move(anchor).take();
      ledger_->append(ledger::EntryKind::kPoaAnchor, submission_time,
                      anchor_bytes);
    }
  }

  {
    IndexShard& shard = index_[index_shard_of(drone_id)];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto& list = shard.entries[drone_id];
    IndexEntry entry{filename, submission_time};
    // Keep the per-drone list sorted by (time, filename); submissions
    // normally arrive in time order, so this is an append.
    const auto pos = std::upper_bound(
        list.begin(), list.end(), entry,
        [](const IndexEntry& a, const IndexEntry& b) {
          return a.submission_time != b.submission_time
                     ? a.submission_time < b.submission_time
                     : a.filename < b.filename;
        });
    list.insert(pos, std::move(entry));
  }
  return path;
}

std::optional<PoaStore::StoredPoa> PoaStore::read_file(
    const std::filesystem::path& path, bool count_corrupt) const {
  const auto fail = [&]() -> std::optional<StoredPoa> {
    if (count_corrupt) corrupt_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  };
  std::ifstream in(path, std::ios::binary);
  if (!in) return fail();
  crypto::Bytes data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());

  net::Reader r(data);
  const auto magic = r.u32();
  if (!magic || (*magic != kMagicV1 && *magic != kMagicV2)) return fail();
  if (*magic == kMagicV2) {
    // v2: verify the body CRC before trusting any field — a torn or
    // bit-flipped file fails here instead of half-parsing.
    const auto crc = r.u32();
    if (!crc || data.size() < 8 ||
        ledger::crc32({data.data() + 8, data.size() - 8}) != *crc) {
      return fail();
    }
  }
  const auto drone_id = r.str();
  const auto time = r.f64();
  const auto poa_bytes = r.bytes_view();
  if (!drone_id || !time || !poa_bytes || !r.at_end()) return fail();
  const auto poa = ProofOfAlibi::parse(*poa_bytes);
  if (!poa) return fail();
  return StoredPoa{*drone_id, *time, *poa};
}

std::vector<PoaStore::StoredPoa> PoaStore::load_all() const {
  std::vector<StoredPoa> out;
  for (const auto& entry : std::filesystem::directory_iterator(directory_)) {
    if (entry.path().extension() != kExtension) continue;
    if (auto stored = read_file(entry.path())) out.push_back(std::move(*stored));
  }
  std::sort(out.begin(), out.end(), [](const StoredPoa& a, const StoredPoa& b) {
    return a.submission_time < b.submission_time;
  });
  return out;
}

std::vector<PoaStore::StoredPoa> PoaStore::load_for_drone(
    const DroneId& drone_id) const {
  // Copy the (small) entry list under the lock, then do file I/O outside.
  std::vector<IndexEntry> entries;
  {
    const IndexShard& shard = index_[index_shard_of(drone_id)];
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.entries.find(drone_id);
    if (it != shard.entries.end()) entries = it->second;
  }
  std::vector<StoredPoa> out;
  out.reserve(entries.size());
  for (const IndexEntry& entry : entries) {
    if (auto stored = read_file(directory_ / entry.filename)) {
      out.push_back(std::move(*stored));
    }
  }
  return out;  // index order is already (time, filename)
}

std::size_t PoaStore::expire_before(double cutoff_time) {
  std::size_t deleted = 0;
  for (IndexShard& shard : index_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.entries.begin(); it != shard.entries.end();) {
      auto& list = it->second;
      std::erase_if(list, [&](const IndexEntry& entry) {
        if (entry.submission_time >= cutoff_time) return false;
        if (std::filesystem::remove(directory_ / entry.filename)) ++deleted;
        return true;
      });
      it = list.empty() ? shard.entries.erase(it) : std::next(it);
    }
  }
  return deleted;
}

std::size_t PoaStore::count() const {
  std::size_t n = 0;
  for (const auto& entry : std::filesystem::directory_iterator(directory_)) {
    if (entry.path().extension() == kExtension) ++n;
  }
  return n;
}

}  // namespace alidrone::core
