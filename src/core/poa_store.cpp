#include "core/poa_store.h"

#include <algorithm>
#include <fstream>

#include "net/codec.h"

namespace alidrone::core {

namespace {
constexpr std::uint32_t kMagic = 0xA11D0A01;  // "AliD PoA v1"
constexpr const char* kExtension = ".poa";
}  // namespace

PoaStore::PoaStore(std::filesystem::path directory)
    : directory_(std::move(directory)) {
  if (std::filesystem::exists(directory_)) {
    if (!std::filesystem::is_directory(directory_)) {
      throw std::runtime_error("PoaStore: not a directory: " + directory_.string());
    }
  } else {
    std::filesystem::create_directories(directory_);
  }
  // One scan: continue sequence numbers after any existing files and
  // build the per-drone index. Unreadable files stay out of the index
  // (they are never loaded or expired, exactly as before).
  for (const auto& entry : std::filesystem::directory_iterator(directory_)) {
    if (entry.path().extension() != kExtension) continue;
    next_sequence_.fetch_add(1, std::memory_order_relaxed);
    if (const auto stored = read_file(entry.path())) {
      IndexShard& shard = index_[index_shard_of(stored->drone_id)];
      shard.entries[stored->drone_id].push_back(
          {entry.path().filename().string(), stored->submission_time});
    }
  }
  // Deterministic order within each drone regardless of scan order.
  for (IndexShard& shard : index_) {
    for (auto& [id, list] : shard.entries) {
      std::sort(list.begin(), list.end(),
                [](const IndexEntry& a, const IndexEntry& b) {
                  return a.submission_time != b.submission_time
                             ? a.submission_time < b.submission_time
                             : a.filename < b.filename;
                });
    }
  }
}

std::size_t PoaStore::index_shard_of(std::string_view drone_id) const {
  std::uint64_t x = 0xcbf29ce484222325ull;
  for (const char c : drone_id) {
    x ^= static_cast<unsigned char>(c);
    x *= 0x100000001b3ull;
  }
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return static_cast<std::size_t>((x ^ (x >> 31)) % kIndexShards);
}

std::filesystem::path PoaStore::save(const DroneId& drone_id,
                                     double submission_time,
                                     const ProofOfAlibi& poa) {
  const crypto::Bytes poa_bytes = poa.serialize();
  net::Writer w;
  w.reserve(4 + net::Writer::field_size(drone_id.size()) + 8 +
            net::Writer::field_size(poa_bytes.size()));
  w.u32(kMagic);
  w.str(drone_id);
  w.f64(submission_time);
  w.bytes(poa_bytes);

  // Filename avoids trusting the drone id's characters.
  const std::string filename =
      "poa-" +
      std::to_string(next_sequence_.fetch_add(1, std::memory_order_relaxed)) +
      kExtension;
  const std::filesystem::path path = directory_ / filename;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("PoaStore: cannot write " + path.string());
  const crypto::Bytes& data = w.data();
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) throw std::runtime_error("PoaStore: short write to " + path.string());

  {
    IndexShard& shard = index_[index_shard_of(drone_id)];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto& list = shard.entries[drone_id];
    IndexEntry entry{filename, submission_time};
    // Keep the per-drone list sorted by (time, filename); submissions
    // normally arrive in time order, so this is an append.
    const auto pos = std::upper_bound(
        list.begin(), list.end(), entry,
        [](const IndexEntry& a, const IndexEntry& b) {
          return a.submission_time != b.submission_time
                     ? a.submission_time < b.submission_time
                     : a.filename < b.filename;
        });
    list.insert(pos, std::move(entry));
  }
  return path;
}

std::optional<PoaStore::StoredPoa> PoaStore::read_file(
    const std::filesystem::path& path) const {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    corrupt_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  crypto::Bytes data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());

  net::Reader r(data);
  const auto magic = r.u32();
  const auto drone_id = r.str();
  const auto time = r.f64();
  const auto poa_bytes = r.bytes_view();
  if (!magic || *magic != kMagic || !drone_id || !time || !poa_bytes ||
      !r.at_end()) {
    corrupt_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  const auto poa = ProofOfAlibi::parse(*poa_bytes);
  if (!poa) {
    corrupt_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  return StoredPoa{*drone_id, *time, *poa};
}

std::vector<PoaStore::StoredPoa> PoaStore::load_all() const {
  std::vector<StoredPoa> out;
  for (const auto& entry : std::filesystem::directory_iterator(directory_)) {
    if (entry.path().extension() != kExtension) continue;
    if (auto stored = read_file(entry.path())) out.push_back(std::move(*stored));
  }
  std::sort(out.begin(), out.end(), [](const StoredPoa& a, const StoredPoa& b) {
    return a.submission_time < b.submission_time;
  });
  return out;
}

std::vector<PoaStore::StoredPoa> PoaStore::load_for_drone(
    const DroneId& drone_id) const {
  // Copy the (small) entry list under the lock, then do file I/O outside.
  std::vector<IndexEntry> entries;
  {
    const IndexShard& shard = index_[index_shard_of(drone_id)];
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.entries.find(drone_id);
    if (it != shard.entries.end()) entries = it->second;
  }
  std::vector<StoredPoa> out;
  out.reserve(entries.size());
  for (const IndexEntry& entry : entries) {
    if (auto stored = read_file(directory_ / entry.filename)) {
      out.push_back(std::move(*stored));
    }
  }
  return out;  // index order is already (time, filename)
}

std::size_t PoaStore::expire_before(double cutoff_time) {
  std::size_t deleted = 0;
  for (IndexShard& shard : index_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.entries.begin(); it != shard.entries.end();) {
      auto& list = it->second;
      std::erase_if(list, [&](const IndexEntry& entry) {
        if (entry.submission_time >= cutoff_time) return false;
        if (std::filesystem::remove(directory_ / entry.filename)) ++deleted;
        return true;
      });
      it = list.empty() ? shard.entries.erase(it) : std::next(it);
    }
  }
  return deleted;
}

std::size_t PoaStore::count() const {
  std::size_t n = 0;
  for (const auto& entry : std::filesystem::directory_iterator(directory_)) {
    if (entry.path().extension() == kExtension) ++n;
  }
  return n;
}

}  // namespace alidrone::core
