#include "core/poa_store.h"

#include <algorithm>
#include <fstream>

#include "net/codec.h"

namespace alidrone::core {

namespace {
constexpr std::uint32_t kMagic = 0xA11D0A01;  // "AliD PoA v1"
constexpr const char* kExtension = ".poa";
}  // namespace

PoaStore::PoaStore(std::filesystem::path directory)
    : directory_(std::move(directory)) {
  if (std::filesystem::exists(directory_)) {
    if (!std::filesystem::is_directory(directory_)) {
      throw std::runtime_error("PoaStore: not a directory: " + directory_.string());
    }
  } else {
    std::filesystem::create_directories(directory_);
  }
  // Continue sequence numbers after any existing files.
  for (const auto& entry : std::filesystem::directory_iterator(directory_)) {
    if (entry.path().extension() == kExtension) ++next_sequence_;
  }
}

std::filesystem::path PoaStore::save(const DroneId& drone_id,
                                     double submission_time,
                                     const ProofOfAlibi& poa) {
  net::Writer w;
  w.u32(kMagic);
  w.str(drone_id);
  w.f64(submission_time);
  w.bytes(poa.serialize());

  // Filename avoids trusting the drone id's characters.
  const std::filesystem::path path =
      directory_ / ("poa-" + std::to_string(next_sequence_++) + kExtension);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("PoaStore: cannot write " + path.string());
  const crypto::Bytes& data = w.data();
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) throw std::runtime_error("PoaStore: short write to " + path.string());
  return path;
}

std::optional<PoaStore::StoredPoa> PoaStore::read_file(
    const std::filesystem::path& path) const {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ++corrupt_;
    return std::nullopt;
  }
  crypto::Bytes data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());

  net::Reader r(data);
  const auto magic = r.u32();
  const auto drone_id = r.str();
  const auto time = r.f64();
  const auto poa_bytes = r.bytes();
  if (!magic || *magic != kMagic || !drone_id || !time || !poa_bytes ||
      !r.at_end()) {
    ++corrupt_;
    return std::nullopt;
  }
  const auto poa = ProofOfAlibi::parse(*poa_bytes);
  if (!poa) {
    ++corrupt_;
    return std::nullopt;
  }
  return StoredPoa{*drone_id, *time, *poa};
}

std::vector<PoaStore::StoredPoa> PoaStore::load_all() const {
  std::vector<StoredPoa> out;
  for (const auto& entry : std::filesystem::directory_iterator(directory_)) {
    if (entry.path().extension() != kExtension) continue;
    if (auto stored = read_file(entry.path())) out.push_back(std::move(*stored));
  }
  std::sort(out.begin(), out.end(), [](const StoredPoa& a, const StoredPoa& b) {
    return a.submission_time < b.submission_time;
  });
  return out;
}

std::vector<PoaStore::StoredPoa> PoaStore::load_for_drone(
    const DroneId& drone_id) const {
  std::vector<StoredPoa> all = load_all();
  std::erase_if(all, [&](const StoredPoa& s) { return s.drone_id != drone_id; });
  return all;
}

std::size_t PoaStore::expire_before(double cutoff_time) {
  std::size_t deleted = 0;
  for (const auto& entry : std::filesystem::directory_iterator(directory_)) {
    if (entry.path().extension() != kExtension) continue;
    const auto stored = read_file(entry.path());
    if (stored && stored->submission_time < cutoff_time) {
      std::filesystem::remove(entry.path());
      ++deleted;
    }
  }
  return deleted;
}

std::size_t PoaStore::count() const {
  std::size_t n = 0;
  for (const auto& entry : std::filesystem::directory_iterator(directory_)) {
    if (entry.path().extension() == kExtension) ++n;
  }
  return n;
}

}  // namespace alidrone::core
