// Privacy-preserving verification (paper Section VII-B3).
//
// An honest-but-curious Auditor should not learn the drone's whole
// trajectory. The operator encrypts every PoA sample with its own one-time
// key before upload; the TEE signatures (made over the plaintext samples)
// ride alongside. When a Zone Owner files an accusation, the operator
// reveals only the keys of the two samples bracketing the incident time;
// the Auditor decrypts exactly those, checks the TEE signatures, and
// decides the alibi for the accused zone — learning two points of the
// trajectory instead of all of it.
#pragma once

#include <optional>
#include <vector>

#include "core/poa.h"
#include "core/protocol_types.h"
#include "crypto/random.h"
#include "crypto/rsa.h"

namespace alidrone::core {

/// One uploaded entry: ChaCha20 ciphertext of the canonical sample bytes,
/// plus the TEE signature over the plaintext.
struct PrivatePoaEntry {
  crypto::Bytes ciphertext;
  crypto::Bytes signature;
};

struct PrivatePoa {
  DroneId drone_id;
  crypto::HashAlgorithm hash = crypto::HashAlgorithm::kSha1;
  std::vector<PrivatePoaEntry> entries;
};

/// The operator's retained secrets: one 32-byte key per entry plus the
/// plaintext timestamps (needed to find which samples bracket an incident).
struct PrivatePoaSecrets {
  std::vector<crypto::Bytes> keys;
  std::vector<double> sample_times;
};

/// Encrypt a plaintext PoA (mode kRsaPerSample, not already encrypted)
/// sample-by-sample with fresh one-time keys.
struct PrivatePoaBundle {
  PrivatePoa upload;
  PrivatePoaSecrets secrets;
};
PrivatePoaBundle build_private_poa(const ProofOfAlibi& plain,
                                   crypto::RandomSource& rng);

/// What the operator sends after an accusation: the bracketing indices and
/// their keys.
struct KeyReveal {
  std::size_t first_index = 0;   ///< i: reveal entries i and i+1
  crypto::Bytes key_first;
  crypto::Bytes key_second;
};

/// Operator side: find the sample pair bracketing `incident_time` and
/// produce the reveal. nullopt when the incident is outside the flight.
std::optional<KeyReveal> make_reveal(const PrivatePoaSecrets& secrets,
                                     double incident_time);

/// Auditor side: decrypt the two revealed entries, verify their TEE
/// signatures against T+, and evaluate the alibi for `zone`.
struct PrivateAuditResult {
  bool signatures_valid = false;
  bool bracket_covers_incident = false;
  bool alibi_holds = false;
  std::optional<gps::GpsFix> first;   ///< the two (and only two) learned points
  std::optional<gps::GpsFix> second;
};
PrivateAuditResult audit_reveal(const PrivatePoa& upload, const KeyReveal& reveal,
                                const crypto::RsaPublicKey& tee_key,
                                const geo::GeoZone& zone, double incident_time,
                                double vmax_mps);

}  // namespace alidrone::core
