#include "core/streaming.h"

#include <limits>

#include "net/codec.h"
#include "tee/sample_codec.h"

namespace alidrone::core {

StreamingVerifier::StreamingVerifier(crypto::RsaPublicKey tee_key,
                                     crypto::HashAlgorithm hash,
                                     std::vector<geo::GeoZone> zones,
                                     double vmax_mps)
    : tee_key_(std::move(tee_key)),
      hash_(hash),
      zones_(std::move(zones)),
      vmax_(vmax_mps) {}

StreamingVerifier::SampleStatus StreamingVerifier::ingest(
    const SignedSample& sample) {
  if (!crypto::rsa_verify(tee_key_, sample.sample, sample.signature, hash_)) {
    return SampleStatus::kBadSignature;
  }
  const auto fix = tee::decode_sample(sample.sample);
  if (!fix) return SampleStatus::kMalformed;
  if (last_time_ && fix->unix_time < *last_time_) return SampleStatus::kOutOfOrder;

  // Lazily anchor the planar frame at the first sample.
  if (!frame_) {
    frame_.emplace(fix->position);
    local_zones_.clear();
    local_zones_.reserve(zones_.size());
    for (const geo::GeoZone& z : zones_) {
      local_zones_.push_back(geo::to_local(*frame_, z));
    }
  }
  const geo::Vec2 pos = frame_->to_local(fix->position);
  ++accepted_;

  SampleStatus status = SampleStatus::kAccepted;
  if (nearest_zone_boundary_distance(pos, local_zones_) < 0.0) {
    ++violations_;
    status = SampleStatus::kInsideZone;
  } else if (last_pos_ && last_time_ && !local_zones_.empty()) {
    const double allowed = vmax_ * (fix->unix_time - *last_time_);
    double min_focal = std::numeric_limits<double>::infinity();
    for (const geo::Circle& z : local_zones_) {
      min_focal = std::min(min_focal,
                           z.boundary_distance(*last_pos_) + z.boundary_distance(pos));
    }
    if (min_focal < allowed) {
      ++violations_;
      status = SampleStatus::kInsufficientPair;
    }
  }

  last_pos_ = pos;
  last_time_ = fix->unix_time;
  return status;
}

StreamingUplink::StreamingUplink(net::Transport& bus, std::string endpoint,
                                 resource::RadioModel radio)
    : bus_(bus), endpoint_(std::move(endpoint)), radio_(radio) {}

crypto::Bytes StreamingUplink::encode(const SignedSample& sample) {
  net::Writer w;
  w.bytes(sample.sample);
  w.bytes(sample.signature);
  return std::move(w).take();
}

bool StreamingUplink::send(const SignedSample& sample) {
  queue_.push_back(sample);
  return flush();
}

bool StreamingUplink::flush() {
  // One transmission carries everything queued (piggy-backed retries).
  if (queue_.empty()) return true;
  net::Writer w;
  w.u32(static_cast<std::uint32_t>(queue_.size()));
  for (const SignedSample& s : queue_) {
    const crypto::Bytes encoded = encode(s);
    w.bytes(encoded);
  }
  const crypto::Bytes payload = std::move(w).take();

  // Energy is spent whether or not the packet arrives.
  energy_j_ += radio_.transmit_energy_j(payload.size());
  ++transmissions_;
  try {
    bus_.request(endpoint_, payload);
  } catch (const net::TimeoutError&) {
    return false;  // keep queued for the next attempt
  }
  queue_.clear();
  return true;
}

double StreamingUplink::batch_upload_energy_j(std::size_t n,
                                              std::size_t sample_bytes,
                                              std::size_t signature_bytes) const {
  // One transmission for the whole flight, sized like the real PoA body.
  const std::size_t payload = n * (sample_bytes + signature_bytes + 8) + 64;
  return radio_.transmit_energy_j(payload);
}

}  // namespace alidrone::core
