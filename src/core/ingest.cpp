#include "core/ingest.h"

#include <algorithm>
#include <map>
#include <string_view>
#include <utility>

#include "crypto/sha256.h"
#include "runtime/parallel_for.h"

namespace alidrone::core {

namespace {
obs::MetricsRegistry& registry_for(const Auditor& auditor) {
  return auditor.params().metrics != nullptr ? *auditor.params().metrics
                                             : obs::MetricsRegistry::global();
}
}  // namespace

AuditorIngest::AuditorIngest(Auditor& auditor)
    : AuditorIngest(auditor, Config{}) {}

AuditorIngest::AuditorIngest(Auditor& auditor, Config config)
    : auditor_(auditor),
      config_(config),
      pool_(64, &registry_for(auditor)),
      queue_(std::max<std::size_t>(1, config.queue_capacity)) {
  config_.max_batch = std::max<std::size_t>(1, config_.max_batch);
  if (config_.verify_threads > 0) {
    verify_pool_ = std::make_unique<runtime::ThreadPool>(
        runtime::ThreadPool::Config{config_.verify_threads, "alidrone-ingest"});
  }
  views_.resize(config_.max_batch);
  obs::MetricsRegistry& reg = registry_for(auditor);
  const std::string scope = reg.instance_scope("core.ingest");
  submitted_ = &reg.counter(scope + ".submitted");
  admitted_ = &reg.counter(scope + ".admitted");
  retry_later_ = &reg.counter(scope + ".retry_later");
  duplicates_ = &reg.counter(scope + ".duplicates");
  malformed_ = &reg.counter(scope + ".malformed");
  batches_ = &reg.counter(scope + ".batches");
  committed_ = &reg.counter(scope + ".committed");
  max_batch_seen_ = &reg.gauge(scope + ".max_batch_seen");
  gate_waits_ = &reg.counter(scope + ".gate_waits");
  ingest_thread_ = std::thread([this] { ingest_loop(); });
}

AuditorIngest::~AuditorIngest() { stop(); }

void AuditorIngest::stop() {
  {
    std::lock_guard<std::mutex> lock(pause_mu_);
    if (stopped_) return;
    stopped_ = true;
    paused_ = false;
  }
  pause_cv_.notify_all();
  queue_.close();  // pop() drains admitted items first — no broken promises
  if (ingest_thread_.joinable()) ingest_thread_.join();
}

void AuditorIngest::pause() {
  std::lock_guard<std::mutex> lock(pause_mu_);
  paused_ = true;
}

void AuditorIngest::resume() {
  {
    std::lock_guard<std::mutex> lock(pause_mu_);
    paused_ = false;
  }
  pause_cv_.notify_all();
}

crypto::Bytes AuditorIngest::submit(std::span<const std::uint8_t> request_frame) {
  submitted_->increment();

  const auto poa_bytes = SubmitPoaRequest::decode_view(request_frame);
  if (!poa_bytes) {
    malformed_->increment();
    PoaVerdict verdict;
    verdict.detail = "bad request";
    return verdict.encode();
  }

  const auto digest_arr = crypto::Sha256::hash(*poa_bytes);
  crypto::Bytes digest(digest_arr.begin(), digest_arr.end());
  if (auto hit = auditor_.lookup_submission(digest)) {
    duplicates_->increment();
    return *hit;
  }

  Item item;
  item.frame = pool_.acquire();
  item.frame.assign(poa_bytes->begin(), poa_bytes->end());
  item.digest = std::move(digest);
  auto future = item.reply.get_future();

  if (!queue_.try_push(std::move(item))) {
    // try_push never consumes on failure: hand the frame back and answer
    // with explicit backpressure instead of buffering without bound.
    pool_.release(std::move(item.frame));
    retry_later_->increment();
    return net::retry_later_reply();
  }
  admitted_->increment();
  return future.get();
}

crypto::Bytes AuditorIngest::submit_tesla(Kind kind,
                                          std::span<const std::uint8_t> frame) {
  submitted_->increment();
  Item item;
  item.kind = kind;
  item.frame = pool_.acquire();
  item.frame.assign(frame.begin(), frame.end());
  auto future = item.reply.get_future();
  if (!queue_.try_push(std::move(item))) {
    pool_.release(std::move(item.frame));
    retry_later_->increment();
    return net::retry_later_reply();
  }
  admitted_->increment();
  return future.get();
}

crypto::Bytes AuditorIngest::commit_tesla(const Item& item) {
  switch (item.kind) {
    case Kind::kTeslaAnnounce: {
      const auto request = TeslaAnnounceRequest::decode(item.frame);
      return (request ? auditor_.tesla_announce(*request)
                      : TeslaAck{false, "bad request"})
          .encode();
    }
    case Kind::kTeslaSample: {
      const auto view = TeslaSampleBroadcastView::decode(item.frame);
      return (view ? auditor_.tesla_sample(*view)
                   : TeslaAck{false, "bad request"})
          .encode();
    }
    case Kind::kTeslaDisclose: {
      const auto view = TeslaDiscloseRequestView::decode(item.frame);
      return (view ? auditor_.tesla_disclose(*view)
                   : TeslaAck{false, "bad request"})
          .encode();
    }
    case Kind::kTeslaFinalize: {
      const auto request = TeslaFinalizeRequest::decode(item.frame);
      if (!request) {
        PoaVerdict verdict;
        verdict.detail = "bad request";
        return verdict.encode();
      }
      return auditor_.tesla_finalize(*request).encode();
    }
    case Kind::kPoa:
      break;  // unreachable: callers route kPoa through the verdict path
  }
  return {};
}

void AuditorIngest::ingest_loop() {
  std::vector<Item> batch;
  batch.reserve(config_.max_batch);
  while (true) {
    auto first = queue_.pop();  // blocks; nullopt once closed and drained
    if (!first) break;
    // The pause gate sits between pop and process: pausing freezes the
    // pipeline with the popped item held here, so tests can fill the
    // queue to capacity deterministically. stop() lifts the gate and the
    // held item still commits — no promise is ever dropped.
    {
      std::unique_lock<std::mutex> lock(pause_mu_);
      if (paused_ && !stopped_) gate_waits_->increment();
      pause_cv_.wait(lock, [&] { return !paused_ || stopped_; });
    }
    batch.clear();
    batch.push_back(std::move(*first));
    while (batch.size() < config_.max_batch) {
      auto next = queue_.try_pop();
      if (!next) break;
      batch.push_back(std::move(*next));
    }
    process_batch(batch);
  }
}

void AuditorIngest::process_batch(std::vector<Item>& batch) {
  const std::size_t n = batch.size();
  batches_->increment();
  max_batch_seen_->set_max(static_cast<double>(n));

  // Parse zero-copy into the reused scratch views (ingest thread only —
  // sample vectors keep their capacity from batch to batch).
  if (views_.size() < n) views_.resize(n);
  std::vector<char> parsed(n);
  for (std::size_t i = 0; i < n; ++i) {
    parsed[i] = batch[i].kind == Kind::kPoa &&
                        PoaView::parse_into(batch[i].frame, views_[i])
                    ? 1
                    : 0;
  }

  // Evaluate — pure reads, so the whole batch can fan out.
  if (config_.recorder != nullptr) {
    config_.recorder->record(obs::TraceKind::kIngestEvaluate, 0.0, n,
                             batches_->value(), "batch-evaluate");
  }
  std::vector<Auditor::PoaEvaluation> evaluations(n);
  const auto evaluate = [&](std::size_t i) {
    if (parsed[i]) evaluations[i] = auditor_.evaluate_poa(views_[i]);
  };
  if (verify_pool_ != nullptr && n > 1) {
    // Fan out by drone, not by index: all PoAs of one drone share one TEE
    // modulus, so keeping them on a single worker keeps that modulus's
    // MontgomeryContext (and the batch verifier's working set) hot in
    // cache instead of bouncing it between cores. Groups are built in
    // first-appearance order and results land by index, so the schedule
    // cannot change any evaluation or verdict.
    std::vector<std::vector<std::size_t>> groups;
    std::map<std::string_view, std::size_t> group_of;
    for (std::size_t i = 0; i < n; ++i) {
      if (!parsed[i]) continue;  // evaluate() is a no-op for these
      const auto [it, fresh] =
          group_of.try_emplace(views_[i].drone_id, groups.size());
      if (fresh) groups.emplace_back();
      groups[it->second].push_back(i);
    }
    runtime::parallel_for(*verify_pool_, 0, groups.size(), [&](std::size_t g) {
      for (const std::size_t i : groups[g]) evaluate(i);
    });
  } else {
    for (std::size_t i = 0; i < n; ++i) evaluate(i);
  }
  if (config_.recorder != nullptr) {
    config_.recorder->record(obs::TraceKind::kIngestCommit, 0.0, n,
                             batches_->value(), "batch-commit");
  }

  // Commit serially in admission order. The digest re-check makes same-
  // batch duplicates exactly-once: the second copy gets the first's
  // verdict verbatim with no second retention or audit event.
  for (std::size_t i = 0; i < n; ++i) {
    Item& item = batch[i];
    crypto::Bytes encoded;
    if (item.kind != Kind::kPoa) {
      // TESLA operations are order-sensitive (chain frontiers, buffered
      // intervals) and cheap — symmetric crypto plus at most one RSA
      // verify per flight — so they are applied here, serially, in
      // admission order, never in the parallel evaluate phase.
      encoded = commit_tesla(item);
    } else if (!parsed[i]) {
      PoaVerdict verdict;
      verdict.detail = "unparseable PoA";
      encoded = verdict.encode();
    } else if (auto hit = auditor_.lookup_submission(item.digest)) {
      duplicates_->increment();
      encoded = *hit;
    } else {
      // Submission time: latest sample time stands in for server wall
      // clock, matching the unbatched endpoint.
      const double t = views_[i].end_time().value_or(0.0);
      const PoaVerdict verdict = auditor_.commit_evaluation(
          views_[i].drone_id, std::move(evaluations[i]), t);
      encoded = verdict.encode();
      if (verdict.accepted) auditor_.note_submission(item.digest, encoded);
      committed_->increment();
    }
    item.reply.set_value(std::move(encoded));
    pool_.release(std::move(item.frame));
  }
}

void AuditorIngest::bind(net::Transport& bus, const std::string& prefix) {
  bus.register_endpoint(prefix + ".submit_poa",
                        [this](const crypto::Bytes& in) { return submit(in); });
  bus.register_endpoint(prefix + ".tesla_announce", [this](const crypto::Bytes& in) {
    return submit_tesla(Kind::kTeslaAnnounce, in);
  });
  bus.register_endpoint(prefix + ".tesla_sample", [this](const crypto::Bytes& in) {
    return submit_tesla(Kind::kTeslaSample, in);
  });
  bus.register_endpoint(prefix + ".tesla_disclose", [this](const crypto::Bytes& in) {
    return submit_tesla(Kind::kTeslaDisclose, in);
  });
  bus.register_endpoint(prefix + ".tesla_finalize", [this](const crypto::Bytes& in) {
    return submit_tesla(Kind::kTeslaFinalize, in);
  });
}

AuditorIngest::Counters AuditorIngest::counters() const {
  Counters c;
  c.submitted = submitted_->value();
  c.admitted = admitted_->value();
  c.retry_later = retry_later_->value();
  c.duplicates = duplicates_->value();
  c.malformed = malformed_->value();
  c.batches = batches_->value();
  c.committed = committed_->value();
  c.max_batch_seen = static_cast<std::uint64_t>(max_batch_seen_->value());
  c.gate_waits = gate_waits_->value();
  return c;
}

}  // namespace alidrone::core
