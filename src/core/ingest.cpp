#include "core/ingest.h"

#include <algorithm>
#include <utility>

#include "crypto/sha256.h"
#include "runtime/parallel_for.h"

namespace alidrone::core {

AuditorIngest::AuditorIngest(Auditor& auditor)
    : AuditorIngest(auditor, Config{}) {}

AuditorIngest::AuditorIngest(Auditor& auditor, Config config)
    : auditor_(auditor),
      config_(config),
      queue_(std::max<std::size_t>(1, config.queue_capacity)) {
  config_.max_batch = std::max<std::size_t>(1, config_.max_batch);
  if (config_.verify_threads > 0) {
    verify_pool_ = std::make_unique<runtime::ThreadPool>(
        runtime::ThreadPool::Config{config_.verify_threads, "alidrone-ingest"});
  }
  views_.resize(config_.max_batch);
  ingest_thread_ = std::thread([this] { ingest_loop(); });
}

AuditorIngest::~AuditorIngest() { stop(); }

void AuditorIngest::stop() {
  {
    std::lock_guard<std::mutex> lock(pause_mu_);
    if (stopped_) return;
    stopped_ = true;
    paused_ = false;
  }
  pause_cv_.notify_all();
  queue_.close();  // pop() drains admitted items first — no broken promises
  if (ingest_thread_.joinable()) ingest_thread_.join();
}

void AuditorIngest::pause() {
  std::lock_guard<std::mutex> lock(pause_mu_);
  paused_ = true;
}

void AuditorIngest::resume() {
  {
    std::lock_guard<std::mutex> lock(pause_mu_);
    paused_ = false;
  }
  pause_cv_.notify_all();
}

crypto::Bytes AuditorIngest::submit(std::span<const std::uint8_t> request_frame) {
  submitted_.fetch_add(1, std::memory_order_relaxed);

  const auto poa_bytes = SubmitPoaRequest::decode_view(request_frame);
  if (!poa_bytes) {
    malformed_.fetch_add(1, std::memory_order_relaxed);
    PoaVerdict verdict;
    verdict.detail = "bad request";
    return verdict.encode();
  }

  const auto digest_arr = crypto::Sha256::hash(*poa_bytes);
  crypto::Bytes digest(digest_arr.begin(), digest_arr.end());
  if (auto hit = auditor_.lookup_submission(digest)) {
    duplicates_.fetch_add(1, std::memory_order_relaxed);
    return *hit;
  }

  Item item;
  item.frame = pool_.acquire();
  item.frame.assign(poa_bytes->begin(), poa_bytes->end());
  item.digest = std::move(digest);
  auto future = item.reply.get_future();

  if (!queue_.try_push(std::move(item))) {
    // try_push never consumes on failure: hand the frame back and answer
    // with explicit backpressure instead of buffering without bound.
    pool_.release(std::move(item.frame));
    retry_later_.fetch_add(1, std::memory_order_relaxed);
    return net::retry_later_reply();
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  return future.get();
}

void AuditorIngest::ingest_loop() {
  std::vector<Item> batch;
  batch.reserve(config_.max_batch);
  while (true) {
    auto first = queue_.pop();  // blocks; nullopt once closed and drained
    if (!first) break;
    // The pause gate sits between pop and process: pausing freezes the
    // pipeline with the popped item held here, so tests can fill the
    // queue to capacity deterministically. stop() lifts the gate and the
    // held item still commits — no promise is ever dropped.
    {
      std::unique_lock<std::mutex> lock(pause_mu_);
      if (paused_ && !stopped_) gate_waits_.fetch_add(1, std::memory_order_relaxed);
      pause_cv_.wait(lock, [&] { return !paused_ || stopped_; });
    }
    batch.clear();
    batch.push_back(std::move(*first));
    while (batch.size() < config_.max_batch) {
      auto next = queue_.try_pop();
      if (!next) break;
      batch.push_back(std::move(*next));
    }
    process_batch(batch);
  }
}

void AuditorIngest::process_batch(std::vector<Item>& batch) {
  const std::size_t n = batch.size();
  batches_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t prev = max_batch_seen_.load(std::memory_order_relaxed);
  while (prev < n &&
         !max_batch_seen_.compare_exchange_weak(prev, n, std::memory_order_relaxed)) {
  }

  // Parse zero-copy into the reused scratch views (ingest thread only —
  // sample vectors keep their capacity from batch to batch).
  if (views_.size() < n) views_.resize(n);
  std::vector<char> parsed(n);
  for (std::size_t i = 0; i < n; ++i) {
    parsed[i] = PoaView::parse_into(batch[i].frame, views_[i]) ? 1 : 0;
  }

  // Evaluate — pure reads, so the whole batch can fan out.
  std::vector<Auditor::PoaEvaluation> evaluations(n);
  const auto evaluate = [&](std::size_t i) {
    if (parsed[i]) evaluations[i] = auditor_.evaluate_poa(views_[i]);
  };
  if (verify_pool_ != nullptr && n > 1) {
    runtime::parallel_for(*verify_pool_, 0, n, evaluate);
  } else {
    for (std::size_t i = 0; i < n; ++i) evaluate(i);
  }

  // Commit serially in admission order. The digest re-check makes same-
  // batch duplicates exactly-once: the second copy gets the first's
  // verdict verbatim with no second retention or audit event.
  for (std::size_t i = 0; i < n; ++i) {
    Item& item = batch[i];
    crypto::Bytes encoded;
    if (!parsed[i]) {
      PoaVerdict verdict;
      verdict.detail = "unparseable PoA";
      encoded = verdict.encode();
    } else if (auto hit = auditor_.lookup_submission(item.digest)) {
      duplicates_.fetch_add(1, std::memory_order_relaxed);
      encoded = *hit;
    } else {
      // Submission time: latest sample time stands in for server wall
      // clock, matching the unbatched endpoint.
      const double t = views_[i].end_time().value_or(0.0);
      const PoaVerdict verdict = auditor_.commit_evaluation(
          views_[i].drone_id, std::move(evaluations[i]), t);
      encoded = verdict.encode();
      if (verdict.accepted) auditor_.note_submission(item.digest, encoded);
      committed_.fetch_add(1, std::memory_order_relaxed);
    }
    item.reply.set_value(std::move(encoded));
    pool_.release(std::move(item.frame));
  }
}

void AuditorIngest::bind(net::MessageBus& bus) {
  bus.register_endpoint("auditor.submit_poa",
                        [this](const crypto::Bytes& in) { return submit(in); });
}

AuditorIngest::Counters AuditorIngest::counters() const {
  Counters c;
  c.submitted = submitted_.load(std::memory_order_relaxed);
  c.admitted = admitted_.load(std::memory_order_relaxed);
  c.retry_later = retry_later_.load(std::memory_order_relaxed);
  c.duplicates = duplicates_.load(std::memory_order_relaxed);
  c.malformed = malformed_.load(std::memory_order_relaxed);
  c.batches = batches_.load(std::memory_order_relaxed);
  c.committed = committed_.load(std::memory_order_relaxed);
  c.max_batch_seen = max_batch_seen_.load(std::memory_order_relaxed);
  c.gate_waits = gate_waits_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace alidrone::core
