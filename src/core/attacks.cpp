#include "core/attacks.h"

#include <algorithm>

#include "tee/sample_codec.h"

namespace alidrone::core::attacks {

ProofOfAlibi forge_trace(const DroneId& drone_id,
                         const std::vector<gps::GpsFix>& fake_route,
                         crypto::HashAlgorithm hash, std::size_t key_bits,
                         crypto::RandomSource& rng) {
  const crypto::RsaKeyPair attacker_key = crypto::generate_rsa_keypair(key_bits, rng);

  ProofOfAlibi poa;
  poa.drone_id = drone_id;
  poa.mode = AuthMode::kRsaPerSample;
  poa.hash = hash;
  poa.samples.reserve(fake_route.size());
  for (const gps::GpsFix& fix : fake_route) {
    const crypto::Bytes sample = tee::encode_sample(fix);
    crypto::Bytes signature = crypto::rsa_sign(attacker_key.priv, sample, hash);
    poa.samples.push_back({sample, std::move(signature)});
  }
  return poa;
}

ProofOfAlibi relay(const ProofOfAlibi& other, const DroneId& my_drone_id) {
  ProofOfAlibi poa = other;
  poa.drone_id = my_drone_id;
  return poa;
}

ProofOfAlibi tamper_position(const ProofOfAlibi& poa, std::size_t index,
                             geo::GeoPoint new_position) {
  ProofOfAlibi out = poa;
  if (index >= out.samples.size()) return out;
  auto fix = out.samples[index].fix();
  if (!fix) return out;
  fix->position = new_position;
  out.samples[index].sample = tee::encode_sample(*fix);  // signature untouched
  return out;
}

ProofOfAlibi tamper_time(const ProofOfAlibi& poa, std::size_t index,
                         double delta_seconds) {
  ProofOfAlibi out = poa;
  if (index >= out.samples.size()) return out;
  auto fix = out.samples[index].fix();
  if (!fix) return out;
  fix->unix_time += delta_seconds;
  out.samples[index].sample = tee::encode_sample(*fix);
  return out;
}

ProofOfAlibi drop_samples(const ProofOfAlibi& poa, std::size_t from, std::size_t to) {
  ProofOfAlibi out = poa;
  if (from >= to || from >= out.samples.size()) return out;
  const std::size_t end = std::min(to, out.samples.size());
  out.samples.erase(out.samples.begin() + static_cast<std::ptrdiff_t>(from),
                    out.samples.begin() + static_cast<std::ptrdiff_t>(end));
  return out;
}

}  // namespace alidrone::core::attacks
