#include "core/attacks.h"

#include <algorithm>

#include "tee/sample_codec.h"

namespace alidrone::core::attacks {

ProofOfAlibi forge_trace(const DroneId& drone_id,
                         const std::vector<gps::GpsFix>& fake_route,
                         crypto::HashAlgorithm hash, std::size_t key_bits,
                         crypto::RandomSource& rng) {
  const crypto::RsaKeyPair attacker_key = crypto::generate_rsa_keypair(key_bits, rng);

  ProofOfAlibi poa;
  poa.drone_id = drone_id;
  poa.mode = AuthMode::kRsaPerSample;
  poa.hash = hash;
  poa.samples.reserve(fake_route.size());
  for (const gps::GpsFix& fix : fake_route) {
    const crypto::Bytes sample = tee::encode_sample(fix);
    crypto::Bytes signature = crypto::rsa_sign(attacker_key.priv, sample, hash);
    poa.samples.push_back({sample, std::move(signature)});
  }
  return poa;
}

ProofOfAlibi relay(const ProofOfAlibi& other, const DroneId& my_drone_id) {
  ProofOfAlibi poa = other;
  poa.drone_id = my_drone_id;
  return poa;
}

ProofOfAlibi tamper_position(const ProofOfAlibi& poa, std::size_t index,
                             geo::GeoPoint new_position) {
  ProofOfAlibi out = poa;
  if (index >= out.samples.size()) return out;
  auto fix = out.samples[index].fix();
  if (!fix) return out;
  fix->position = new_position;
  out.samples[index].sample = tee::encode_sample(*fix);  // signature untouched
  return out;
}

ProofOfAlibi tamper_time(const ProofOfAlibi& poa, std::size_t index,
                         double delta_seconds) {
  ProofOfAlibi out = poa;
  if (index >= out.samples.size()) return out;
  auto fix = out.samples[index].fix();
  if (!fix) return out;
  fix->unix_time += delta_seconds;
  out.samples[index].sample = tee::encode_sample(*fix);
  return out;
}

ProofOfAlibi drop_samples(const ProofOfAlibi& poa, std::size_t from, std::size_t to) {
  ProofOfAlibi out = poa;
  if (from >= to || from >= out.samples.size()) return out;
  const std::size_t end = std::min(to, out.samples.size());
  out.samples.erase(out.samples.begin() + static_cast<std::ptrdiff_t>(from),
                    out.samples.begin() + static_cast<std::ptrdiff_t>(end));
  return out;
}

gps::PositionSource spoofed_drift_source(gps::PositionSource truth,
                                         const geo::LocalFrame& frame,
                                         geo::Vec2 target_local,
                                         double start_time, double drift_mps) {
  return [truth = std::move(truth), frame, target_local, start_time,
          drift_mps](double unix_time) {
    gps::GpsFix fix = truth(unix_time);
    if (unix_time <= start_time || drift_mps <= 0.0) return fix;
    const geo::Vec2 honest = frame.to_local(fix.position);
    const geo::Vec2 to_target = target_local - honest;
    const double gap = to_target.norm();
    if (gap <= 1e-9) return fix;
    // The spoofed offset budget grows linearly from onset; once it covers
    // the remaining gap the drone reads as parked on the target.
    const double budget = drift_mps * (unix_time - start_time);
    const double frac = std::min(1.0, budget / gap);
    fix.position = frame.to_geo(honest + to_target * frac);
    return fix;
  };
}

ProofOfAlibi thinning_abuse(const ProofOfAlibi& poa, std::size_t keep) {
  ProofOfAlibi out = poa;
  const std::size_t n = out.samples.size();
  if (keep < 2) keep = 2;
  if (n <= keep) return out;
  std::vector<SignedSample> kept;
  kept.reserve(keep);
  for (std::size_t i = 0; i < keep; ++i) {
    // Evenly spaced over [0, n-1]; i=0 keeps the first sample and
    // i=keep-1 the last, anchoring the claimed flight window.
    kept.push_back(out.samples[(i * (n - 1)) / (keep - 1)]);
  }
  out.samples = std::move(kept);
  return out;
}

namespace {

/// Pin a fix's timestamp to the midpoint of `interval` so the claimed
/// interval and the embedded canonical time agree.
gps::GpsFix pin_to_interval(gps::GpsFix fix, const tee::TeslaCommit& commit,
                            std::uint64_t interval) {
  const std::int64_t t_us =
      commit.t0_us +
      static_cast<std::int64_t>((interval - 1) * commit.interval_us +
                                commit.interval_us / 2);
  fix.unix_time = static_cast<double>(t_us) * 1e-6;
  return fix;
}

}  // namespace

TeslaSampleBroadcast tesla_forge_tag(const DroneId& drone_id,
                                     std::uint64_t session_nonce,
                                     std::uint64_t interval,
                                     const tee::TeslaCommit& commit,
                                     gps::GpsFix fake_fix,
                                     crypto::RandomSource& rng) {
  TeslaSampleBroadcast out;
  out.drone_id = drone_id;
  out.session_nonce = session_nonce;
  out.interval = interval;
  out.sample = tee::encode_sample(pin_to_interval(fake_fix, commit, interval));
  out.tag = rng.bytes(crypto::kChainKeySize);
  return out;
}

TeslaSampleBroadcast tesla_late_sample(const DroneId& drone_id,
                                       std::uint64_t session_nonce,
                                       const crypto::ChainKey& disclosed_key,
                                       std::uint64_t disclosed_index,
                                       std::uint64_t interval,
                                       const tee::TeslaCommit& commit,
                                       gps::GpsFix fake_fix) {
  TeslaSampleBroadcast out;
  out.drone_id = drone_id;
  out.session_nonce = session_nonce;
  out.interval = interval;
  out.sample = tee::encode_sample(pin_to_interval(fake_fix, commit, interval));
  // The eavesdropper's derivation: K_interval from the public K_index.
  crypto::ChainKey key = disclosed_key;
  for (std::uint64_t at = disclosed_index; at > interval; --at) {
    key = crypto::chain_step(key);
  }
  const crypto::ChainKey tag =
      crypto::tesla_tag(crypto::tesla_mac_key(key), interval, out.sample);
  out.tag.assign(tag.begin(), tag.end());
  return out;
}

TeslaDiscloseRequest tesla_forge_disclosure(const DroneId& drone_id,
                                            std::uint64_t session_nonce,
                                            std::uint64_t index,
                                            crypto::RandomSource& rng) {
  TeslaDiscloseRequest out;
  out.drone_id = drone_id;
  out.session_nonce = session_nonce;
  out.index = index;
  out.key = rng.bytes(crypto::kChainKeySize);
  return out;
}

}  // namespace alidrone::core::attacks
