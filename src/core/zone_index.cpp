#include "core/zone_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace alidrone::core {

ZoneIndex::ZoneIndex(double cell_degrees) : cell_degrees_(cell_degrees) {
  if (cell_degrees <= 0.0) {
    throw std::invalid_argument("ZoneIndex: cell size must be positive");
  }
}

ZoneIndex::CellKey ZoneIndex::cell_of(geo::GeoPoint p) const {
  return {static_cast<std::int32_t>(std::floor(p.lat_deg / cell_degrees_)),
          static_cast<std::int32_t>(std::floor(p.lon_deg / cell_degrees_))};
}

void ZoneIndex::reserve(std::size_t zone_count) {
  zones_.reserve(zone_count);
  cells_.reserve(zone_count);  // upper bound: every zone in its own cell
}

void ZoneIndex::insert(const ZoneId& id, const geo::GeoZone& zone) {
  erase(id);  // replace semantics
  // Grow in steps ahead of the load-factor trigger so a bulk load (the
  // B4UFLY-scale registry import) rehashes O(log n) times, not per-insert.
  if (zones_.size() + 1 > zones_.bucket_count() * zones_.max_load_factor()) {
    reserve(zones_.empty() ? 64 : 2 * zones_.size());
  }
  zones_[id] = zone;
  cells_[cell_of(zone.center)].push_back(id);
}

bool ZoneIndex::erase(const ZoneId& id) {
  const auto it = zones_.find(id);
  if (it == zones_.end()) return false;
  const CellKey key = cell_of(it->second.center);
  auto& bucket = cells_[key];
  std::erase(bucket, id);
  if (bucket.empty()) cells_.erase(key);
  zones_.erase(it);
  return true;
}

const geo::GeoZone* ZoneIndex::find(const ZoneId& id) const {
  const auto it = zones_.find(id);
  return it == zones_.end() ? nullptr : &it->second;
}

std::vector<ZoneId> ZoneIndex::query_rect(const QueryRect& rect) const {
  const double lat_lo = std::min(rect.corner1.lat_deg, rect.corner2.lat_deg);
  const double lat_hi = std::max(rect.corner1.lat_deg, rect.corner2.lat_deg);
  const double lon_lo = std::min(rect.corner1.lon_deg, rect.corner2.lon_deg);
  const double lon_hi = std::max(rect.corner1.lon_deg, rect.corner2.lon_deg);

  const auto cell_lo = cell_of({lat_lo, lon_lo});
  const auto cell_hi = cell_of({lat_hi, lon_hi});

  std::vector<ZoneId> out;
  for (std::int32_t r = cell_lo.first; r <= cell_hi.first; ++r) {
    for (std::int32_t c = cell_lo.second; c <= cell_hi.second; ++c) {
      const auto it = cells_.find({r, c});
      if (it == cells_.end()) continue;
      for (const ZoneId& id : it->second) {
        if (rect.contains(zones_.at(id).center)) out.push_back(id);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<ZoneIndex::Nearest> ZoneIndex::nearest(geo::GeoPoint p) const {
  if (zones_.empty()) return std::nullopt;

  const CellKey center = cell_of(p);
  const double cell_height_m = cell_degrees_ * 111320.0;  // >= cell width

  Nearest best;
  double best_dist = std::numeric_limits<double>::infinity();

  // Expand square rings of cells until the ring's minimum possible
  // distance exceeds the best boundary distance found.
  const std::int32_t max_ring = static_cast<std::int32_t>(
      std::ceil(180.0 / cell_degrees_));  // cover the globe as a backstop
  for (std::int32_t ring = 0; ring <= max_ring; ++ring) {
    // Once a candidate is found, one extra ring guarantees correctness:
    // any zone farther than (ring-1) cells away is at least
    // (ring-1)*cell_height - max_radius meters out.
    if (std::isfinite(best_dist) &&
        (static_cast<double>(ring) - 1.0) * cell_height_m > best_dist + 100000.0) {
      break;
    }
    bool any_cell = false;
    for (std::int32_t r = center.first - ring; r <= center.first + ring; ++r) {
      for (std::int32_t c = center.second - ring; c <= center.second + ring; ++c) {
        // Ring perimeter only (interior already visited).
        if (std::abs(r - center.first) != ring && std::abs(c - center.second) != ring) {
          continue;
        }
        const auto it = cells_.find({r, c});
        if (it == cells_.end()) continue;
        any_cell = true;
        for (const ZoneId& id : it->second) {
          const geo::GeoZone& z = zones_.at(id);
          const double d = geo::haversine_distance(p, z.center) - z.radius_m;
          // Tie-break on id so the answer does not depend on hash-table
          // iteration or insertion order.
          if (d < best_dist || (d == best_dist && id < best.id)) {
            best_dist = d;
            best = {id, d};
          }
        }
      }
    }
    (void)any_cell;
  }
  return best;
}

}  // namespace alidrone::core
