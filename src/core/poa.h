// Proof-of-Alibi data structures (paper Section IV-C2).
//
// PoA = { (S_0, Sig(S_0, T-)), (S_1, Sig(S_1, T-)), ... }
//
// Samples travel as their canonical 32-byte TEE encoding so the Auditor
// can re-verify the exact signed bytes. Three authentication modes are
// supported: the paper's per-sample RSA signatures, plus the Section
// VII-A1 alternatives (ephemeral HMAC session keys; one batch signature
// over the whole trace).
#pragma once

#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "core/protocol_types.h"
#include "crypto/bytes.h"
#include "gps/fix.h"

namespace alidrone::core {

/// How the samples in a PoA are authenticated.
enum class AuthMode : std::uint8_t {
  kRsaPerSample = 0,   ///< paper baseline: Sig(S_i, T-) per sample
  kHmacSession = 1,    ///< Section VII-A1a: HMAC under an ephemeral key
  kBatchSignature = 2, ///< Section VII-A1b: one signature over the trace
  /// TESLA hash-chain broadcast mode: per-sample HMAC tags under delayed-
  /// disclosure chain keys, one TEE signature over the chain commitment.
  /// A retained kTeslaChain PoA is self-contained: batch_signature holds
  /// the commit payload, session_key_signature the TEE signature over it,
  /// session_key_ciphertext the highest disclosed chain element
  /// (BE64 index || 32-byte key), and each SignedSample::signature the
  /// 32-byte tag — enough to re-verify the whole proof offline.
  kTeslaChain = 3,
};

std::string to_string(AuthMode mode);

/// One alibi element: the signed canonical sample bytes. In kHmacSession
/// mode `signature` is a 32-byte HMAC tag; in kBatchSignature mode it is
/// empty (the PoA-level batch_signature covers everything).
struct SignedSample {
  crypto::Bytes sample;     ///< tee::encode_sample output (32 bytes)
  crypto::Bytes signature;

  /// Decoded view; nullopt when `sample` is malformed.
  std::optional<gps::GpsFix> fix() const;
};

struct ProofOfAlibi {
  DroneId drone_id;
  AuthMode mode = AuthMode::kRsaPerSample;
  crypto::HashAlgorithm hash = crypto::HashAlgorithm::kSha1;
  /// When true, each SignedSample::sample is RSAES-PKCS1-v1_5 ciphertext
  /// under the Auditor's public key (paper Section V-C); signatures remain
  /// over the plaintext canonical encoding.
  bool encrypted = false;
  std::vector<SignedSample> samples;

  /// kBatchSignature: Sig(S_0 || S_1 || ... || S_n, T-).
  crypto::Bytes batch_signature;

  /// kHmacSession: the session key encrypted under the Auditor's public
  /// key, and the TEE's signature over that ciphertext (proves the key
  /// came from this drone's TEE).
  crypto::Bytes session_key_ciphertext;
  crypto::Bytes session_key_signature;

  /// Decoded sample timestamps must be non-decreasing for a well-formed
  /// PoA; first/last give the flight window.
  std::optional<double> start_time() const;
  std::optional<double> end_time() const;

  crypto::Bytes serialize() const;
  /// Size of serialize()'s output, for Writer::reserve.
  std::size_t encoded_size() const;
  static std::optional<ProofOfAlibi> parse(std::span<const std::uint8_t> data);
};

/// Zero-copy counterpart of SignedSample: spans into the wire frame.
struct SignedSampleView {
  std::span<const std::uint8_t> sample;
  std::span<const std::uint8_t> signature;

  std::optional<gps::GpsFix> fix() const;
};

/// Non-owning parse of a serialized PoA. Every field borrows the frame,
/// so the whole hot verification path (decode → authenticate → geometry)
/// runs without per-proof heap allocation; materialize() builds an owning
/// ProofOfAlibi only when the Auditor decides to retain the proof.
/// Identical strictness to ProofOfAlibi::parse (same rejects, same
/// no-trailing-garbage contract) — ProofOfAlibi::parse is implemented as
/// parse_into + materialize, so they cannot drift.
struct PoaView {
  std::string_view drone_id;
  AuthMode mode = AuthMode::kRsaPerSample;
  crypto::HashAlgorithm hash = crypto::HashAlgorithm::kSha1;
  bool encrypted = false;
  std::vector<SignedSampleView> samples;
  std::span<const std::uint8_t> batch_signature;
  std::span<const std::uint8_t> session_key_ciphertext;
  std::span<const std::uint8_t> session_key_signature;

  /// Parses `data` into `out`, reusing out.samples' capacity (the pipeline
  /// keeps scratch PoaViews alive across batches for this reason).
  static bool parse_into(std::span<const std::uint8_t> data, PoaView& out);

  /// Borrow an already-owning proof (no copies; `poa` must outlive the view).
  static PoaView of(const ProofOfAlibi& poa);

  /// Deep copy into an owning ProofOfAlibi (the retain path).
  ProofOfAlibi materialize() const;

  std::optional<double> start_time() const;
  std::optional<double> end_time() const;
};

}  // namespace alidrone::core
