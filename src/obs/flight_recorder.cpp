#include "obs/flight_recorder.h"

#include <algorithm>
#include <cstring>

namespace alidrone::obs {

namespace {

/// splitmix64 — the same cheap bijective mixer DeterministicRandom seeds
/// with; good avalanche, so ids from adjacent seqs share no structure.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

const char* to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::kWorldSwitch: return "world-switch";
    case TraceKind::kBusRequest: return "bus-request";
    case TraceKind::kBusFault: return "bus-fault";
    case TraceKind::kChannelRetry: return "channel-retry";
    case TraceKind::kBreakerTransition: return "breaker-transition";
    case TraceKind::kIngestEvaluate: return "ingest-evaluate";
    case TraceKind::kIngestCommit: return "ingest-commit";
    case TraceKind::kGpsFixDropped: return "gps-fix-dropped";
    case TraceKind::kLedgerSeal: return "ledger-seal";
    case TraceKind::kLedgerRecoveredTail: return "ledger-recovered-tail";
    case TraceKind::kLedgerDivergence: return "ledger-divergence";
    case TraceKind::kReplicaForward: return "replica-forward";
    case TraceKind::kReplicaFailover: return "replica-failover";
    case TraceKind::kTransportConn: return "transport-conn";
    case TraceKind::kTransportChaos: return "transport-chaos";
    case TraceKind::kCustom: return "custom";
  }
  return "?";
}

std::string TraceEvent::to_line() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "#%llu id=%016llx %-18s t=%.6f a=%llu b=%llu %s",
                static_cast<unsigned long long>(seq),
                static_cast<unsigned long long>(id), to_string(kind), time,
                static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(b), tag.c_str());
  return buf;
}

FlightRecorder::FlightRecorder(std::uint64_t seed, std::size_t capacity)
    : seed_(seed), slots_(std::max<std::size_t>(capacity, 8)) {}

std::uint64_t FlightRecorder::event_id(std::uint64_t seed, std::uint64_t seq) {
  return splitmix64(seed ^ splitmix64(seq + 1));
}

void FlightRecorder::record(TraceKind kind, double time, std::uint64_t a,
                            std::uint64_t b, std::string_view tag) noexcept {
  const std::uint64_t seq = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq % slots_.size()];

  slot.stamp.store(2 * seq + 1, std::memory_order_release);
  slot.kind.store(static_cast<std::uint64_t>(kind), std::memory_order_relaxed);
  slot.time.store(time, std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  char packed[kTagBytes] = {};
  if (!tag.empty()) {
    std::memcpy(packed, tag.data(), std::min(tag.size(), kTagBytes - 1));
  }
  for (std::size_t w = 0; w < slot.tag.size(); ++w) {
    std::uint64_t word = 0;
    std::memcpy(&word, packed + 8 * w, 8);
    slot.tag[w].store(word, std::memory_order_relaxed);
  }
  slot.stamp.store(2 * seq + 2, std::memory_order_release);
}

std::vector<TraceEvent> FlightRecorder::events() const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t start =
      head > slots_.size() ? head - slots_.size() : 0;
  std::vector<TraceEvent> out;
  out.reserve(static_cast<std::size_t>(head - start));
  for (std::uint64_t seq = start; seq < head; ++seq) {
    const Slot& slot = slots_[seq % slots_.size()];
    if (slot.stamp.load(std::memory_order_acquire) != 2 * seq + 2) continue;

    TraceEvent event;
    event.seq = seq;
    event.id = event_id(seed_, seq);
    event.kind = static_cast<TraceKind>(
        slot.kind.load(std::memory_order_relaxed));
    event.time = slot.time.load(std::memory_order_relaxed);
    event.a = slot.a.load(std::memory_order_relaxed);
    event.b = slot.b.load(std::memory_order_relaxed);
    char packed[kTagBytes];
    for (std::size_t w = 0; w < slot.tag.size(); ++w) {
      const std::uint64_t word = slot.tag[w].load(std::memory_order_relaxed);
      std::memcpy(packed + 8 * w, &word, 8);
    }
    packed[kTagBytes - 1] = '\0';

    // Re-check: a writer may have lapped us mid-read; drop the torn slot.
    if (slot.stamp.load(std::memory_order_acquire) != 2 * seq + 2) continue;
    event.tag = packed;
    out.push_back(std::move(event));
  }
  return out;
}

void FlightRecorder::dump(std::ostream& out) const {
  const std::vector<TraceEvent> all = events();
  out << "=== FlightRecorder dump: seed=" << seed_ << " recorded="
      << recorded() << " shown=" << all.size() << " ===\n";
  for (const TraceEvent& event : all) out << event.to_line() << "\n";
}

}  // namespace alidrone::obs
