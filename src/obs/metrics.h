// obs::MetricsRegistry — one process-wide home for every counter, gauge
// and histogram in the system.
//
// AliDrone is judged by what its counters say: Table II is a cost-charge
// readout, Fig. 6/8 are sampling-counter curves, and the chaos/scale
// harnesses prove exactly-once delivery by comparing counter totals. This
// registry replaces the six per-subsystem `Stats` structs that grew up
// around those proofs with named handles in one table: components obtain
// their handles once at construction and bump them on the hot path with
// relaxed, cache-line-padded, per-thread-striped atomics; the pre-existing
// `Stats` accessors survive as thin views that read the same handles, so
// there is exactly one source of truth.
//
// snapshot() produces stable-ordered records (lexicographic by metric
// name), and the JSON / Prometheus-text exports are deterministic byte
// streams for deterministic runs — which is what lets the scale tests
// assert byte-identical snapshots across thread counts.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace alidrone::obs {

/// Stripes per counter. Eight 64-byte lines absorb the write contention of
/// the ingest pipeline's producer threads; value() sums them.
inline constexpr std::size_t kCounterStripes = 8;

namespace detail {
/// One cache line per stripe so two threads bumping the same counter never
/// ping-pong a line between cores.
struct alignas(64) PaddedAtomicU64 {
  std::atomic<std::uint64_t> v{0};
};

/// Stable per-thread stripe index (round-robin over thread creation).
std::size_t thread_stripe() noexcept;
}  // namespace detail

/// Monotonically increasing event count. All operations are relaxed: the
/// hot path pays one uncontended atomic add, never a fence or a lock.
class Counter {
 public:
  void add(std::uint64_t n) noexcept {
    stripes_[detail::thread_stripe()].v.fetch_add(n, std::memory_order_relaxed);
  }
  void increment() noexcept { add(1); }

  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& stripe : stripes_) {
      total += stripe.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  std::array<detail::PaddedAtomicU64, kCounterStripes> stripes_;
};

/// A settable/accumulating double (busy seconds, injected latency, ...).
/// Single atomic cell: gauges are written from one thread or rarely.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  /// Raise to `v` if larger (high-water marks like max_batch_seen).
  void set_max(double v) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (cur < v &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bound bucket histogram (cumulative on export, Prometheus-style).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;

  const std::vector<double>& bounds() const { return bounds_; }
  std::uint64_t count() const noexcept;
  double sum() const noexcept;
  /// Events in bucket i (v <= bounds()[i]; the last bucket is +inf).
  std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].v.load(std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;  ///< ascending upper edges; implicit +inf last
  std::vector<detail::PaddedAtomicU64> buckets_;  ///< bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// One named metric flattened for export. Histograms expand into one
/// record per cumulative bucket plus `.sum` and `.count`.
struct MetricRecord {
  std::string name;
  const char* type;  ///< "counter" | "gauge" | "histogram"
  double value = 0.0;
  bool integral = false;  ///< print without a decimal point
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Look up or create. Handles are stable for the registry's lifetime —
  /// components cache the reference and never touch the lock again. Two
  /// callers asking for the same name share one metric.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` applies only on first creation (ascending upper edges;
  /// empty picks a generic latency-ish default).
  Histogram& histogram(const std::string& name, std::vector<double> bounds = {});

  /// Per-instance naming: "net.buffer_pool" -> "net.buffer_pool#0",
  /// "net.buffer_pool#1", ... in construction order, so a deterministic
  /// scenario names its instances deterministically and snapshots compare
  /// byte-for-byte across runs.
  std::string instance_scope(const std::string& prefix);

  /// All metrics, lexicographically ordered by name (stable across runs
  /// and thread counts for deterministic workloads).
  std::vector<MetricRecord> snapshot() const;

  /// `[{"name": ..., "type": ..., "value": ...}, ...]` — counters and
  /// histogram buckets print as integers so deterministic runs export
  /// deterministic bytes.
  void write_json(std::ostream& out) const;
  std::string to_json() const;

  /// Prometheus text exposition (names sanitized to [a-zA-Z0-9_:]).
  void write_prometheus(std::ostream& out) const;
  std::string to_prometheus() const;

  std::size_t metric_count() const;

  /// The process-wide registry — the default home for every component
  /// that is not handed an explicit one.
  static MetricsRegistry& global();

 private:
  mutable std::mutex mu_;  // registration + snapshot only; never hot
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::size_t> instance_counts_;
};

}  // namespace alidrone::obs
