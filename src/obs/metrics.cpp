#include "obs/metrics.h"

#include <algorithm>
#include <charconv>
#include <sstream>

namespace alidrone::obs {

namespace detail {

std::size_t thread_stripe() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kCounterStripes;
  return index;
}

}  // namespace detail

namespace {

/// Shortest round-trip decimal for a double — deterministic bytes for
/// deterministic values, readable for humans.
std::string format_double(double v) {
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  return ec == std::errc() ? std::string(buf, end) : std::string("0");
}

std::string format_value(const MetricRecord& record) {
  if (record.integral) {
    return std::to_string(static_cast<std::uint64_t>(record.value));
  }
  return format_double(record.value);
}

char sanitize_char(char c) {
  const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_' || c == ':';
  return ok ? c : '_';
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    bounds_ = {0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1000.0};
  }
  std::sort(bounds_.begin(), bounds_.end());
  buckets_ = std::vector<detail::PaddedAtomicU64>(bounds_.size() + 1);
}

void Histogram::observe(double v) noexcept {
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  buckets_[i].v.fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::count() const noexcept {
  return count_.load(std::memory_order_relaxed);
}

double Histogram::sum() const noexcept {
  return sum_.load(std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

std::string MetricsRegistry::instance_scope(const std::string& prefix) {
  const std::lock_guard<std::mutex> lock(mu_);
  const std::size_t n = instance_counts_[prefix]++;
  return prefix + "#" + std::to_string(n);
}

std::vector<MetricRecord> MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricRecord> records;
  records.reserve(counters_.size() + gauges_.size() + 4 * histograms_.size());
  for (const auto& [name, counter] : counters_) {
    records.push_back(
        {name, "counter", static_cast<double>(counter->value()), true});
  }
  for (const auto& [name, gauge] : gauges_) {
    records.push_back({name, "gauge", gauge->value(), false});
  }
  for (const auto& [name, histogram] : histograms_) {
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < histogram->bounds().size(); ++i) {
      cumulative += histogram->bucket(i);
      records.push_back({name + ".le_" + format_double(histogram->bounds()[i]),
                         "histogram", static_cast<double>(cumulative), true});
    }
    cumulative += histogram->bucket(histogram->bounds().size());
    records.push_back({name + ".le_inf", "histogram",
                       static_cast<double>(cumulative), true});
    records.push_back({name + ".sum", "histogram", histogram->sum(), false});
    records.push_back({name + ".count", "histogram",
                       static_cast<double>(histogram->count()), true});
  }
  std::sort(records.begin(), records.end(),
            [](const MetricRecord& a, const MetricRecord& b) {
              return a.name < b.name;
            });
  return records;
}

void MetricsRegistry::write_json(std::ostream& out) const {
  out << "[";
  bool first = true;
  for (const MetricRecord& record : snapshot()) {
    out << (first ? "\n" : ",\n") << "  {\"name\": \"" << record.name
        << "\", \"type\": \"" << record.type << "\", \"value\": "
        << format_value(record) << "}";
    first = false;
  }
  out << "\n]\n";
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream out;
  write_json(out);
  return out.str();
}

void MetricsRegistry::write_prometheus(std::ostream& out) const {
  for (const MetricRecord& record : snapshot()) {
    std::string name = record.name;
    std::transform(name.begin(), name.end(), name.begin(), sanitize_char);
    out << "# TYPE " << name << " " << record.type << "\n"
        << name << " " << format_value(record) << "\n";
  }
}

std::string MetricsRegistry::to_prometheus() const {
  std::ostringstream out;
  write_prometheus(out);
  return out.str();
}

std::size_t MetricsRegistry::metric_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

}  // namespace alidrone::obs
