// obs::FlightRecorder — a bounded, lock-free ring of structured trace
// events: the system's black box.
//
// When a chaos or scale run fails, a verdict mismatch alone says nothing
// about *why* — the causal story lives in the sequence of world switches,
// bus faults, retries, breaker transitions and ingest batches that led up
// to it. Components record those moments here (a handful of relaxed
// atomic stores each; recording is safe from any thread and never
// allocates), and a failing test dumps the ring so the mismatch arrives
// with its trace.
//
// Event ids are derived deterministically from the recorder's seed and the
// event's sequence number, so two replays of the same seeded scenario
// produce byte-identical event streams — ids can be diffed across runs,
// and a divergence pinpoints the first event where two replays split.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace alidrone::obs {

enum class TraceKind : std::uint8_t {
  kWorldSwitch = 1,    ///< SMC pair; a = total switches, b = cost charge (ns)
  kBusRequest,         ///< bus request issued; tag = endpoint
  kBusFault,           ///< injected fault fired; tag = fault kind
  kChannelRetry,       ///< ReliableChannel re-attempt; tag = endpoint
  kBreakerTransition,  ///< breaker state change; tag = "closed->open" etc.
  kIngestEvaluate,     ///< ingest batch entering evaluation; a = batch size
  kIngestCommit,       ///< ingest batch committed; a = batch size
  kGpsFixDropped,      ///< pending-queue overflow; a = total dropped
  kLedgerSeal,         ///< segment sealed; a = segment index, b = entries
  kLedgerRecoveredTail,  ///< torn tail truncated on reopen; a = records, b = bytes
  kLedgerDivergence,   ///< replica roots disagree; a = first divergent segment
  kReplicaForward,     ///< write forwarded to a peer replica; tag = endpoint
  kReplicaFailover,    ///< client rotated to a new auditor; tag = new prefix
  kTransportConn,      ///< socket opened (a=1) or closed (a=0); b = worker
  kTransportChaos,     ///< transport-layer fault injected; tag = kind:endpoint
  kCustom,             ///< free-form (tests, tools)
};

const char* to_string(TraceKind kind);

/// One committed trace event, decoded out of the ring.
struct TraceEvent {
  std::uint64_t seq = 0;   ///< global record order (0-based)
  std::uint64_t id = 0;    ///< deterministic: f(recorder seed, seq)
  TraceKind kind = TraceKind::kCustom;
  double time = 0.0;       ///< producer's clock (scenario time where known)
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::string tag;         ///< short label, truncated to kTagBytes - 1

  std::string to_line() const;
};

class FlightRecorder {
 public:
  /// Longest tag preserved per event (remainder is truncated, not dropped).
  static constexpr std::size_t kTagBytes = 24;

  /// `seed` should be the scenario seed: it keys the deterministic event
  /// ids. `capacity` bounds memory; older events are overwritten.
  explicit FlightRecorder(std::uint64_t seed, std::size_t capacity = 4096);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Lock-free and wait-free apart from the stripe of atomic stores; safe
  /// from any thread, never allocates, never throws.
  void record(TraceKind kind, double time, std::uint64_t a = 0,
              std::uint64_t b = 0, std::string_view tag = {}) noexcept;

  /// The committed events still in the ring, oldest first. Events being
  /// overwritten concurrently are skipped, never returned torn.
  std::vector<TraceEvent> events() const;

  /// Human-readable dump (one event per line) — what a failing chaos or
  /// scale test prints.
  void dump(std::ostream& out) const;

  std::uint64_t recorded() const {
    return head_.load(std::memory_order_acquire);
  }
  std::size_t capacity() const { return slots_.size(); }
  std::uint64_t seed() const { return seed_; }

  /// The id function, exposed so tests can predict the stream.
  static std::uint64_t event_id(std::uint64_t seed, std::uint64_t seq);

 private:
  // Seqlock-per-slot, all-atomic payload: stamp goes 2*seq+1 (writing) ->
  // 2*seq+2 (committed); readers accept a slot only when the stamp reads
  // committed-for-that-seq both before and after the payload loads. Every
  // field is an atomic so concurrent overwrite is a benign data-free race
  // (a torn slot fails the stamp re-check and is skipped).
  struct Slot {
    std::atomic<std::uint64_t> stamp{0};
    std::atomic<std::uint64_t> kind{0};
    std::atomic<double> time{0.0};
    std::atomic<std::uint64_t> a{0};
    std::atomic<std::uint64_t> b{0};
    std::array<std::atomic<std::uint64_t>, kTagBytes / 8> tag{};
  };

  std::uint64_t seed_;
  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> head_{0};
};

}  // namespace alidrone::obs
