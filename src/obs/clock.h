// obs::Clock — the single time-authority interface.
//
// Before this layer existed the repo carried three independent notions of
// time: resilience::SimClock, the MessageBus `set_time_source` std::function
// hook, and the CpuAccountant's manually integrated wall seconds. Three
// timelines drift; a fault window scheduled on one and a breaker cool-down
// timed on another can disagree about "now" in ways no test reproduces.
// Clock is the one interface every consumer reads; VirtualClock is the
// driveable flavour a simulation advances. resilience::SimClock implements
// VirtualClock, so a scenario's bus fault schedule, circuit-breaker
// cool-downs and CPU wall-time integration all share one timeline.
#pragma once

#include <chrono>

namespace alidrone::obs {

/// Read-only time authority. Implementations must be monotonic.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in seconds. The epoch is the implementation's (unix time
  /// for trace-driven clocks, 0 for simulation clocks) — consumers only
  /// ever compare or subtract values from the same clock.
  virtual double now() const = 0;
};

/// A clock that can be driven forward — simulated time. Consumers that
/// inject delay (e.g. a latency fault window) advance the authority
/// directly instead of calling back through an ad-hoc sink hook.
class VirtualClock : public Clock {
 public:
  /// Advance by `seconds` (implementations ignore negative deltas — time
  /// is monotonic). Returns the new time.
  virtual double advance(double seconds) = 0;
};

/// Real monotonic time, measured in seconds since construction. This is
/// the authority the socket transport's fault-window schedule runs on
/// when no scenario clock is injected: a window of [0, 2) then means
/// "the first two wall-clock seconds of the server's life". Thread-safe
/// (steady_clock reads, immutable epoch).
class SteadyClock final : public Clock {
 public:
  SteadyClock() : epoch_(std::chrono::steady_clock::now()) {}

  double now() const override {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace alidrone::obs
