#include "ledger/entry.h"

#include "net/codec.h"

namespace alidrone::ledger {

const char* to_string(EntryKind kind) {
  switch (kind) {
    case EntryKind::kAuditEvent:
      return "audit-event";
    case EntryKind::kPoaAnchor:
      return "poa-anchor";
    case EntryKind::kRecorderEvent:
      return "recorder-event";
    case EntryKind::kReplicatedRequest:
      return "replicated-request";
  }
  return "unknown";
}

crypto::Bytes LedgerEntry::canonical() const {
  net::Writer w;
  w.reserve(canonical_size());
  w.u64(seq);
  w.u8(static_cast<std::uint8_t>(kind));
  w.f64(time);
  w.bytes(payload);
  return std::move(w).take();
}

std::optional<LedgerEntry> LedgerEntry::parse(
    std::span<const std::uint8_t> data) {
  net::Reader r(data);
  const auto seq = r.u64();
  const auto kind = r.u8();
  const auto time = r.f64();
  const auto payload = r.bytes();
  if (!seq || !kind || !time || !payload || !r.at_end()) return std::nullopt;
  if (*kind < static_cast<std::uint8_t>(EntryKind::kAuditEvent) ||
      *kind > static_cast<std::uint8_t>(EntryKind::kReplicatedRequest)) {
    return std::nullopt;
  }
  LedgerEntry entry;
  entry.seq = *seq;
  entry.kind = static_cast<EntryKind>(*kind);
  entry.time = *time;
  entry.payload = std::move(*payload);
  return entry;
}

Digest LedgerEntry::leaf_hash() const {
  crypto::Sha256 h;
  const std::uint8_t tag = 0x00;
  h.update({&tag, 1});
  const crypto::Bytes enc = canonical();
  h.update(enc);
  return h.finalize();
}

Digest chain_link(const Digest& prev, const Digest& leaf) {
  crypto::Sha256 h;
  const std::uint8_t tag = 0x01;
  h.update({&tag, 1});
  h.update(prev);
  h.update(leaf);
  return h.finalize();
}

}  // namespace alidrone::ledger
