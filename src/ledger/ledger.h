// ledger::Ledger — Merkle-chained, append-only, tamper-evident event log.
//
// The Auditor is itself an accountable party: verdicts, registrations and
// retained-proof anchors must survive a crashed — or dishonest — server.
// The ledger gives every appended entry three commitments:
//
//   chain    chain_i = H(0x01 || chain_{i-1} || leaf_i) — total order;
//   segment  entries fill fixed-capacity segments; a full segment is
//            sealed with the Merkle root over its leaf hashes and the
//            root is persisted to an append-only manifest;
//   root     H(0x03 || MTH(segment roots ++ open-segment root) ||
//            chain_tip || entry_count) — one 32-byte value that pins the
//            entire history. Reading it is O(1) (cached; invalidated by
//            append), recomputing it is O(segments + open entries).
//
// Durability (optional, directory-backed): every append is a CRC-framed
// record flushed to the current segment file; recovery truncates a torn
// tail of the *open* segment (counted in the `ledger#N.recovered_tail`
// gauge) while sealed segments re-verify against the manifest —
// audit_segments() recomputes every retained segment from disk and
// reports the exact first divergent segment after a bit flip. Sealed
// segments whose entries have aged out can be compacted away; their
// manifest roots keep the ledger root (and replica comparison) intact
// for millions of retained PoAs at a bounded memory/disk footprint.
//
// Thread safety: all methods are mutually synchronized — append order is
// decided by the caller (the Auditor's serial commit discipline), so the
// ledger stream is byte-identical for any thread/shard count upstream.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ledger/entry.h"
#include "ledger/merkle.h"
#include "ledger/segment.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace alidrone::ledger {

class Ledger {
 public:
  struct Config {
    /// Empty = in-memory only (replicas in tests); otherwise segment and
    /// manifest files live here (created if needed).
    std::filesystem::path directory;
    /// Entries per sealed segment. Smaller segments localize divergence
    /// finer; larger ones amortize sealing.
    std::size_t segment_capacity = 256;
    /// Counters register under an instance scope of "ledger" here (the
    /// process-wide registry when null).
    obs::MetricsRegistry* metrics = nullptr;
    /// Seals and tail recoveries leave trace events when set.
    obs::FlightRecorder* recorder = nullptr;
  };

  Ledger() : Ledger(Config{}) {}
  explicit Ledger(Config config);

  Ledger(const Ledger&) = delete;
  Ledger& operator=(const Ledger&) = delete;

  /// Append one entry; returns its sequence number. The payload is
  /// copied; the write (durable mode) is flushed before returning.
  std::uint64_t append(EntryKind kind, double time,
                       std::span<const std::uint8_t> payload);

  std::uint64_t entry_count() const;
  /// Running chain commitment over every entry (zeros when empty).
  Digest chain_tip() const;
  /// The 32-byte commitment to the whole ledger (cached; O(1) to read).
  Digest root_hash() const;

  // ---- Segments ----

  struct SegmentInfo {
    std::uint64_t first_seq = 0;
    std::uint64_t entries = 0;
    Digest root = kZeroDigest;       ///< sealed root, or current open root
    Digest end_chain = kZeroDigest;  ///< chain after the last entry
    bool sealed = false;
    bool compacted = false;  ///< payload dropped; root retained
  };

  /// Sealed segments plus the open one when it has entries.
  std::size_t segment_count() const;
  std::optional<SegmentInfo> segment_info(std::size_t index) const;
  /// Merkle range hash over segment roots [lo, hi) — the probe replicas
  /// answer during divergence descent (see merkle.h first_divergent_leaf).
  Digest segment_range_hash(std::size_t lo, std::size_t hi) const;
  /// Wire frame of one retained segment for replica catch-up; empty when
  /// the segment is compacted or the index is out of range.
  crypto::Bytes encode_segment(std::size_t index) const;

  /// Retained entry by sequence number (nullopt once compacted).
  std::optional<LedgerEntry> entry(std::uint64_t seq) const;

  // ---- Inclusion proofs ----

  /// O(log N)-sized membership proof for a retained entry: the audit
  /// path inside its segment, the segment root's path in the top tree,
  /// and the chain/count binding of the root.
  struct InclusionProof {
    std::uint64_t seq = 0;
    std::size_t entry_index = 0;       ///< within the segment
    std::size_t segment_entries = 0;
    std::vector<Digest> entry_path;
    std::size_t segment_index = 0;     ///< within the top tree
    std::size_t segment_count = 0;
    std::vector<Digest> segment_path;
    Digest chain_tip = kZeroDigest;
    std::uint64_t total_entries = 0;
  };
  std::optional<InclusionProof> prove(std::uint64_t seq) const;
  /// Verify with nothing but the claimed root and the entry's leaf hash.
  static bool verify_inclusion(const Digest& root, const Digest& leaf,
                               const InclusionProof& proof);

  // ---- Integrity / recovery / compaction ----

  struct AuditReport {
    std::size_t segments_checked = 0;
    /// Index of the first segment whose recomputed root, chain splice or
    /// record CRCs disagree with the sealed commitment; nullopt = clean.
    std::optional<std::size_t> first_divergent;
    std::string detail;  ///< human-readable reason for the divergence
  };
  /// Recompute every retained segment (from disk in durable mode, from
  /// memory otherwise) against its sealed root and chain splice.
  AuditReport audit_segments() const;

  /// Drop the payload (file + in-memory entries) of every sealed segment
  /// whose entries all precede `seq`. Roots are retained, so root_hash()
  /// and replica comparison are unaffected; prove()/entry() for the
  /// compacted range stop being available. Returns #segments compacted.
  std::size_t compact_before(std::uint64_t seq);

  /// Torn-tail records dropped during recovery (also in the
  /// `ledger#N.recovered_tail` gauge).
  std::uint64_t recovered_tail_records() const;

  const std::filesystem::path& directory() const { return config_.directory; }
  const Config& config() const { return config_; }

 private:
  struct Segment {
    std::uint64_t first_seq = 0;
    Digest prev_chain = kZeroDigest;
    std::vector<LedgerEntry> entries;  ///< cleared when compacted
    std::vector<Digest> leaves;        ///< cleared when compacted
    Digest root = kZeroDigest;         ///< valid once sealed
    Digest end_chain = kZeroDigest;    ///< valid once sealed
    std::uint64_t entry_count = 0;     ///< survives compaction
    bool sealed = false;
    bool compacted = false;
  };

  std::filesystem::path segment_path(std::uint64_t first_seq) const;
  std::filesystem::path manifest_path() const;
  void recover();
  void seal_open_segment();          // caller holds mu_
  void append_manifest(const Segment& segment);  // caller holds mu_
  std::vector<Digest> top_leaves() const;        // caller holds mu_
  Digest compute_root() const;                   // caller holds mu_
  static Digest bind_root(const Digest& core, const Digest& chain,
                          std::uint64_t count);

  Config config_;
  mutable std::mutex mu_;
  std::vector<Segment> segments_;  ///< last one open unless sealed/empty
  std::uint64_t count_ = 0;
  Digest chain_ = kZeroDigest;
  std::unique_ptr<SegmentWriter> writer_;  ///< open segment file (durable)
  mutable bool root_dirty_ = true;
  mutable Digest root_cache_ = kZeroDigest;
  std::uint64_t recovered_tail_ = 0;

  obs::Counter* appends_;
  obs::Counter* bytes_appended_;
  obs::Counter* seals_;
  obs::Counter* compactions_;
  obs::Gauge* recovered_tail_gauge_;
};

}  // namespace alidrone::ledger
