// Segment files — the ledger's crash-consistent on-disk unit.
//
// A segment file holds a contiguous run of canonical entry encodings:
//
//   header   u32 magic "ALGS"+version, u64 first_seq, 32-byte prev_chain
//   record*  u32 payload_len, u32 crc32(payload), payload bytes
//
// Appends are flushed per record. Recovery reads records until the first
// torn or CRC-failing one; for the ledger's *last* (open) segment that
// tail is a crashed append and gets truncated away — everything sealed
// earlier must re-verify against its manifest root instead (a short or
// corrupt sealed segment is tamper evidence, not a recoverable tail).
//
// The same header+records layout, length-prefixed as one frame, is the
// wire format replicas exchange during catch-up (encode_segment /
// decode_segment).
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <span>
#include <vector>

#include "crypto/bytes.h"
#include "ledger/entry.h"

namespace alidrone::ledger {

inline constexpr std::uint32_t kSegmentMagic = 0x414C4753;  // "ALGS" v1

struct SegmentHeader {
  std::uint64_t first_seq = 0;
  Digest prev_chain = kZeroDigest;  ///< chain commitment before first_seq
};

/// Append-only writer over one segment file. Creating it writes the
/// header; append() writes one CRC-framed record and flushes.
class SegmentWriter {
 public:
  /// Opens `path` fresh (truncating) and writes the header. Throws
  /// std::runtime_error when the file cannot be written.
  SegmentWriter(const std::filesystem::path& path, const SegmentHeader& header);
  /// Re-opens an existing segment for appending after `valid_bytes`
  /// (recovery truncates to that size first).
  SegmentWriter(const std::filesystem::path& path, std::uint64_t valid_bytes);

  void append(std::span<const std::uint8_t> canonical_entry);

 private:
  std::ofstream out_;
  std::filesystem::path path_;
};

struct SegmentReadResult {
  bool header_ok = false;
  SegmentHeader header;
  std::vector<LedgerEntry> entries;  ///< decoded, in file order
  /// Bytes of the file that parsed cleanly (header + whole records).
  /// Anything past this offset was torn or CRC-corrupt.
  std::uint64_t valid_bytes = 0;
  std::uint64_t dropped_bytes = 0;   ///< file size minus valid_bytes
  std::size_t dropped_records = 0;   ///< >=1 whenever dropped_bytes > 0
};

/// Read and decode a segment file. Never throws for content problems:
/// a missing/short header yields header_ok = false; a bad record stops
/// the scan and reports the torn tail.
SegmentReadResult read_segment(const std::filesystem::path& path);

/// One segment as a single wire frame (header + records), for replica
/// catch-up over the bus.
crypto::Bytes encode_segment(const SegmentHeader& header,
                             std::span<const LedgerEntry> entries);
struct DecodedSegment {
  SegmentHeader header;
  std::vector<LedgerEntry> entries;
};
std::optional<DecodedSegment> decode_segment(
    std::span<const std::uint8_t> frame);

}  // namespace alidrone::ledger
