// Merkle-tree helpers over SHA-256 digests (RFC 6962 tree shape).
//
// The ledger uses the same tree construction at two levels: entry leaf
// hashes within a segment, and segment roots within the whole ledger.
// Trees follow the Certificate-Transparency recursion — split at the
// largest power of two strictly below n — so a tree's shape depends only
// on its leaf count and audit paths stay O(log n).
//
// Domain separation: leaf hashes arrive already domain-tagged (the entry
// layer prefixes 0x00 for leaves and 0x01 for chain links); interior
// nodes here hash with a 0x02 prefix, and the ledger's final root binds
// everything under 0x03. No input collides across layers.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "crypto/sha256.h"

namespace alidrone::ledger {

using Digest = crypto::Sha256::Digest;

/// The root of an empty tree: all zero bytes (also the chain seed).
inline constexpr Digest kZeroDigest{};

/// Interior node: SHA-256(0x02 || left || right).
Digest merkle_node(const Digest& left, const Digest& right);

/// RFC 6962 merkle tree hash of `leaves` (kZeroDigest when empty, the
/// leaf itself when single — leaves are pre-hashed upstream).
Digest merkle_root(std::span<const Digest> leaves);

/// Audit path for `leaves[index]` (sibling hashes, leaf-to-root order).
std::vector<Digest> merkle_path(std::span<const Digest> leaves,
                                std::size_t index);

/// Recompute the root implied by `leaf` sitting at `index` within a tree
/// of `count` leaves, folding the audit path upward.
Digest merkle_fold(const Digest& leaf, std::size_t index, std::size_t count,
                   std::span<const Digest> path);

inline bool merkle_verify(const Digest& root, const Digest& leaf,
                          std::size_t index, std::size_t count,
                          std::span<const Digest> path) {
  return count != 0 && index < count &&
         merkle_fold(leaf, index, count, path) == root;
}

/// Tree hash of the contiguous leaf range [lo, hi) as a standalone tree.
/// Range hashes are what replicas exchange during divergence descent: the
/// shape depends only on hi - lo, so two replicas' hashes over the same
/// range are comparable even when their total leaf counts differ.
Digest merkle_range(std::span<const Digest> leaves, std::size_t lo,
                    std::size_t hi);

/// Answers merkle_range queries for one party during divergence descent.
/// Returns nullopt when the range cannot be served (peer unreachable) —
/// the descent aborts without a verdict.
using RangeProbe =
    std::function<std::optional<Digest>(std::size_t lo, std::size_t hi)>;

/// Binary Merkle descent: find the first leaf index where two parties'
/// trees differ, comparing O(log n) range hashes instead of n leaves.
/// `count_a`/`count_b` are the parties' leaf counts. Returns:
///   - nullopt         — identical over [0, min(count_a, count_b)) and
///                       equal counts (no divergence), or a probe failed;
///   - min(count_a, count_b) — one side is a strict prefix of the other;
///   - i < min(...)    — first differing leaf.
std::optional<std::size_t> first_divergent_leaf(std::size_t count_a,
                                                const RangeProbe& probe_a,
                                                std::size_t count_b,
                                                const RangeProbe& probe_b);

}  // namespace alidrone::ledger
