// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for ledger record
// framing. A CRC is not a security boundary — tamper evidence comes from
// the Merkle chain — it distinguishes a torn write (crash mid-append, the
// recoverable case) from a clean record without hashing the payload twice.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace alidrone::ledger {

namespace detail {
inline constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}
inline constexpr std::array<std::uint32_t, 256> kCrc32Table = make_crc32_table();
}  // namespace detail

inline std::uint32_t crc32(std::span<const std::uint8_t> data) {
  std::uint32_t c = 0xFFFFFFFFu;
  for (const std::uint8_t byte : data) {
    c = detail::kCrc32Table[(c ^ byte) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace alidrone::ledger
