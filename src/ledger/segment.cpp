#include "ledger/segment.h"

#include <cstring>
#include <stdexcept>

#include "ledger/crc32.h"
#include "net/codec.h"

namespace alidrone::ledger {

namespace {

constexpr std::size_t kHeaderBytes = 4 + 8 + crypto::Sha256::kDigestSize;

void put_u32(crypto::Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(crypto::Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

crypto::Bytes header_bytes(const SegmentHeader& header) {
  crypto::Bytes out;
  out.reserve(kHeaderBytes);
  put_u32(out, kSegmentMagic);
  put_u64(out, header.first_seq);
  out.insert(out.end(), header.prev_chain.begin(), header.prev_chain.end());
  return out;
}

crypto::Bytes record_bytes(std::span<const std::uint8_t> payload) {
  crypto::Bytes out;
  out.reserve(8 + payload.size());
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, crc32(payload));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

/// Parse records out of `data` starting at `pos`; shared by the file and
/// wire paths. Returns the offset after the last whole, CRC-clean record.
std::uint64_t scan_records(std::span<const std::uint8_t> data, std::size_t pos,
                           std::vector<LedgerEntry>& entries,
                           std::size_t* bad_records) {
  while (pos + 8 <= data.size()) {
    const std::uint32_t len = get_u32(data.data() + pos);
    const std::uint32_t crc = get_u32(data.data() + pos + 4);
    if (pos + 8 + len > data.size()) break;  // torn: record runs past EOF
    const std::span<const std::uint8_t> payload = data.subspan(pos + 8, len);
    if (crc32(payload) != crc) break;  // torn or flipped bytes
    auto entry = LedgerEntry::parse(payload);
    if (!entry) break;  // CRC-clean but undecodable: treat as corrupt
    entries.push_back(std::move(*entry));
    pos += 8 + len;
  }
  if (bad_records != nullptr && pos < data.size()) *bad_records = 1;
  return pos;
}

}  // namespace

SegmentWriter::SegmentWriter(const std::filesystem::path& path,
                             const SegmentHeader& header)
    : out_(path, std::ios::binary | std::ios::trunc), path_(path) {
  if (!out_) {
    throw std::runtime_error("ledger: cannot create segment " + path.string());
  }
  const crypto::Bytes bytes = header_bytes(header);
  out_.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  out_.flush();
  if (!out_) {
    throw std::runtime_error("ledger: short header write to " + path.string());
  }
}

SegmentWriter::SegmentWriter(const std::filesystem::path& path,
                             std::uint64_t valid_bytes)
    : path_(path) {
  std::filesystem::resize_file(path, valid_bytes);
  out_.open(path, std::ios::binary | std::ios::app);
  if (!out_) {
    throw std::runtime_error("ledger: cannot reopen segment " + path.string());
  }
}

void SegmentWriter::append(std::span<const std::uint8_t> canonical_entry) {
  const crypto::Bytes bytes = record_bytes(canonical_entry);
  out_.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  out_.flush();
  if (!out_) {
    throw std::runtime_error("ledger: short append to " + path_.string());
  }
}

SegmentReadResult read_segment(const std::filesystem::path& path) {
  SegmentReadResult result;
  std::ifstream in(path, std::ios::binary);
  if (!in) return result;
  const crypto::Bytes data((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
  if (data.size() < kHeaderBytes || get_u32(data.data()) != kSegmentMagic) {
    return result;
  }
  result.header_ok = true;
  result.header.first_seq = get_u64(data.data() + 4);
  std::memcpy(result.header.prev_chain.data(), data.data() + 12,
              result.header.prev_chain.size());
  result.valid_bytes =
      scan_records(data, kHeaderBytes, result.entries, &result.dropped_records);
  result.dropped_bytes = data.size() - result.valid_bytes;
  return result;
}

crypto::Bytes encode_segment(const SegmentHeader& header,
                             std::span<const LedgerEntry> entries) {
  crypto::Bytes out = header_bytes(header);
  for (const LedgerEntry& entry : entries) {
    const crypto::Bytes record = record_bytes(entry.canonical());
    out.insert(out.end(), record.begin(), record.end());
  }
  return out;
}

std::optional<DecodedSegment> decode_segment(
    std::span<const std::uint8_t> frame) {
  if (frame.size() < kHeaderBytes || get_u32(frame.data()) != kSegmentMagic) {
    return std::nullopt;
  }
  DecodedSegment decoded;
  decoded.header.first_seq = get_u64(frame.data() + 4);
  std::memcpy(decoded.header.prev_chain.data(), frame.data() + 12,
              decoded.header.prev_chain.size());
  std::size_t bad = 0;
  const std::uint64_t valid =
      scan_records(frame, kHeaderBytes, decoded.entries, &bad);
  // The wire frame must be whole: a torn network frame is a decode error,
  // not a recoverable tail.
  if (valid != frame.size()) return std::nullopt;
  return decoded;
}

}  // namespace alidrone::ledger
