#include "ledger/ledger.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <stdexcept>

#include "crypto/sha256.h"
#include "ledger/crc32.h"

namespace alidrone::ledger {

namespace {

// The manifest is an append-only file of CRC-framed, fixed-size records —
// one per sealed segment: u64 first_seq, u64 entries, root, end_chain.
constexpr std::size_t kManifestPayload = 8 + 8 + 2 * crypto::Sha256::kDigestSize;

void put_u32(crypto::Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(crypto::Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

struct ManifestRecord {
  std::uint64_t first_seq = 0;
  std::uint64_t entries = 0;
  Digest root = kZeroDigest;
  Digest end_chain = kZeroDigest;
};

crypto::Bytes read_file_bytes(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  return crypto::Bytes((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

/// Scan CRC-framed manifest records; returns the clean prefix length so a
/// torn manifest tail (crash mid-seal) can be truncated away.
std::uint64_t scan_manifest(std::span<const std::uint8_t> data,
                            std::vector<ManifestRecord>& records) {
  std::size_t pos = 0;
  while (pos + 8 <= data.size()) {
    const std::uint32_t len = get_u32(data.data() + pos);
    const std::uint32_t crc = get_u32(data.data() + pos + 4);
    if (len != kManifestPayload || pos + 8 + len > data.size()) break;
    const std::span<const std::uint8_t> payload = data.subspan(pos + 8, len);
    if (crc32(payload) != crc) break;
    ManifestRecord rec;
    rec.first_seq = get_u64(payload.data());
    rec.entries = get_u64(payload.data() + 8);
    std::memcpy(rec.root.data(), payload.data() + 16, rec.root.size());
    std::memcpy(rec.end_chain.data(), payload.data() + 48, rec.end_chain.size());
    records.push_back(rec);
    pos += 8 + len;
  }
  return pos;
}

}  // namespace

Ledger::Ledger(Config config) : config_(std::move(config)) {
  obs::MetricsRegistry& reg =
      config_.metrics != nullptr ? *config_.metrics : obs::MetricsRegistry::global();
  const std::string scope = reg.instance_scope("ledger");
  appends_ = &reg.counter(scope + ".appends");
  bytes_appended_ = &reg.counter(scope + ".bytes_appended");
  seals_ = &reg.counter(scope + ".seals");
  compactions_ = &reg.counter(scope + ".compactions");
  recovered_tail_gauge_ = &reg.gauge(scope + ".recovered_tail");
  if (config_.segment_capacity == 0) config_.segment_capacity = 1;
  if (!config_.directory.empty()) {
    std::filesystem::create_directories(config_.directory);
    recover();
  }
}

std::filesystem::path Ledger::segment_path(std::uint64_t first_seq) const {
  char name[32];
  std::snprintf(name, sizeof(name), "segment-%012llu.seg",
                static_cast<unsigned long long>(first_seq));
  return config_.directory / name;
}

std::filesystem::path Ledger::manifest_path() const {
  return config_.directory / "manifest.bin";
}

void Ledger::recover() {
  // 1. Sealed history from the manifest. Records are trusted here (they
  //    are the commitments everything else is checked against); a torn
  //    trailing record is a crashed seal and is truncated away.
  std::vector<ManifestRecord> manifest;
  const crypto::Bytes manifest_data = read_file_bytes(manifest_path());
  const std::uint64_t manifest_valid = scan_manifest(manifest_data, manifest);
  if (manifest_valid < manifest_data.size()) {
    std::filesystem::resize_file(manifest_path(), manifest_valid);
  }
  for (const ManifestRecord& rec : manifest) {
    if (rec.first_seq != count_ || rec.entries == 0) break;  // non-contiguous: stop
    Segment seg;
    seg.first_seq = rec.first_seq;
    seg.prev_chain = chain_;
    seg.root = rec.root;
    seg.end_chain = rec.end_chain;
    seg.entry_count = rec.entries;
    seg.sealed = true;
    const std::filesystem::path path = segment_path(rec.first_seq);
    if (std::filesystem::exists(path)) {
      // Retained segment: reload entries for prove()/encode_segment().
      // Content is *not* re-verified here — audit_segments() does that and
      // names the segment if the file was tampered with.
      SegmentReadResult read = read_segment(path);
      seg.entries = std::move(read.entries);
      seg.leaves.reserve(seg.entries.size());
      for (const LedgerEntry& entry : seg.entries) {
        seg.leaves.push_back(entry.leaf_hash());
      }
    } else {
      seg.compacted = true;
    }
    chain_ = rec.end_chain;
    count_ = rec.first_seq + rec.entries;
    segments_.push_back(std::move(seg));
  }

  // 2. Unsealed segment files past the manifest. Normally at most one (the
  //    open segment); a full-but-unsealed file means the crash hit between
  //    the last append and the manifest write — re-seal it and move on.
  while (std::filesystem::exists(segment_path(count_))) {
    const std::filesystem::path path = segment_path(count_);
    SegmentReadResult read = read_segment(path);
    if (!read.header_ok || read.header.first_seq != count_) {
      // A crashed header write left nothing recoverable in this file.
      recovered_tail_ += 1;
      std::filesystem::remove(path);
      break;
    }
    Segment seg;
    seg.first_seq = count_;
    seg.prev_chain = chain_;
    std::uint64_t valid_bytes = read.valid_bytes;
    std::size_t accepted = 0;
    for (LedgerEntry& entry : read.entries) {
      if (entry.seq != count_ || accepted >= config_.segment_capacity) break;
      const Digest leaf = entry.leaf_hash();
      seg.leaves.push_back(leaf);
      chain_ = chain_link(chain_, leaf);
      seg.entries.push_back(std::move(entry));
      ++count_;
      ++accepted;
    }
    if (accepted < read.entries.size()) {
      // Out-of-order tail (or overfull file): recompute the clean prefix
      // length so the truncation below drops the bad records too.
      valid_bytes = 4 + 8 + crypto::Sha256::kDigestSize;
      for (const LedgerEntry& entry : seg.entries) {
        valid_bytes += 8 + entry.canonical_size();
      }
      recovered_tail_ += read.entries.size() - accepted;
    }
    recovered_tail_ += read.dropped_records;
    seg.entry_count = accepted;
    const bool full = accepted == config_.segment_capacity;
    const bool torn = read.dropped_bytes > 0 || accepted < read.entries.size();
    if (accepted == 0) {
      // Header-only or fully torn file: nothing to keep. The next append
      // recreates the file from scratch (its writer truncates).
      std::filesystem::remove(path);
      break;
    }
    if (full) {
      // Crash hit between the last append and the manifest write: the
      // segment is complete, so finish the seal it was owed.
      seg.root = merkle_root(seg.leaves);
      seg.end_chain = chain_;
      seg.sealed = true;
      if (torn) std::filesystem::resize_file(path, valid_bytes);
      segments_.push_back(std::move(seg));
      append_manifest(segments_.back());
      continue;  // the next file, if any, starts at the new count_
    }
    // Partially filled: this is the open segment; truncate any torn tail
    // and keep appending after it.
    writer_ = std::make_unique<SegmentWriter>(path, valid_bytes);
    segments_.push_back(std::move(seg));
    break;  // open segment found — nothing later can be contiguous
  }

  recovered_tail_gauge_->set(static_cast<double>(recovered_tail_));
  if (recovered_tail_ > 0 && config_.recorder != nullptr) {
    config_.recorder->record(obs::TraceKind::kLedgerRecoveredTail, 0.0,
                             recovered_tail_, count_, "ledger");
  }
}

std::uint64_t Ledger::append(EntryKind kind, double time,
                             std::span<const std::uint8_t> payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (segments_.empty() || segments_.back().sealed) {
    Segment seg;
    seg.first_seq = count_;
    seg.prev_chain = chain_;
    segments_.push_back(std::move(seg));
    if (!config_.directory.empty()) {
      SegmentHeader header{count_, chain_};
      writer_ = std::make_unique<SegmentWriter>(segment_path(count_), header);
    }
  }
  Segment& seg = segments_.back();
  LedgerEntry entry;
  entry.seq = count_;
  entry.kind = kind;
  entry.time = time;
  entry.payload.assign(payload.begin(), payload.end());
  const crypto::Bytes canonical = entry.canonical();
  if (writer_ != nullptr) writer_->append(canonical);
  const Digest leaf = entry.leaf_hash();
  seg.leaves.push_back(leaf);
  seg.entries.push_back(std::move(entry));
  seg.entry_count = seg.entries.size();
  chain_ = chain_link(chain_, leaf);
  const std::uint64_t seq = count_++;
  root_dirty_ = true;
  appends_->increment();
  bytes_appended_->add(canonical.size());
  if (seg.entries.size() >= config_.segment_capacity) seal_open_segment();
  return seq;
}

void Ledger::seal_open_segment() {
  Segment& seg = segments_.back();
  seg.root = merkle_root(seg.leaves);
  seg.end_chain = chain_;
  seg.sealed = true;
  writer_.reset();
  if (!config_.directory.empty()) append_manifest(seg);
  seals_->increment();
  if (config_.recorder != nullptr) {
    config_.recorder->record(obs::TraceKind::kLedgerSeal, 0.0,
                             segments_.size() - 1, seg.entry_count, "seal");
  }
}

void Ledger::append_manifest(const Segment& segment) {
  crypto::Bytes payload;
  payload.reserve(kManifestPayload);
  put_u64(payload, segment.first_seq);
  put_u64(payload, segment.entry_count);
  payload.insert(payload.end(), segment.root.begin(), segment.root.end());
  payload.insert(payload.end(), segment.end_chain.begin(),
                 segment.end_chain.end());
  crypto::Bytes frame;
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  put_u32(frame, crc32(payload));
  frame.insert(frame.end(), payload.begin(), payload.end());
  std::ofstream out(manifest_path(), std::ios::binary | std::ios::app);
  out.write(reinterpret_cast<const char*>(frame.data()),
            static_cast<std::streamsize>(frame.size()));
  out.flush();
  if (!out) {
    throw std::runtime_error("ledger: manifest append failed: " +
                             manifest_path().string());
  }
}

std::uint64_t Ledger::entry_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

Digest Ledger::chain_tip() const {
  std::lock_guard<std::mutex> lock(mu_);
  return chain_;
}

std::vector<Digest> Ledger::top_leaves() const {
  std::vector<Digest> leaves;
  leaves.reserve(segments_.size());
  for (const Segment& seg : segments_) {
    leaves.push_back(seg.sealed ? seg.root : merkle_root(seg.leaves));
  }
  return leaves;
}

Digest Ledger::bind_root(const Digest& core, const Digest& chain,
                         std::uint64_t count) {
  crypto::Sha256 h;
  const std::uint8_t tag = 0x03;
  h.update({&tag, 1});
  h.update(core);
  h.update(chain);
  crypto::Bytes le;
  put_u64(le, count);
  h.update(le);
  return h.finalize();
}

Digest Ledger::compute_root() const {
  const std::vector<Digest> leaves = top_leaves();
  return bind_root(merkle_root(leaves), chain_, count_);
}

Digest Ledger::root_hash() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (root_dirty_) {
    root_cache_ = compute_root();
    root_dirty_ = false;
  }
  return root_cache_;
}

std::size_t Ledger::segment_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return segments_.size();
}

std::optional<Ledger::SegmentInfo> Ledger::segment_info(
    std::size_t index) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (index >= segments_.size()) return std::nullopt;
  const Segment& seg = segments_[index];
  SegmentInfo info;
  info.first_seq = seg.first_seq;
  info.entries = seg.entry_count;
  info.root = seg.sealed ? seg.root : merkle_root(seg.leaves);
  info.end_chain = seg.sealed ? seg.end_chain : chain_;
  info.sealed = seg.sealed;
  info.compacted = seg.compacted;
  return info;
}

Digest Ledger::segment_range_hash(std::size_t lo, std::size_t hi) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::vector<Digest> leaves = top_leaves();
  if (lo >= hi || hi > leaves.size()) return kZeroDigest;
  return merkle_range(leaves, lo, hi);
}

crypto::Bytes Ledger::encode_segment(std::size_t index) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (index >= segments_.size()) return {};
  const Segment& seg = segments_[index];
  if (seg.compacted) return {};
  SegmentHeader header{seg.first_seq, seg.prev_chain};
  return ledger::encode_segment(header, seg.entries);
}

std::optional<LedgerEntry> Ledger::entry(std::uint64_t seq) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Segment& seg : segments_) {
    if (seq < seg.first_seq || seq >= seg.first_seq + seg.entry_count) continue;
    if (seg.compacted) return std::nullopt;
    return seg.entries[static_cast<std::size_t>(seq - seg.first_seq)];
  }
  return std::nullopt;
}

std::optional<Ledger::InclusionProof> Ledger::prove(std::uint64_t seq) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    const Segment& seg = segments_[i];
    if (seq < seg.first_seq || seq >= seg.first_seq + seg.entry_count) continue;
    if (seg.compacted) return std::nullopt;
    InclusionProof proof;
    proof.seq = seq;
    proof.entry_index = static_cast<std::size_t>(seq - seg.first_seq);
    proof.segment_entries = seg.leaves.size();
    proof.entry_path = merkle_path(seg.leaves, proof.entry_index);
    const std::vector<Digest> top = top_leaves();
    proof.segment_index = i;
    proof.segment_count = top.size();
    proof.segment_path = merkle_path(top, i);
    proof.chain_tip = chain_;
    proof.total_entries = count_;
    return proof;
  }
  return std::nullopt;
}

bool Ledger::verify_inclusion(const Digest& root, const Digest& leaf,
                              const InclusionProof& proof) {
  if (proof.segment_entries == 0 || proof.entry_index >= proof.segment_entries ||
      proof.segment_count == 0 || proof.segment_index >= proof.segment_count) {
    return false;
  }
  const Digest seg_root = merkle_fold(leaf, proof.entry_index,
                                      proof.segment_entries, proof.entry_path);
  const Digest core = merkle_fold(seg_root, proof.segment_index,
                                  proof.segment_count, proof.segment_path);
  return bind_root(core, proof.chain_tip, proof.total_entries) == root;
}

Ledger::AuditReport Ledger::audit_segments() const {
  std::lock_guard<std::mutex> lock(mu_);
  AuditReport report;
  const bool durable = !config_.directory.empty();
  Digest chain = kZeroDigest;
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    const Segment& seg = segments_[i];
    if (seg.compacted) {
      // Payload gone by design; the manifest root still splices the chain.
      chain = seg.end_chain;
      continue;
    }
    ++report.segments_checked;
    std::vector<LedgerEntry> entries;
    if (durable) {
      SegmentReadResult read = read_segment(segment_path(seg.first_seq));
      if (!read.header_ok || read.header.first_seq != seg.first_seq ||
          read.header.prev_chain != chain) {
        report.first_divergent = i;
        report.detail = "segment header mismatch";
        return report;
      }
      if (seg.sealed && read.dropped_bytes > 0) {
        report.first_divergent = i;
        report.detail = "sealed segment has torn or corrupt records";
        return report;
      }
      entries = std::move(read.entries);
    } else {
      entries = seg.entries;
    }
    if (entries.size() != seg.entry_count) {
      report.first_divergent = i;
      report.detail = "segment entry count mismatch";
      return report;
    }
    std::vector<Digest> leaves;
    leaves.reserve(entries.size());
    for (const LedgerEntry& entry : entries) {
      if (entry.seq != seg.first_seq + leaves.size()) {
        report.first_divergent = i;
        report.detail = "segment sequence discontinuity";
        return report;
      }
      const Digest leaf = entry.leaf_hash();
      leaves.push_back(leaf);
      chain = chain_link(chain, leaf);
    }
    const Digest recomputed = merkle_root(leaves);
    const Digest expected = seg.sealed ? seg.root : merkle_root(seg.leaves);
    if (recomputed != expected ||
        (seg.sealed && chain != seg.end_chain)) {
      report.first_divergent = i;
      report.detail = "segment root or chain splice mismatch";
      return report;
    }
  }
  return report;
}

std::size_t Ledger::compact_before(std::uint64_t seq) {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t compacted = 0;
  for (Segment& seg : segments_) {
    if (!seg.sealed || seg.compacted) continue;
    if (seg.first_seq + seg.entry_count > seq) break;
    if (!config_.directory.empty()) {
      std::error_code ec;
      std::filesystem::remove(segment_path(seg.first_seq), ec);
    }
    seg.entries.clear();
    seg.entries.shrink_to_fit();
    seg.leaves.clear();
    seg.leaves.shrink_to_fit();
    seg.compacted = true;
    ++compacted;
    compactions_->increment();
  }
  return compacted;
}

std::uint64_t Ledger::recovered_tail_records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recovered_tail_;
}

}  // namespace alidrone::ledger
