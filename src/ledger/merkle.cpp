#include "ledger/merkle.h"

namespace alidrone::ledger {

namespace {

/// Largest power of two strictly below n (n >= 2) — the RFC 6962 split.
std::size_t split_point(std::size_t n) {
  std::size_t k = 1;
  while (k * 2 < n) k *= 2;
  return k;
}

}  // namespace

Digest merkle_node(const Digest& left, const Digest& right) {
  crypto::Sha256 h;
  const std::uint8_t tag = 0x02;
  h.update({&tag, 1});
  h.update(left);
  h.update(right);
  return h.finalize();
}

Digest merkle_range(std::span<const Digest> leaves, std::size_t lo,
                    std::size_t hi) {
  if (lo >= hi || hi > leaves.size()) return kZeroDigest;
  const std::size_t n = hi - lo;
  if (n == 1) return leaves[lo];
  const std::size_t k = split_point(n);
  return merkle_node(merkle_range(leaves, lo, lo + k),
                     merkle_range(leaves, lo + k, hi));
}

Digest merkle_root(std::span<const Digest> leaves) {
  return merkle_range(leaves, 0, leaves.size());
}

namespace {

void path_in_range(std::span<const Digest> leaves, std::size_t lo,
                   std::size_t hi, std::size_t index,
                   std::vector<Digest>& out) {
  const std::size_t n = hi - lo;
  if (n <= 1) return;
  const std::size_t k = split_point(n);
  if (index < lo + k) {
    path_in_range(leaves, lo, lo + k, index, out);
    out.push_back(merkle_range(leaves, lo + k, hi));
  } else {
    path_in_range(leaves, lo + k, hi, index, out);
    out.push_back(merkle_range(leaves, lo, lo + k));
  }
}

}  // namespace

std::vector<Digest> merkle_path(std::span<const Digest> leaves,
                                std::size_t index) {
  std::vector<Digest> out;
  if (index < leaves.size()) {
    path_in_range(leaves, 0, leaves.size(), index, out);
  }
  return out;
}

Digest merkle_fold(const Digest& leaf, std::size_t index, std::size_t count,
                   std::span<const Digest> path) {
  // Replay the recursion bottom-up: at each level the subtree containing
  // `index` has `count` leaves split at k; the sibling hash from the path
  // joins on the side the index is not on.
  if (count == 0) return kZeroDigest;
  std::vector<std::pair<bool, std::size_t>> steps;  // (index_on_left, k)
  std::size_t lo = 0;
  std::size_t n = count;
  while (n > 1) {
    const std::size_t k = split_point(n);
    if (index < lo + k) {
      steps.emplace_back(true, k);
      n = k;
    } else {
      steps.emplace_back(false, n - k);
      lo += k;
      n -= k;
    }
  }
  if (path.size() != steps.size()) return kZeroDigest;
  Digest acc = leaf;
  for (std::size_t i = steps.size(); i-- > 0;) {
    const Digest& sibling = path[steps.size() - 1 - i];
    acc = steps[i].first ? merkle_node(acc, sibling)
                         : merkle_node(sibling, acc);
  }
  return acc;
}

std::optional<std::size_t> first_divergent_leaf(std::size_t count_a,
                                                const RangeProbe& probe_a,
                                                std::size_t count_b,
                                                const RangeProbe& probe_b) {
  const std::size_t n = std::min(count_a, count_b);
  if (n == 0) {
    return count_a == count_b ? std::nullopt : std::optional<std::size_t>(0);
  }
  const auto differs = [&](std::size_t lo,
                           std::size_t hi) -> std::optional<bool> {
    const auto a = probe_a(lo, hi);
    const auto b = probe_b(lo, hi);
    if (!a || !b) return std::nullopt;
    return *a != *b;
  };
  const auto whole = differs(0, n);
  if (!whole) return std::nullopt;  // probe failed: no verdict
  if (!*whole) {
    // Shared prefix is identical; a longer side diverges right after it.
    return count_a == count_b ? std::nullopt : std::optional<std::size_t>(n);
  }
  std::size_t lo = 0;
  std::size_t hi = n;
  while (hi - lo > 1) {
    const std::size_t k = [&] {
      std::size_t p = 1;
      while (p * 2 < hi - lo) p *= 2;
      return p;
    }();
    const auto left = differs(lo, lo + k);
    if (!left) return std::nullopt;
    if (*left) {
      hi = lo + k;
    } else {
      lo += k;
    }
  }
  return lo;
}

}  // namespace alidrone::ledger
