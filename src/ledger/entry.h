// LedgerEntry — one tamper-evident record of the audit ledger.
//
// Every entry commits, via SHA-256, to its predecessor and to a canonical
// byte encoding of its payload: leaf_i = H(0x00 || encode(entry_i)),
// chain_i = H(0x01 || chain_{i-1} || leaf_i), chain_{-1} = zeros. The
// chain fixes total order (a reordered or dropped entry changes every
// later commitment); the Merkle trees built over leaf hashes (see
// merkle.h / ledger.h) make membership and divergence checks logarithmic.
//
// Payload kinds:
//   kAuditEvent        — core::AuditEvent::to_line() bytes (the Auditor's
//                        legal record, anchored by core::AuditLog);
//   kPoaAnchor         — drone id, submission time and SHA-256 of the
//                        serialized proof (anchored by core::PoaStore);
//   kRecorderEvent     — an obs::FlightRecorder trace line, when a
//                        scenario chooses to anchor its black box;
//   kReplicatedRequest — method byte + request frame, the write-ahead
//                        record core::ReplicatedAuditor re-executes on
//                        catch-up.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "crypto/bytes.h"
#include "ledger/merkle.h"

namespace alidrone::ledger {

enum class EntryKind : std::uint8_t {
  kAuditEvent = 1,
  kPoaAnchor = 2,
  kRecorderEvent = 3,
  kReplicatedRequest = 4,
};

const char* to_string(EntryKind kind);

struct LedgerEntry {
  std::uint64_t seq = 0;
  EntryKind kind = EntryKind::kAuditEvent;
  double time = 0.0;  ///< protocol time (never wall clock — replicas must agree)
  crypto::Bytes payload;

  /// Canonical encoding: u64 seq, u8 kind, f64 time, length-prefixed
  /// payload. This is the byte string both hashes and segment files
  /// commit to; any representational change is a format break.
  crypto::Bytes canonical() const;
  std::size_t canonical_size() const { return 8 + 1 + 8 + 4 + payload.size(); }

  /// Strict decode of canonical(); rejects trailing bytes and unknown
  /// kinds.
  static std::optional<LedgerEntry> parse(std::span<const std::uint8_t> data);

  /// SHA-256(0x00 || canonical()).
  Digest leaf_hash() const;
};

/// SHA-256(0x01 || prev || leaf): the running chain commitment.
Digest chain_link(const Digest& prev, const Digest& leaf);

}  // namespace alidrone::ledger
