// ReliableChannel — retrying, circuit-breaking wrapper around
// net::Transport::request (the in-process bus or a socket client alike).
//
// One logical request = up to RetryPolicy::max_attempts bus attempts,
// separated by capped exponential backoff "slept" on the scenario's
// SimClock. Every endpoint gets its own CircuitBreaker so a dead Auditor
// endpoint fails fast instead of burning the deadline budget, and every
// logical request carries a deterministic idempotency id (a digest of
// endpoint + payload) — retries of the same logical request are
// byte-identical on the wire, which is what lets the server deduplicate
// them by content.
//
// With no faults injected the channel is a strict pass-through: exactly
// one bus attempt per logical request and zero clock advances — the
// counters prove it. Counters live in an obs::MetricsRegistry (instance
// scope "resilience.channel"); Counters is a point-in-time view.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "crypto/bytes.h"
#include "crypto/random.h"
#include "net/transport.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "resilience/circuit_breaker.h"
#include "resilience/retry_policy.h"
#include "resilience/sim_clock.h"

namespace alidrone::resilience {

class ReliableChannel {
 public:
  struct Config {
    RetryPolicy retry;
    CircuitBreaker::Config breaker;
    std::uint64_t seed = 1;  ///< drives backoff jitter
    /// Registry for the channel's counters (process-wide when null).
    obs::MetricsRegistry* metrics = nullptr;
    /// Trace retries and breaker transitions (also handed to the bus).
    obs::FlightRecorder* trace = nullptr;
  };

  /// Result of one logical request.
  struct Outcome {
    bool ok = false;
    crypto::Bytes response;
    std::string error;           ///< "" on success
    std::uint32_t attempts = 0;  ///< bus attempts actually made
    bool circuit_open = false;   ///< failed fast on an open breaker
  };

  struct Counters {
    std::uint64_t requests = 0;   ///< logical requests issued
    std::uint64_t attempts = 0;   ///< bus attempts made
    std::uint64_t retries = 0;    ///< attempts beyond each request's first
    std::uint64_t successes = 0;
    std::uint64_t failures = 0;   ///< logical failures (exhausted/deadline/open)
    std::uint64_t breaker_fast_fails = 0;  ///< requests refused by an open breaker
    /// kRetryLater backpressure replies received. Each one is retried with
    /// backoff but never charged to the circuit breaker: the server
    /// answered, it just had no capacity.
    std::uint64_t retry_later_replies = 0;
    /// Attempts that died on RetryPolicy::attempt_timeout_s — a hung
    /// socket, not a refused one. Charged to the breaker and retried like
    /// any timeout, but counted separately so a stalling peer is
    /// distinguishable from a dead one in the metrics.
    std::uint64_t deadline_expired = 0;
  };

  /// The bus and clock are borrowed and must outlive the channel. The
  /// channel wires the clock in as the bus's time authority so
  /// fault-schedule windows, injected latency and breaker cool-downs
  /// share one timeline.
  ReliableChannel(net::Transport& bus, SimClock& clock);
  ReliableChannel(net::Transport& bus, SimClock& clock, Config config);

  /// Send with retries. Never throws for transport faults — a dropped or
  /// lost message becomes a retry, an exhausted budget becomes
  /// Outcome{ok=false}.
  Outcome request(const std::string& endpoint, const crypto::Bytes& payload);

  /// Deterministic idempotency id: retries of the same logical request
  /// share it, distinct requests (or endpoints) get fresh ones. This is
  /// the digest servers use for content-based dedup.
  static crypto::Bytes request_id(const std::string& endpoint,
                                  const crypto::Bytes& payload);

  /// Point-in-time snapshot of the channel's registry counters.
  Counters counters() const;
  /// Sum of trips across all per-endpoint breakers.
  std::uint64_t breaker_trips() const;
  /// Breaker for an endpoint; nullptr before its first request.
  const CircuitBreaker* breaker(const std::string& endpoint) const;

  net::Transport& bus() { return bus_; }
  SimClock& clock() { return clock_; }
  const Config& config() const { return config_; }

 private:
  net::Transport& bus_;
  SimClock& clock_;
  Config config_;
  crypto::DeterministicRandom jitter_rng_;
  std::map<std::string, CircuitBreaker> breakers_;
  // Registry-backed counters (the one source of truth for this channel).
  obs::Counter* requests_;
  obs::Counter* attempts_;
  obs::Counter* retries_;
  obs::Counter* successes_;
  obs::Counter* failures_;
  obs::Counter* breaker_fast_fails_;
  obs::Counter* retry_later_replies_;
  obs::Counter* deadline_expired_;
};

}  // namespace alidrone::resilience
