#include "resilience/circuit_breaker.h"

#include <utility>

namespace alidrone::resilience {

void CircuitBreaker::bind_trace(obs::FlightRecorder* recorder,
                                std::string label) {
  recorder_ = recorder;
  trace_label_ = std::move(label);
}

void CircuitBreaker::transition(State next, double now) {
  if (recorder_ != nullptr && next != state_) {
    recorder_->record(obs::TraceKind::kBreakerTransition, now,
                      static_cast<std::uint64_t>(state_),
                      static_cast<std::uint64_t>(next), trace_label_);
  }
  state_ = next;
}

void CircuitBreaker::trip(double now) {
  transition(State::kOpen, now);
  opened_at_ = now;
  consecutive_failures_ = 0;
  half_open_successes_ = 0;
  ++trips_;
}

bool CircuitBreaker::allow(double now) {
  if (state_ == State::kOpen) {
    if (now - opened_at_ < config_.cooldown_s) {
      ++rejections_;
      return false;
    }
    transition(State::kHalfOpen, now);
    half_open_successes_ = 0;
  }
  return true;
}

void CircuitBreaker::on_success() {
  if (state_ == State::kHalfOpen) {
    if (++half_open_successes_ >= config_.close_after_successes) {
      transition(State::kClosed, clock_now());
      consecutive_failures_ = 0;
    }
    return;
  }
  consecutive_failures_ = 0;
}

void CircuitBreaker::on_failure(double now) {
  if (state_ == State::kHalfOpen) {
    trip(now);  // the probe failed: back to a full cool-down
    return;
  }
  if (state_ == State::kClosed && ++consecutive_failures_ >= config_.failure_threshold) {
    trip(now);
  }
}

std::string to_string(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed: return "closed";
    case CircuitBreaker::State::kOpen: return "open";
    case CircuitBreaker::State::kHalfOpen: return "half-open";
  }
  return "?";
}

}  // namespace alidrone::resilience
