#include "resilience/circuit_breaker.h"

namespace alidrone::resilience {

void CircuitBreaker::trip(double now) {
  state_ = State::kOpen;
  opened_at_ = now;
  consecutive_failures_ = 0;
  half_open_successes_ = 0;
  ++trips_;
}

bool CircuitBreaker::allow(double now) {
  if (state_ == State::kOpen) {
    if (now - opened_at_ < config_.cooldown_s) {
      ++rejections_;
      return false;
    }
    state_ = State::kHalfOpen;
    half_open_successes_ = 0;
  }
  return true;
}

void CircuitBreaker::on_success() {
  if (state_ == State::kHalfOpen) {
    if (++half_open_successes_ >= config_.close_after_successes) {
      state_ = State::kClosed;
      consecutive_failures_ = 0;
    }
    return;
  }
  consecutive_failures_ = 0;
}

void CircuitBreaker::on_failure(double now) {
  if (state_ == State::kHalfOpen) {
    trip(now);  // the probe failed: back to a full cool-down
    return;
  }
  if (state_ == State::kClosed && ++consecutive_failures_ >= config_.failure_threshold) {
    trip(now);
  }
}

std::string to_string(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed: return "closed";
    case CircuitBreaker::State::kOpen: return "open";
    case CircuitBreaker::State::kHalfOpen: return "half-open";
  }
  return "?";
}

}  // namespace alidrone::resilience
