#include "resilience/retry_policy.h"

#include <algorithm>
#include <cmath>

namespace alidrone::resilience {

double RetryPolicy::backoff_after(std::uint32_t attempt,
                                  crypto::RandomSource& rng) const {
  const double jitter_draw = rng.uniform_double();  // always consume one
  if (attempt == 0) attempt = 1;
  double backoff = initial_backoff_s *
                   std::pow(backoff_multiplier, static_cast<double>(attempt - 1));
  backoff = std::min(backoff, max_backoff_s);
  if (jitter_fraction > 0.0) {
    backoff *= 1.0 + jitter_fraction * (2.0 * jitter_draw - 1.0);
  }
  return std::max(backoff, 0.0);
}

}  // namespace alidrone::resilience
