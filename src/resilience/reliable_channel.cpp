#include "resilience/reliable_channel.h"

#include <stdexcept>

#include "crypto/sha256.h"

namespace alidrone::resilience {

ReliableChannel::ReliableChannel(net::Transport& bus, SimClock& clock)
    : ReliableChannel(bus, clock, Config{}) {}

ReliableChannel::ReliableChannel(net::Transport& bus, SimClock& clock,
                                 Config config)
    : bus_(bus), clock_(clock), config_(config), jitter_rng_(config.seed) {
  bus_.set_clock(&clock_);
  if (config_.trace != nullptr) bus_.set_trace(config_.trace);
  obs::MetricsRegistry& reg = config_.metrics != nullptr
                                  ? *config_.metrics
                                  : obs::MetricsRegistry::global();
  const std::string scope = reg.instance_scope("resilience.channel");
  requests_ = &reg.counter(scope + ".requests");
  attempts_ = &reg.counter(scope + ".attempts");
  retries_ = &reg.counter(scope + ".retries");
  successes_ = &reg.counter(scope + ".successes");
  failures_ = &reg.counter(scope + ".failures");
  breaker_fast_fails_ = &reg.counter(scope + ".breaker_fast_fails");
  retry_later_replies_ = &reg.counter(scope + ".retry_later_replies");
  deadline_expired_ = &reg.counter(scope + ".deadline_expired");
}

crypto::Bytes ReliableChannel::request_id(const std::string& endpoint,
                                          const crypto::Bytes& payload) {
  crypto::Sha256 hasher;
  crypto::Bytes name(endpoint.begin(), endpoint.end());
  name.push_back(0x00);  // unambiguous (endpoint, payload) boundary
  hasher.update(name);
  hasher.update(payload);
  const auto digest = hasher.finalize();
  return crypto::Bytes(digest.begin(), digest.begin() + 16);
}

const CircuitBreaker* ReliableChannel::breaker(const std::string& endpoint) const {
  const auto it = breakers_.find(endpoint);
  return it == breakers_.end() ? nullptr : &it->second;
}

std::uint64_t ReliableChannel::breaker_trips() const {
  std::uint64_t trips = 0;
  for (const auto& [endpoint, breaker] : breakers_) trips += breaker.trips();
  return trips;
}

ReliableChannel::Counters ReliableChannel::counters() const {
  Counters c;
  c.requests = requests_->value();
  c.attempts = attempts_->value();
  c.retries = retries_->value();
  c.successes = successes_->value();
  c.failures = failures_->value();
  c.breaker_fast_fails = breaker_fast_fails_->value();
  c.retry_later_replies = retry_later_replies_->value();
  c.deadline_expired = deadline_expired_->value();
  return c;
}

ReliableChannel::Outcome ReliableChannel::request(const std::string& endpoint,
                                                  const crypto::Bytes& payload) {
  requests_->increment();
  Outcome outcome;
  auto breaker_it = breakers_.find(endpoint);
  if (breaker_it == breakers_.end()) {
    breaker_it = breakers_.emplace(endpoint, CircuitBreaker(config_.breaker)).first;
    breaker_it->second.bind_clock(&clock_);
    breaker_it->second.bind_trace(config_.trace, endpoint);
  }
  CircuitBreaker& breaker = breaker_it->second;

  const double start = clock_.now();
  const RetryPolicy& retry = config_.retry;
  for (std::uint32_t attempt = 1; attempt <= retry.max_attempts; ++attempt) {
    if (!breaker.allow()) {
      // Fail fast: the endpoint is known-dead until the cool-down ends.
      // Store-and-forward callers simply drain again later.
      breaker_fast_fails_->increment();
      failures_->increment();
      outcome.circuit_open = true;
      outcome.error = "circuit open for '" + endpoint + "'";
      return outcome;
    }

    attempts_->increment();
    if (attempt > 1) {
      retries_->increment();
      if (config_.trace != nullptr) {
        config_.trace->record(obs::TraceKind::kChannelRetry, clock_.now(),
                              attempt, 0, endpoint);
      }
    }
    ++outcome.attempts;
    try {
      outcome.response =
          retry.attempt_timeout_s > 0.0
              ? bus_.request(endpoint, payload, retry.attempt_timeout_s)
              : bus_.request(endpoint, payload);
      if (net::is_retry_later(outcome.response)) {
        // Explicit backpressure: the server is alive but at capacity, so
        // the reply counts for the breaker (no trip) while the logical
        // request backs off and retries like any transient fault.
        retry_later_replies_->increment();
        breaker.on_success();
        outcome.response.clear();
        outcome.error = "'" + endpoint + "' is busy (retry later)";
      } else {
        breaker.on_success();
        successes_->increment();
        outcome.ok = true;
        return outcome;
      }
    } catch (const net::DeadlineExpired&) {
      // The per-attempt deadline fired with the socket hung mid-request:
      // the peer may still answer (too late) or may have died — either
      // way the breaker charges it and the retry loop regains control.
      deadline_expired_->increment();
      breaker.on_failure();
      outcome.error = "request to '" + endpoint + "' hit attempt deadline";
    } catch (const net::TimeoutError&) {
      breaker.on_failure();
      outcome.error = "request to '" + endpoint + "' timed out";
    } catch (const std::out_of_range& e) {
      // Unknown endpoint: a wiring bug, not a transient fault — do not
      // retry and do not charge the breaker.
      failures_->increment();
      outcome.error = e.what();
      return outcome;
    }

    if (attempt == retry.max_attempts) break;  // budget spent
    const double backoff = retry.backoff_after(attempt, jitter_rng_);
    if (retry.deadline_s > 0.0 &&
        clock_.now() + backoff - start > retry.deadline_s) {
      outcome.error += " (deadline exceeded)";
      break;
    }
    clock_.advance(backoff);  // the backoff sleep, on simulated time
  }
  failures_->increment();
  return outcome;
}

}  // namespace alidrone::resilience
