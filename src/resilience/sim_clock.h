// Deterministic simulated clock for the resilience layer.
//
// Retries, backoff sleeps, circuit-breaker cool-downs and fault-schedule
// windows all need a notion of "now" — but wall clocks make tests flaky
// and chaos runs irreproducible. SimClock is the concrete
// obs::VirtualClock a scenario shares between the ReliableChannel (which
// "sleeps" by advancing it), the MessageBus fault schedule (which reads
// and advances it through obs::VirtualClock), and the CpuAccountant's
// wall-time integration: the same seed and schedule always replay the
// same interleaving of outages, backoffs and recoveries.
#pragma once

#include <algorithm>
#include <cstdint>

#include "obs/clock.h"

namespace alidrone::resilience {

class SimClock final : public obs::VirtualClock {
 public:
  explicit SimClock(double start_time = 0.0) : now_(start_time) {}

  double now() const override { return now_; }

  /// Advance by `seconds` (negative deltas are ignored — time is
  /// monotonic). Returns the new time.
  double advance(double seconds) override {
    now_ += std::max(seconds, 0.0);
    ++advances_;
    return now_;
  }

  /// Jump forward to an absolute time (no-op when `time` is in the past).
  void advance_to(double time) { now_ = std::max(now_, time); }

  /// How many times the clock was advanced — backoff sleeps show up here,
  /// so a zero-fault run proves itself sleep-free.
  std::uint64_t advances() const { return advances_; }

 private:
  double now_;
  std::uint64_t advances_ = 0;
};

}  // namespace alidrone::resilience
