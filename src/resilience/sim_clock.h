// Deterministic simulated clock for the resilience layer.
//
// Retries, backoff sleeps, circuit-breaker cool-downs and fault-schedule
// windows all need a notion of "now" — but wall clocks make tests flaky
// and chaos runs irreproducible. SimClock is the concrete
// obs::VirtualClock a scenario shares between the ReliableChannel (which
// "sleeps" by advancing it), the MessageBus fault schedule (which reads
// and advances it through obs::VirtualClock), and the CpuAccountant's
// wall-time integration: the same seed and schedule always replay the
// same interleaving of outages, backoffs and recoveries.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>

#include "obs/clock.h"

namespace alidrone::resilience {

class SimClock final : public obs::VirtualClock {
 public:
  explicit SimClock(double start_time = 0.0) : now_(start_time) {}

  double now() const override { return now_.load(std::memory_order_acquire); }

  /// Advance by `seconds` (negative deltas are ignored — time is
  /// monotonic). Returns the new time. The fields are atomic because a
  /// TransportServer's reactor threads read the chaos clock while the
  /// test thread advances it; writers are still expected to be single
  /// (tests advance from one thread).
  double advance(double seconds) override {
    double next = now_.load(std::memory_order_relaxed) + std::max(seconds, 0.0);
    now_.store(next, std::memory_order_release);
    advances_.fetch_add(1, std::memory_order_relaxed);
    return next;
  }

  /// Jump forward to an absolute time (no-op when `time` is in the past).
  void advance_to(double time) {
    now_.store(std::max(now_.load(std::memory_order_relaxed), time),
               std::memory_order_release);
  }

  /// How many times the clock was advanced — backoff sleeps show up here,
  /// so a zero-fault run proves itself sleep-free.
  std::uint64_t advances() const {
    return advances_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> now_;
  std::atomic<std::uint64_t> advances_{0};
};

}  // namespace alidrone::resilience
