// Deterministic simulated clock for the resilience layer.
//
// Retries, backoff sleeps, circuit-breaker cool-downs and fault-schedule
// windows all need a notion of "now" — but wall clocks make tests flaky
// and chaos runs irreproducible. SimClock is the single time authority a
// scenario shares between the ReliableChannel (which "sleeps" by
// advancing it) and the MessageBus fault schedule (which reads it through
// a time source hook): the same seed and schedule always replay the same
// interleaving of outages, backoffs and recoveries.
#pragma once

#include <algorithm>
#include <cstdint>

namespace alidrone::resilience {

class SimClock {
 public:
  explicit SimClock(double start_time = 0.0) : now_(start_time) {}

  double now() const { return now_; }

  /// Advance by `seconds` (negative deltas are ignored — time is
  /// monotonic). Returns the new time.
  double advance(double seconds) {
    now_ += std::max(seconds, 0.0);
    ++advances_;
    return now_;
  }

  /// Jump forward to an absolute time (no-op when `time` is in the past).
  void advance_to(double time) { now_ = std::max(now_, time); }

  /// How many times the clock was advanced — backoff sleeps show up here,
  /// so a zero-fault run proves itself sleep-free.
  std::uint64_t advances() const { return advances_; }

 private:
  double now_;
  std::uint64_t advances_ = 0;
};

}  // namespace alidrone::resilience
