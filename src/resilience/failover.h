// resilience::EndpointFailover — an ordered list of server prefixes and a
// cursor over them.
//
// A replicated service binds the same methods under several bus prefixes
// ("auditor0", "auditor1", ...). A client holds one EndpointFailover,
// resolves every request through endpoint(), and rotate()s to the next
// prefix when the active server stops answering (channel failure or open
// breaker). Rotation wraps: a revived primary gets retried after the
// list cycles. The type is deliberately dumb — no health checks, no
// timers — so failover policy stays in (and is testable at) the caller.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace alidrone::resilience {

class EndpointFailover {
 public:
  EndpointFailover() : prefixes_{"auditor"} {}
  explicit EndpointFailover(std::vector<std::string> prefixes)
      : prefixes_(std::move(prefixes)) {
    if (prefixes_.empty()) prefixes_.emplace_back("auditor");
  }

  const std::string& active() const { return prefixes_[active_]; }
  std::size_t active_index() const { return active_; }
  std::size_t size() const { return prefixes_.size(); }
  const std::vector<std::string>& prefixes() const { return prefixes_; }

  /// "<active prefix>.<method>".
  std::string endpoint(std::string_view method) const {
    std::string out = active();
    out.push_back('.');
    out.append(method);
    return out;
  }

  /// Advance to the next prefix (wrapping); returns the new active index.
  /// A single-entry list rotates onto itself and counts nothing.
  std::size_t rotate() {
    if (prefixes_.size() > 1) {
      active_ = (active_ + 1) % prefixes_.size();
      ++rotations_;
    }
    return active_;
  }

  std::uint64_t rotations() const { return rotations_; }

 private:
  std::vector<std::string> prefixes_;
  std::size_t active_ = 0;
  std::uint64_t rotations_ = 0;
};

}  // namespace alidrone::resilience
