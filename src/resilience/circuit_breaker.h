// Circuit breaker (closed / open / half-open) for one endpoint.
//
// During a sustained outage, blind retries only add load and burn the
// caller's deadline budget. The breaker counts consecutive failures in
// the closed state; at the trip threshold it opens and fails fast for a
// cool-down period, then lets a limited number of probes through
// (half-open). Probe successes close it again; a probe failure re-opens
// it with a fresh cool-down. Transitions are driven either by explicit
// `now` arguments or by a bound obs::Clock — under SimClock both are
// deterministic. With a FlightRecorder bound, every state transition
// leaves a kBreakerTransition trace event.
#pragma once

#include <cstdint>
#include <string>

#include "obs/clock.h"
#include "obs/flight_recorder.h"

namespace alidrone::resilience {

class CircuitBreaker {
 public:
  enum class State : std::uint8_t { kClosed, kOpen, kHalfOpen };

  struct Config {
    /// Consecutive failures (closed state) before tripping open.
    std::uint32_t failure_threshold = 5;
    /// Seconds the breaker stays open before admitting probes.
    double cooldown_s = 5.0;
    /// Probe successes required in half-open before closing.
    std::uint32_t close_after_successes = 1;
  };

  CircuitBreaker() : CircuitBreaker(Config{}) {}
  explicit CircuitBreaker(Config config) : config_(config) {}

  /// Bind the time authority so the argument-less allow()/on_failure()
  /// overloads read "now" from the scenario clock instead of requiring
  /// every caller to thread it through.
  void bind_clock(const obs::Clock* clock) { clock_ = clock; }

  /// Trace state transitions into `recorder`, labelled `label` (usually
  /// the endpoint name). Null stops tracing.
  void bind_trace(obs::FlightRecorder* recorder, std::string label);

  /// May a request be sent at time `now`? Transitions open -> half-open
  /// once the cool-down has elapsed. Returns false while open (fail fast).
  bool allow(double now);
  /// Same, reading "now" from the bound clock (0 when unbound).
  bool allow() { return allow(clock_now()); }

  void on_success();
  void on_failure(double now);
  void on_failure() { on_failure(clock_now()); }

  State state() const { return state_; }
  /// Times the breaker transitioned closed/half-open -> open.
  std::uint64_t trips() const { return trips_; }
  /// Requests refused while open.
  std::uint64_t rejections() const { return rejections_; }

  const Config& config() const { return config_; }

 private:
  Config config_;
  State state_ = State::kClosed;
  std::uint32_t consecutive_failures_ = 0;
  std::uint32_t half_open_successes_ = 0;
  double opened_at_ = 0.0;
  std::uint64_t trips_ = 0;
  std::uint64_t rejections_ = 0;
  const obs::Clock* clock_ = nullptr;
  obs::FlightRecorder* recorder_ = nullptr;
  std::string trace_label_;

  double clock_now() const { return clock_ != nullptr ? clock_->now() : 0.0; }
  void transition(State next, double now);
  void trip(double now);
};

std::string to_string(CircuitBreaker::State state);

}  // namespace alidrone::resilience
