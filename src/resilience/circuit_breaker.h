// Circuit breaker (closed / open / half-open) for one endpoint.
//
// During a sustained outage, blind retries only add load and burn the
// caller's deadline budget. The breaker counts consecutive failures in
// the closed state; at the trip threshold it opens and fails fast for a
// cool-down period, then lets a limited number of probes through
// (half-open). Probe successes close it again; a probe failure re-opens
// it with a fresh cool-down. All transitions are driven by the caller's
// clock, so behaviour is deterministic under SimClock.
#pragma once

#include <cstdint>
#include <string>

namespace alidrone::resilience {

class CircuitBreaker {
 public:
  enum class State : std::uint8_t { kClosed, kOpen, kHalfOpen };

  struct Config {
    /// Consecutive failures (closed state) before tripping open.
    std::uint32_t failure_threshold = 5;
    /// Seconds the breaker stays open before admitting probes.
    double cooldown_s = 5.0;
    /// Probe successes required in half-open before closing.
    std::uint32_t close_after_successes = 1;
  };

  CircuitBreaker() : CircuitBreaker(Config{}) {}
  explicit CircuitBreaker(Config config) : config_(config) {}

  /// May a request be sent at time `now`? Transitions open -> half-open
  /// once the cool-down has elapsed. Returns false while open (fail fast).
  bool allow(double now);

  void on_success();
  void on_failure(double now);

  State state() const { return state_; }
  /// Times the breaker transitioned closed/half-open -> open.
  std::uint64_t trips() const { return trips_; }
  /// Requests refused while open.
  std::uint64_t rejections() const { return rejections_; }

  const Config& config() const { return config_; }

 private:
  Config config_;
  State state_ = State::kClosed;
  std::uint32_t consecutive_failures_ = 0;
  std::uint32_t half_open_successes_ = 0;
  double opened_at_ = 0.0;
  std::uint64_t trips_ = 0;
  std::uint64_t rejections_ = 0;

  void trip(double now);
};

std::string to_string(CircuitBreaker::State state);

}  // namespace alidrone::resilience
