// Capped exponential backoff with seeded jitter and a per-request
// deadline — the client half of making every drone <-> Auditor
// interaction recoverable.
//
// Backoff for attempt k (1-based; attempt 1 is the initial try) is
//   min(initial * multiplier^(k-1), max_backoff) * jitter
// with jitter drawn uniformly from [1 - jitter_fraction, 1 + jitter_fraction]
// out of a caller-supplied deterministic stream, so retry storms from many
// drones decorrelate yet every test run reproduces exactly.
#pragma once

#include <cstdint>

#include "crypto/random.h"

namespace alidrone::resilience {

struct RetryPolicy {
  /// Total tries including the first one; 1 disables retries.
  std::uint32_t max_attempts = 5;
  double initial_backoff_s = 0.05;
  double backoff_multiplier = 2.0;
  double max_backoff_s = 2.0;
  /// Backoff is scaled by a factor uniform in [1-j, 1+j]; 0 disables.
  double jitter_fraction = 0.1;
  /// Budget for the whole request (first attempt through last retry),
  /// measured on the scenario clock. <= 0 means no deadline.
  double deadline_s = 30.0;
  /// Per-attempt deadline handed to the transport (socket clients honor
  /// it and throw net::DeadlineExpired when a hung peer eats the budget;
  /// the synchronous in-process bus ignores it). <= 0 disables — correct
  /// for simulation, required > 0 against real sockets or one stalled
  /// read blocks the whole retry loop forever.
  double attempt_timeout_s = 0.0;

  /// Backoff to sleep after a failed `attempt` (1-based) before the next
  /// try. Draws one jitter sample from `rng` even when jitter_fraction is
  /// 0 so the stream position is schedule-independent.
  double backoff_after(std::uint32_t attempt, crypto::RandomSource& rng) const;
};

}  // namespace alidrone::resilience
