// GPS trace recording and replay.
//
// The paper's field studies record full GPS traces while driving, then
// replay them into the GPS Sampler (Section VI-A1). GpsTrace is that
// artifact: an ordered list of fixes with CSV persistence and a
// PositionSource adapter that linearly interpolates between fixes.
#pragma once

#include <string>
#include <vector>

#include "gps/fix.h"
#include "gps/receiver_sim.h"

namespace alidrone::gps {

class GpsTrace {
 public:
  GpsTrace() = default;
  explicit GpsTrace(std::vector<GpsFix> fixes);

  void append(const GpsFix& fix);

  const std::vector<GpsFix>& fixes() const { return fixes_; }
  bool empty() const { return fixes_.empty(); }
  std::size_t size() const { return fixes_.size(); }

  double start_time() const;
  double end_time() const;
  double duration() const;

  /// Total path length in meters (sum of haversine legs).
  double path_length_m() const;

  /// State at `unix_time`, clamped to the trace ends, with linear
  /// interpolation between fixes. Throws std::logic_error when empty.
  GpsFix at(double unix_time) const;

  /// Adapter usable as GpsReceiverSim's PositionSource.
  PositionSource as_position_source() const;

  /// CSV round-trip: "unix_time,lat,lon,alt,speed_mps,course_deg" rows
  /// with a header line. Throws std::runtime_error on I/O failure.
  void save_csv(const std::string& path) const;
  static GpsTrace load_csv(const std::string& path);

 private:
  std::vector<GpsFix> fixes_;  // kept sorted by unix_time
};

}  // namespace alidrone::gps
