// Simulated GPS receiver (substitution for the Adafruit Ultimate GPS).
//
// Emits framed $GPRMC (+ optional $GPGGA) NMEA sentences at a configurable
// update rate in [1 Hz, 5 Hz], the range the paper's hardware supports.
// Positions come from a caller-supplied PositionSource (a flight route, a
// replayed trace, ...). Fault injection reproduces the missed-update
// behaviour observed in the paper's residential field study, where the
// receiver skipped an update and the effective rate dropped from 5 Hz to
// 2.5 Hz at the worst possible moment.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "crypto/random.h"
#include "gps/fix.h"

namespace alidrone::gps {

/// Maps an absolute time to the true vehicle state at that time.
using PositionSource = std::function<GpsFix(double unix_time)>;

class GpsReceiverSim {
 public:
  struct Config {
    double update_rate_hz = 5.0;     ///< hardware range: [1, 5] Hz
    double miss_probability = 0.0;   ///< chance an update is silently skipped
    double noise_std_m = 0.0;        ///< per-axis Gaussian position noise
    double start_time = 0.0;         ///< unix time of the first update
    bool emit_gga = false;           ///< also emit $GPGGA (altitude)
    bool emit_vtg = false;           ///< also emit $GPVTG (course/speed)
    std::uint64_t seed = 1;          ///< drives misses and noise
    /// Deterministic fault injection: updates scheduled within half a
    /// period of any of these instants are skipped (reproduces the paper's
    /// residential missed-update event at the 25 ft closest approach).
    std::vector<double> scheduled_miss_times;
    /// Chance that an emitted sentence leaves the UART with a flipped
    /// payload character, so its checksum no longer matches and the driver
    /// must reject it. Drawn from a stream independent of misses/noise:
    /// enabling corruption does not perturb the emitted trajectory.
    double corrupt_probability = 0.0;
  };

  GpsReceiverSim(Config config, PositionSource source);

  /// Advance the receiver clock to `unix_time`, returning every NMEA
  /// sentence emitted by updates scheduled in (previous_time, unix_time].
  std::vector<std::string> advance_to(double unix_time);

  /// Time of the next scheduled measurement update.
  double next_update_time() const {
    return config_.start_time + static_cast<double>(tick_) * update_period();
  }

  /// Step exactly one scheduled update (the one at next_update_time())
  /// and return its sentences — the step-to-time twin of advance_to()
  /// for actor-style drivers that pace themselves on the update grid.
  std::vector<std::string> advance_one() {
    return advance_to(next_update_time());
  }

  double update_period() const { return 1.0 / config_.update_rate_hz; }
  const Config& config() const { return config_; }

  /// Number of updates skipped by fault injection so far.
  int missed_updates() const { return missed_; }

  /// Number of sentences emitted with a deliberately broken checksum.
  int corrupted_sentences() const { return corrupted_; }

 private:
  Config config_;
  PositionSource source_;
  crypto::DeterministicRandom rng_;
  crypto::DeterministicRandom corrupt_rng_;
  // Update instants are start_time + tick * period, computed from the
  // integer tick so no floating-point error accumulates over long runs.
  std::uint64_t tick_ = 0;
  int missed_ = 0;
  int corrupted_ = 0;

  double gaussian();
  /// Maybe flip one payload character of `sentence` (checksum-breaking).
  void maybe_corrupt(std::string& sentence);
  std::string make_rmc(const GpsFix& fix) const;
  std::string make_gga(const GpsFix& fix) const;
  std::string make_vtg(const GpsFix& fix) const;
};

}  // namespace alidrone::gps
