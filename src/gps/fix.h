// A parsed GPS fix, the unit of data flowing from receiver to sampler.
#pragma once

#include <cstdint>

#include "geo/geopoint.h"

namespace alidrone::gps {

/// One GPS measurement. `unix_time` is seconds since the Unix epoch (UTC);
/// the paper's samples S = (lat, lon, t) are exactly (position, unix_time).
struct GpsFix {
  geo::GeoPoint position;
  double altitude_m = 0.0;
  double unix_time = 0.0;
  double speed_mps = 0.0;
  double course_deg = 0.0;
  bool valid = true;

  bool operator==(const GpsFix&) const = default;
};

/// Converts a Unix timestamp to calendar day + seconds-of-day (UTC),
/// the representation NMEA sentences carry.
struct CivilTime {
  int year = 1970;
  int month = 1;
  int day = 1;
  int hour = 0;
  int minute = 0;
  double second = 0.0;
};

CivilTime civil_from_unix(double unix_time);

}  // namespace alidrone::gps
