#include "gps/trace.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace alidrone::gps {

GpsTrace::GpsTrace(std::vector<GpsFix> fixes) : fixes_(std::move(fixes)) {
  std::stable_sort(fixes_.begin(), fixes_.end(),
                   [](const GpsFix& a, const GpsFix& b) { return a.unix_time < b.unix_time; });
}

void GpsTrace::append(const GpsFix& fix) {
  if (!fixes_.empty() && fix.unix_time < fixes_.back().unix_time) {
    throw std::invalid_argument("GpsTrace::append: timestamps must be non-decreasing");
  }
  fixes_.push_back(fix);
}

double GpsTrace::start_time() const { return fixes_.empty() ? 0.0 : fixes_.front().unix_time; }
double GpsTrace::end_time() const { return fixes_.empty() ? 0.0 : fixes_.back().unix_time; }
double GpsTrace::duration() const { return end_time() - start_time(); }

double GpsTrace::path_length_m() const {
  double total = 0.0;
  for (std::size_t i = 1; i < fixes_.size(); ++i) {
    total += geo::haversine_distance(fixes_[i - 1].position, fixes_[i].position);
  }
  return total;
}

GpsFix GpsTrace::at(double unix_time) const {
  if (fixes_.empty()) throw std::logic_error("GpsTrace::at: empty trace");
  if (unix_time <= fixes_.front().unix_time) return fixes_.front();
  if (unix_time >= fixes_.back().unix_time) return fixes_.back();

  const auto it = std::lower_bound(
      fixes_.begin(), fixes_.end(), unix_time,
      [](const GpsFix& f, double t) { return f.unix_time < t; });
  const GpsFix& hi = *it;
  const GpsFix& lo = *(it - 1);
  const double dt = hi.unix_time - lo.unix_time;
  if (dt <= 0.0) return lo;
  const double w = (unix_time - lo.unix_time) / dt;

  GpsFix out = lo;
  out.unix_time = unix_time;
  out.position.lat_deg = lo.position.lat_deg + w * (hi.position.lat_deg - lo.position.lat_deg);
  out.position.lon_deg = lo.position.lon_deg + w * (hi.position.lon_deg - lo.position.lon_deg);
  out.altitude_m = lo.altitude_m + w * (hi.altitude_m - lo.altitude_m);
  out.speed_mps = lo.speed_mps + w * (hi.speed_mps - lo.speed_mps);
  out.course_deg = hi.course_deg;
  return out;
}

PositionSource GpsTrace::as_position_source() const {
  // Copy the fixes so the source outlives this object safely.
  auto fixes = fixes_;
  return [trace = GpsTrace(std::move(fixes))](double t) { return trace.at(t); };
}

void GpsTrace::save_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("GpsTrace::save_csv: cannot open " + path);
  out << "unix_time,lat_deg,lon_deg,alt_m,speed_mps,course_deg\n";
  out.precision(12);
  for (const GpsFix& f : fixes_) {
    out << f.unix_time << ',' << f.position.lat_deg << ',' << f.position.lon_deg
        << ',' << f.altitude_m << ',' << f.speed_mps << ',' << f.course_deg << '\n';
  }
  if (!out) throw std::runtime_error("GpsTrace::save_csv: write failed for " + path);
}

GpsTrace GpsTrace::load_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("GpsTrace::load_csv: cannot open " + path);

  GpsTrace trace;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (first) {
      first = false;
      if (line.rfind("unix_time", 0) == 0) continue;  // header
    }
    if (line.empty()) continue;
    std::istringstream ss(line);
    GpsFix f;
    char comma;
    if (!(ss >> f.unix_time >> comma >> f.position.lat_deg >> comma >>
          f.position.lon_deg >> comma >> f.altitude_m >> comma >> f.speed_mps >>
          comma >> f.course_deg)) {
      throw std::runtime_error("GpsTrace::load_csv: malformed row: " + line);
    }
    trace.append(f);
  }
  return trace;
}

}  // namespace alidrone::gps
