#include "gps/driver.h"

#include "geo/units.h"
#include "nmea/gga.h"
#include "nmea/rmc.h"
#include "nmea/vtg.h"

namespace alidrone::gps {

void GpsDriver::feed(std::string_view sentence) {
  if (const auto rmc = nmea::parse_rmc(sentence)) {
    GpsFix fix;
    fix.position = rmc->position;
    fix.unix_time = rmc->unix_time();
    fix.speed_mps = geo::knots_to_mps(rmc->speed_knots);
    fix.course_deg = rmc->course_deg;
    fix.valid = rmc->valid;
    // Keep the last known altitude (RMC does not carry one).
    if (latest_) fix.altitude_m = latest_->altitude_m;
    latest_ = fix;
    ++sequence_;
    ++accepted_;
    return;
  }
  if (const auto gga = nmea::parse_gga(sentence)) {
    // GGA refreshes altitude but is not a full fix on its own (no date);
    // merge into the current fix when one exists.
    if (latest_) latest_->altitude_m = gga->altitude_m;
    ++accepted_;
    return;
  }
  if (const auto vtg = nmea::parse_vtg(sentence)) {
    // VTG refreshes speed/course between RMC fixes.
    if (latest_) {
      latest_->speed_mps = geo::knots_to_mps(vtg->speed_knots);
      latest_->course_deg = vtg->course_true_deg;
    }
    ++accepted_;
    return;
  }
  ++rejected_;
}

void GpsDriver::feed_bytes(std::string_view bytes) {
  for (const char c : bytes) {
    if (c == '\n') {
      if (!pending_.empty()) {
        feed(pending_);
        pending_.clear();
      }
    } else {
      pending_.push_back(c);
    }
  }
}

std::optional<GpsFix> GpsDriver::get_gps() const { return latest_; }

}  // namespace alidrone::gps
