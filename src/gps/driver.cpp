#include "gps/driver.h"

#include <algorithm>

#include "geo/units.h"
#include "nmea/gga.h"
#include "nmea/rmc.h"
#include "nmea/vtg.h"
#include "obs/metrics.h"

namespace alidrone::gps {

namespace {
// Process-wide aggregates across every driver instance; per-instance
// tallies live on the driver itself.
obs::Counter& accepted_total() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("gps.driver.sentences_accepted");
  return counter;
}
obs::Counter& rejected_total() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("gps.driver.sentences_rejected");
  return counter;
}
obs::Counter& dropped_total() {
  static obs::Counter& counter =
      obs::MetricsRegistry::global().counter("gps.driver.fixes_dropped");
  return counter;
}
}  // namespace

void GpsDriver::feed(std::string_view sentence) {
  if (const auto rmc = nmea::parse_rmc(sentence)) {
    GpsFix fix;
    fix.position = rmc->position;
    fix.unix_time = rmc->unix_time();
    fix.speed_mps = geo::knots_to_mps(rmc->speed_knots);
    fix.course_deg = rmc->course_deg;
    fix.valid = rmc->valid;
    // Keep the last known altitude (RMC does not carry one).
    if (latest_) fix.altitude_m = latest_->altitude_m;
    latest_ = fix;
    if (pending_fixes_.size() >= kPendingCapacity) {
      const GpsFix dropped = pending_fixes_.front();
      pending_fixes_.pop_front();
      ++dropped_fixes_;
      dropped_total().increment();
      if (recorder_ != nullptr) {
        recorder_->record(obs::TraceKind::kGpsFixDropped, dropped.unix_time,
                          dropped_fixes_, pending_fixes_.size(),
                          "gps-overflow");
      }
      if (drop_listener_) drop_listener_(dropped, dropped_fixes_);
    }
    pending_fixes_.push_back(fix);
    ++sequence_;
    ++accepted_;
    accepted_total().increment();
    return;
  }
  if (const auto gga = nmea::parse_gga(sentence)) {
    // GGA refreshes altitude but is not a full fix on its own (no date);
    // merge into the current fix when one exists.
    if (latest_) {
      latest_->altitude_m = gga->altitude_m;
      if (!pending_fixes_.empty()) {
        pending_fixes_.back().altitude_m = gga->altitude_m;
      }
    }
    ++accepted_;
    accepted_total().increment();
    return;
  }
  if (const auto vtg = nmea::parse_vtg(sentence)) {
    // VTG refreshes speed/course between RMC fixes.
    if (latest_) {
      latest_->speed_mps = geo::knots_to_mps(vtg->speed_knots);
      latest_->course_deg = vtg->course_true_deg;
      if (!pending_fixes_.empty()) {
        pending_fixes_.back().speed_mps = latest_->speed_mps;
        pending_fixes_.back().course_deg = latest_->course_deg;
      }
    }
    ++accepted_;
    accepted_total().increment();
    return;
  }
  ++rejected_;
  rejected_total().increment();
}

std::vector<GpsFix> GpsDriver::take_pending(std::size_t max_fixes) {
  std::vector<GpsFix> out;
  const std::size_t n = std::min(max_fixes, pending_fixes_.size());
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(pending_fixes_.front());
    pending_fixes_.pop_front();
  }
  return out;
}

void GpsDriver::feed_bytes(std::string_view bytes) {
  for (const char c : bytes) {
    if (c == '\n') {
      if (!pending_.empty()) {
        feed(pending_);
        pending_.clear();
      }
    } else {
      pending_.push_back(c);
    }
  }
}

std::optional<GpsFix> GpsDriver::get_gps() const { return latest_; }

}  // namespace alidrone::gps
