#include "gps/fix.h"

#include <cmath>

namespace alidrone::gps {

CivilTime civil_from_unix(double unix_time) {
  const double day_seconds_d = std::floor(unix_time / 86400.0);
  const long days = static_cast<long>(day_seconds_d);
  double tod = unix_time - day_seconds_d * 86400.0;

  // Howard Hinnant's civil_from_days.
  const long z = days + 719468;
  const long era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned long doe = static_cast<unsigned long>(z - era * 146097);
  const unsigned long yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const long y = static_cast<long>(yoe) + era * 400;
  const unsigned long doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned long mp = (5 * doy + 2) / 153;
  const unsigned long d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned long m = mp + (mp < 10 ? 3 : -9);

  CivilTime out;
  out.year = static_cast<int>(y + (m <= 2));
  out.month = static_cast<int>(m);
  out.day = static_cast<int>(d);
  out.hour = static_cast<int>(tod / 3600.0);
  tod -= out.hour * 3600.0;
  out.minute = static_cast<int>(tod / 60.0);
  out.second = tod - out.minute * 60.0;
  return out;
}

}  // namespace alidrone::gps
