#include "gps/receiver_sim.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "geo/units.h"
#include "nmea/gga.h"
#include "nmea/rmc.h"
#include "nmea/vtg.h"

namespace alidrone::gps {

GpsReceiverSim::GpsReceiverSim(Config config, PositionSource source)
    : config_(config),
      source_(std::move(source)),
      rng_(config.seed),
      corrupt_rng_(config.seed ^ 0x6e6d6561ULL /* "nmea" */) {
  if (config_.update_rate_hz < 1.0 || config_.update_rate_hz > 5.0) {
    throw std::invalid_argument("GpsReceiverSim: update rate must be in [1, 5] Hz");
  }
  if (!source_) throw std::invalid_argument("GpsReceiverSim: null position source");
}

double GpsReceiverSim::gaussian() {
  // Box-Muller from the deterministic stream.
  const double u1 = std::max(rng_.uniform_double(), 1e-12);
  const double u2 = rng_.uniform_double();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

std::string GpsReceiverSim::make_rmc(const GpsFix& fix) const {
  const CivilTime ct = civil_from_unix(fix.unix_time);
  nmea::RmcSentence rmc;
  rmc.time = {ct.hour, ct.minute, ct.second};
  rmc.valid = fix.valid;
  rmc.position = fix.position;
  rmc.speed_knots = geo::mps_to_knots(fix.speed_mps);
  rmc.course_deg = fix.course_deg;
  rmc.date = {ct.day, ct.month, ct.year};
  return nmea::emit_rmc(rmc);
}

std::string GpsReceiverSim::make_gga(const GpsFix& fix) const {
  const CivilTime ct = civil_from_unix(fix.unix_time);
  nmea::GgaSentence gga;
  gga.time = {ct.hour, ct.minute, ct.second};
  gga.position = fix.position;
  gga.quality = nmea::FixQuality::kGpsFix;
  gga.satellites = 9;
  gga.hdop = 0.9;
  gga.altitude_m = fix.altitude_m;
  return nmea::emit_gga(gga);
}

std::string GpsReceiverSim::make_vtg(const GpsFix& fix) const {
  nmea::VtgSentence vtg;
  // Normalize to [0, 360) and keep the emitted %.1f rendering below 360.
  double course = std::fmod(fix.course_deg, 360.0);
  if (course < 0.0) course += 360.0;
  if (course >= 359.95) course = 0.0;
  vtg.course_true_deg = course;
  vtg.speed_knots = geo::mps_to_knots(fix.speed_mps);
  vtg.speed_kmh = fix.speed_mps * 3.6;
  return nmea::emit_vtg(vtg);
}

void GpsReceiverSim::maybe_corrupt(std::string& sentence) {
  if (config_.corrupt_probability <= 0.0) return;
  if (corrupt_rng_.uniform_double() >= config_.corrupt_probability) return;
  // Flip one character strictly inside the payload ('$'..'*') to a
  // different digit, so the transmitted checksum no longer matches.
  const std::size_t star = sentence.find('*');
  if (star == std::string::npos || star < 2) return;
  const std::size_t index = 1 + static_cast<std::size_t>(
                                    corrupt_rng_.uniform(star - 1));
  char replacement = static_cast<char>('0' + corrupt_rng_.uniform(10));
  if (replacement == sentence[index]) {
    replacement = replacement == '9' ? '0' : static_cast<char>(replacement + 1);
  }
  sentence[index] = replacement;
  ++corrupted_;
}

std::vector<std::string> GpsReceiverSim::advance_to(double unix_time) {
  std::vector<std::string> sentences;
  const double period = update_period();
  // Tolerance scaled for unix-epoch magnitudes (ulp at 1.5e9 is ~2.4e-7).
  while (next_update_time() <= unix_time + 1e-6) {
    const double t = next_update_time();
    ++tick_;

    if (config_.miss_probability > 0.0 &&
        rng_.uniform_double() < config_.miss_probability) {
      ++missed_;
      continue;  // hardware skipped this measurement
    }
    bool scheduled_miss = false;
    for (const double miss_t : config_.scheduled_miss_times) {
      if (std::abs(t - miss_t) <= period / 2.0) {
        scheduled_miss = true;
        break;
      }
    }
    if (scheduled_miss) {
      ++missed_;
      continue;
    }

    GpsFix fix = source_(t);
    fix.unix_time = t;
    if (config_.noise_std_m > 0.0) {
      // Perturb in a local frame so the noise magnitude is in meters.
      const geo::LocalFrame frame(fix.position);
      const geo::Vec2 jitter{gaussian() * config_.noise_std_m,
                             gaussian() * config_.noise_std_m};
      fix.position = frame.to_geo(jitter);
    }
    sentences.push_back(make_rmc(fix));
    maybe_corrupt(sentences.back());  // hit the fix-bearing sentence
    if (config_.emit_gga) sentences.push_back(make_gga(fix));
    if (config_.emit_vtg) sentences.push_back(make_vtg(fix));
  }
  return sentences;
}

}  // namespace alidrone::gps
