// GPS Driver — the paper's secure-world kernel component (Section V-B).
//
// In the prototype this maps the GPIO RX port into memory, scans for
// $GPRMC sentences and parses them with Libnmea. Here it consumes the byte
// stream produced by GpsReceiverSim, maintains the latest parsed fix, and
// exposes GetGPS() to the GPS Sampler TA. A monotonically increasing
// sequence number lets callers detect fresh measurements (the fixed-rate
// sampler's "wait until the first measurement update" semantics).
//
// Per-instance tallies stay local (tests assert them per driver); every
// driver also feeds the process-wide aggregate counters
// gps.driver.sentences_accepted / .sentences_rejected / .fixes_dropped in
// the global obs::MetricsRegistry, so evidence loss shows up in metrics
// snapshots and not only in the audit log.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "gps/fix.h"
#include "obs/flight_recorder.h"

namespace alidrone::gps {

class GpsDriver {
 public:
  /// Undelivered fixes kept for coalesced draining; at GPS rates (1-10 Hz)
  /// this holds many seconds of backlog. Overflow drops the oldest fix.
  static constexpr std::size_t kPendingCapacity = 64;
  /// Feed one framed NMEA sentence (or any line of bytes; invalid input is
  /// counted and dropped, never fatal — a driver must survive line noise).
  void feed(std::string_view sentence);

  /// Feed a raw byte stream; sentences are split on line boundaries.
  void feed_bytes(std::string_view bytes);

  /// The paper's GetGPS(): latest parsed fix, or nullopt before first fix.
  std::optional<GpsFix> get_gps() const;

  /// Drain up to `max_fixes` fixes accumulated since the last drain,
  /// oldest first — the coalesced GetGPSAuth path signs a whole backlog
  /// in one world switch instead of one switch pair per fix. GGA/VTG
  /// merges (altitude, speed) that arrive before a fix is drained are
  /// reflected in the drained copy, matching get_gps().
  std::vector<GpsFix> take_pending(std::size_t max_fixes = kPendingCapacity);

  std::size_t pending_fix_count() const { return pending_fixes_.size(); }
  /// Fixes lost to pending-queue overflow (the latest fix is never lost).
  std::uint64_t dropped_fixes() const { return dropped_fixes_; }

  /// Invoked on every pending-queue overflow with the dropped fix and the
  /// running dropped_fixes() total — the hook audit trails hang off (a
  /// dropped signed-sample candidate is an auditable loss of evidence).
  /// Pass nullptr to clear.
  using DropListener = std::function<void(const GpsFix& dropped,
                                          std::uint64_t total_dropped)>;
  void set_drop_listener(DropListener listener) {
    drop_listener_ = std::move(listener);
  }

  /// Trace pending-queue overflows as kGpsFixDropped events (null stops).
  void set_trace(obs::FlightRecorder* recorder) { recorder_ = recorder; }

  /// Sequence number of the latest fix; increments on every accepted
  /// $GPRMC. 0 means no fix yet.
  std::uint64_t sequence() const { return sequence_; }

  std::uint64_t accepted_sentences() const { return accepted_; }
  std::uint64_t rejected_sentences() const { return rejected_; }

 private:
  std::optional<GpsFix> latest_;
  std::deque<GpsFix> pending_fixes_;  // bounded by kPendingCapacity
  std::string pending_;               // partial line from feed_bytes
  std::uint64_t sequence_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t dropped_fixes_ = 0;
  DropListener drop_listener_;
  obs::FlightRecorder* recorder_ = nullptr;
};

}  // namespace alidrone::gps
