// GPS Driver — the paper's secure-world kernel component (Section V-B).
//
// In the prototype this maps the GPIO RX port into memory, scans for
// $GPRMC sentences and parses them with Libnmea. Here it consumes the byte
// stream produced by GpsReceiverSim, maintains the latest parsed fix, and
// exposes GetGPS() to the GPS Sampler TA. A monotonically increasing
// sequence number lets callers detect fresh measurements (the fixed-rate
// sampler's "wait until the first measurement update" semantics).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "gps/fix.h"

namespace alidrone::gps {

class GpsDriver {
 public:
  /// Feed one framed NMEA sentence (or any line of bytes; invalid input is
  /// counted and dropped, never fatal — a driver must survive line noise).
  void feed(std::string_view sentence);

  /// Feed a raw byte stream; sentences are split on line boundaries.
  void feed_bytes(std::string_view bytes);

  /// The paper's GetGPS(): latest parsed fix, or nullopt before first fix.
  std::optional<GpsFix> get_gps() const;

  /// Sequence number of the latest fix; increments on every accepted
  /// $GPRMC. 0 means no fix yet.
  std::uint64_t sequence() const { return sequence_; }

  std::uint64_t accepted_sentences() const { return accepted_; }
  std::uint64_t rejected_sentences() const { return rejected_; }

 private:
  std::optional<GpsFix> latest_;
  std::string pending_;  // partial line from feed_bytes
  std::uint64_t sequence_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace alidrone::gps
