#include "nmea/sentence.h"

namespace alidrone::nmea {

std::uint8_t checksum(std::string_view body) {
  std::uint8_t cs = 0;
  for (const char c : body) cs ^= static_cast<std::uint8_t>(c);
  return cs;
}

std::string frame(std::string_view body) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  const std::uint8_t cs = checksum(body);
  std::string out;
  out.reserve(body.size() + 6);
  out.push_back('$');
  out.append(body);
  out.push_back('*');
  out.push_back(kHex[cs >> 4]);
  out.push_back(kHex[cs & 0x0F]);
  out.append("\r\n");
  return out;
}

namespace {
int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}
}  // namespace

UnframeResult unframe(std::string_view sentence) {
  // Strip trailing CR/LF.
  while (!sentence.empty() && (sentence.back() == '\r' || sentence.back() == '\n')) {
    sentence.remove_suffix(1);
  }
  if (sentence.size() < 4 || sentence.front() != '$') return {};
  const std::size_t star = sentence.rfind('*');
  if (star == std::string_view::npos || star + 3 != sentence.size()) return {};

  const int hi = hex_value(sentence[star + 1]);
  const int lo = hex_value(sentence[star + 2]);
  if (hi < 0 || lo < 0) return {};

  const std::string_view body = sentence.substr(1, star - 1);
  if (checksum(body) != static_cast<std::uint8_t>((hi << 4) | lo)) return {};
  return {true, std::string(body)};
}

std::vector<std::string> split_fields(std::string_view body) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= body.size(); ++i) {
    if (i == body.size() || body[i] == ',') {
      fields.emplace_back(body.substr(start, i - start));
      start = i + 1;
    }
  }
  return fields;
}

std::string sentence_type(std::string_view body) {
  const std::size_t comma = body.find(',');
  return std::string(body.substr(0, comma));
}

}  // namespace alidrone::nmea
