// $GPVTG — Track Made Good and Ground Speed.
//
// Real receivers emit VTG alongside RMC/GGA; the driver uses it to refresh
// speed/course between RMC fixes and must tolerate it in the stream.
//
//   $GPVTG,ttt.t,T,mmm.m,M,sss.s,N,kkk.k,K,A*CS
//   (true course, magnetic course, speed in knots, speed in km/h, mode)
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace alidrone::nmea {

struct VtgSentence {
  double course_true_deg = 0.0;
  std::optional<double> course_magnetic_deg;
  double speed_knots = 0.0;
  double speed_kmh = 0.0;
};

std::optional<VtgSentence> parse_vtg(std::string_view framed_sentence);
std::string emit_vtg(const VtgSentence& vtg);

}  // namespace alidrone::nmea
