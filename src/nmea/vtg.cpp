#include "nmea/vtg.h"

#include <charconv>
#include <cstdio>

#include "nmea/sentence.h"

namespace alidrone::nmea {

namespace {

std::optional<double> parse_double(const std::string& s) {
  if (s.empty()) return std::nullopt;
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

}  // namespace

std::optional<VtgSentence> parse_vtg(std::string_view framed_sentence) {
  const UnframeResult unframed = unframe(framed_sentence);
  if (!unframed.ok) return std::nullopt;
  if (sentence_type(unframed.body) != "GPVTG") return std::nullopt;

  const std::vector<std::string> f = split_fields(unframed.body);
  // GPVTG, course_true, T, course_mag, M, speed_kn, N, speed_kmh, K[, mode]
  if (f.size() < 9) return std::nullopt;
  if (f[2] != "T" || f[4] != "M" || f[6] != "N" || f[8] != "K") return std::nullopt;

  VtgSentence vtg;
  const auto course = parse_double(f[1]);
  if (!course || *course < 0.0 || *course >= 360.0) return std::nullopt;
  vtg.course_true_deg = *course;

  if (!f[3].empty()) {
    const auto magnetic = parse_double(f[3]);
    if (!magnetic) return std::nullopt;
    vtg.course_magnetic_deg = *magnetic;
  }

  const auto knots = parse_double(f[5]);
  const auto kmh = parse_double(f[7]);
  if (!knots || !kmh || *knots < 0.0 || *kmh < 0.0) return std::nullopt;
  vtg.speed_knots = *knots;
  vtg.speed_kmh = *kmh;
  return vtg;
}

std::string emit_vtg(const VtgSentence& vtg) {
  char body[96];
  if (vtg.course_magnetic_deg) {
    std::snprintf(body, sizeof(body), "GPVTG,%05.1f,T,%05.1f,M,%05.1f,N,%05.1f,K,A",
                  vtg.course_true_deg, *vtg.course_magnetic_deg, vtg.speed_knots,
                  vtg.speed_kmh);
  } else {
    std::snprintf(body, sizeof(body), "GPVTG,%05.1f,T,,M,%05.1f,N,%05.1f,K,A",
                  vtg.course_true_deg, vtg.speed_knots, vtg.speed_kmh);
  }
  return frame(body);
}

}  // namespace alidrone::nmea
