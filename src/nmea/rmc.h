// $GPRMC — Recommended Minimum Navigation Information.
//
// The AliDrone GPS driver parses exactly this sentence (paper Section V-B):
// it carries latitude, longitude, speed, course, UTC time and date. This
// module provides both parsing (for the driver) and emission (for the GPS
// receiver simulator).
//
//   $GPRMC,hhmmss.sss,A,ddmm.mmmm,N,dddmm.mmmm,W,sss.s,ccc.c,ddmmyy,,,A*CS
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "geo/geopoint.h"

namespace alidrone::nmea {

struct UtcTime {
  int hour = 0;
  int minute = 0;
  double second = 0.0;

  double seconds_of_day() const { return hour * 3600.0 + minute * 60.0 + second; }
  bool operator==(const UtcTime&) const = default;
};

struct UtcDate {
  int day = 1;
  int month = 1;
  int year = 2018;  ///< full year (sentence carries two digits, 20xx assumed)

  bool operator==(const UtcDate&) const = default;
};

/// Parsed $GPRMC payload.
struct RmcSentence {
  UtcTime time;
  bool valid = false;  ///< status field: 'A' (active) vs 'V' (void)
  geo::GeoPoint position;
  double speed_knots = 0.0;
  double course_deg = 0.0;
  UtcDate date;

  /// Seconds since the Unix epoch for this time+date (UTC, no leap seconds).
  double unix_time() const;
};

/// Parse a framed $GPRMC sentence (checksum validated). Returns nullopt on
/// any framing, checksum, type, or field error.
std::optional<RmcSentence> parse_rmc(std::string_view framed_sentence);

/// Emit a framed $GPRMC sentence with checksum.
std::string emit_rmc(const RmcSentence& rmc);

/// Degrees to the NMEA "ddmm.mmmm" convention and back.
double degrees_to_nmea(double degrees);
double nmea_to_degrees(double ddmm);

}  // namespace alidrone::nmea
