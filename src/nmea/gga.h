// $GPGGA — Global Positioning System Fix Data.
//
// Carries the altitude field the paper's 3D extension (Section VII-B1)
// needs; the 2D protocol uses $GPRMC only.
//
//   $GPGGA,hhmmss.sss,ddmm.mmmm,N,dddmm.mmmm,W,q,ss,h.h,aaa.a,M,g.g,M,,*CS
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "geo/geopoint.h"
#include "nmea/rmc.h"

namespace alidrone::nmea {

/// GPS fix quality (field 6 of GGA).
enum class FixQuality : int {
  kInvalid = 0,
  kGpsFix = 1,
  kDgpsFix = 2,
};

struct GgaSentence {
  UtcTime time;
  geo::GeoPoint position;
  FixQuality quality = FixQuality::kInvalid;
  int satellites = 0;
  double hdop = 0.0;
  double altitude_m = 0.0;  ///< antenna altitude above mean sea level
  double geoid_separation_m = 0.0;
};

std::optional<GgaSentence> parse_gga(std::string_view framed_sentence);
std::string emit_gga(const GgaSentence& gga);

}  // namespace alidrone::nmea
