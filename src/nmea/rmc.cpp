#include "nmea/rmc.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "nmea/sentence.h"

namespace alidrone::nmea {

namespace {

std::optional<double> parse_double(const std::string& s) {
  if (s.empty()) return std::nullopt;
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::optional<int> parse_2digits(std::string_view s) {
  if (s.size() != 2 || s[0] < '0' || s[0] > '9' || s[1] < '0' || s[1] > '9') {
    return std::nullopt;
  }
  return (s[0] - '0') * 10 + (s[1] - '0');
}

std::optional<UtcTime> parse_time(const std::string& s) {
  // hhmmss[.sss]
  if (s.size() < 6) return std::nullopt;
  const auto hh = parse_2digits(std::string_view(s).substr(0, 2));
  const auto mm = parse_2digits(std::string_view(s).substr(2, 2));
  const auto ss = parse_double(s.substr(4));
  if (!hh || !mm || !ss) return std::nullopt;
  if (*hh > 23 || *mm > 59 || *ss >= 61.0) return std::nullopt;
  return UtcTime{*hh, *mm, *ss};
}

std::optional<UtcDate> parse_date(const std::string& s) {
  if (s.size() != 6) return std::nullopt;
  const auto dd = parse_2digits(std::string_view(s).substr(0, 2));
  const auto mo = parse_2digits(std::string_view(s).substr(2, 2));
  const auto yy = parse_2digits(std::string_view(s).substr(4, 2));
  if (!dd || !mo || !yy) return std::nullopt;
  if (*dd < 1 || *dd > 31 || *mo < 1 || *mo > 12) return std::nullopt;
  return UtcDate{*dd, *mo, 2000 + *yy};
}

}  // namespace

double degrees_to_nmea(double degrees) {
  const double abs_deg = std::abs(degrees);
  const double whole = std::floor(abs_deg);
  const double minutes = (abs_deg - whole) * 60.0;
  return whole * 100.0 + minutes;
}

double nmea_to_degrees(double ddmm) {
  const double whole = std::floor(ddmm / 100.0);
  const double minutes = ddmm - whole * 100.0;
  return whole + minutes / 60.0;
}

double RmcSentence::unix_time() const {
  // Days since epoch via civil-date arithmetic (Howard Hinnant's algorithm).
  int y = date.year;
  const int m = date.month;
  const int d = date.day;
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = static_cast<unsigned>((153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  const long days = static_cast<long>(era) * 146097 + static_cast<long>(doe) - 719468;
  return static_cast<double>(days) * 86400.0 + time.seconds_of_day();
}

std::optional<RmcSentence> parse_rmc(std::string_view framed_sentence) {
  const UnframeResult unframed = unframe(framed_sentence);
  if (!unframed.ok) return std::nullopt;
  if (sentence_type(unframed.body) != "GPRMC") return std::nullopt;

  const std::vector<std::string> f = split_fields(unframed.body);
  // GPRMC, time, status, lat, N/S, lon, E/W, speed, course, date, [magvar,
  // magvar E/W, mode]
  if (f.size() < 10) return std::nullopt;

  RmcSentence rmc;
  const auto time = parse_time(f[1]);
  if (!time) return std::nullopt;
  rmc.time = *time;

  if (f[2] == "A") {
    rmc.valid = true;
  } else if (f[2] == "V") {
    rmc.valid = false;
  } else {
    return std::nullopt;
  }

  const auto lat_raw = parse_double(f[3]);
  const auto lon_raw = parse_double(f[5]);
  if (!lat_raw || !lon_raw) return std::nullopt;
  if (f[4] != "N" && f[4] != "S") return std::nullopt;
  if (f[6] != "E" && f[6] != "W") return std::nullopt;
  rmc.position.lat_deg = nmea_to_degrees(*lat_raw) * (f[4] == "S" ? -1.0 : 1.0);
  rmc.position.lon_deg = nmea_to_degrees(*lon_raw) * (f[6] == "W" ? -1.0 : 1.0);
  if (std::abs(rmc.position.lat_deg) > 90.0 || std::abs(rmc.position.lon_deg) > 180.0) {
    return std::nullopt;
  }

  // Speed and course may legitimately be empty when stationary.
  if (!f[7].empty()) {
    const auto speed = parse_double(f[7]);
    if (!speed) return std::nullopt;
    rmc.speed_knots = *speed;
  }
  if (!f[8].empty()) {
    const auto course = parse_double(f[8]);
    if (!course) return std::nullopt;
    rmc.course_deg = *course;
  }

  const auto date = parse_date(f[9]);
  if (!date) return std::nullopt;
  rmc.date = *date;
  return rmc;
}

std::string emit_rmc(const RmcSentence& rmc) {
  char body[128];
  const double lat_nmea = degrees_to_nmea(rmc.position.lat_deg);
  const double lon_nmea = degrees_to_nmea(rmc.position.lon_deg);
  std::snprintf(body, sizeof(body),
                "GPRMC,%02d%02d%06.3f,%c,%09.4f,%c,%010.4f,%c,%05.1f,%05.1f,"
                "%02d%02d%02d,,,A",
                rmc.time.hour, rmc.time.minute, rmc.time.second,
                rmc.valid ? 'A' : 'V', lat_nmea,
                rmc.position.lat_deg >= 0.0 ? 'N' : 'S', lon_nmea,
                rmc.position.lon_deg >= 0.0 ? 'E' : 'W', rmc.speed_knots,
                rmc.course_deg, rmc.date.day, rmc.date.month,
                rmc.date.year % 100);
  return frame(body);
}

}  // namespace alidrone::nmea
