// NMEA 0183 sentence framing: "$<body>*<checksum>\r\n" where the checksum
// is the XOR of all body bytes, rendered as two uppercase hex digits.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace alidrone::nmea {

/// XOR checksum over the sentence body (the characters between '$' and '*').
std::uint8_t checksum(std::string_view body);

/// Wrap a body into a full framed sentence "$body*CS\r\n".
std::string frame(std::string_view body);

/// Unwrap and validate a framed sentence. Accepts with or without trailing
/// CR/LF. Returns the body, or an empty optional-like empty string + false.
struct UnframeResult {
  bool ok = false;
  std::string body;
};
UnframeResult unframe(std::string_view sentence);

/// Split a sentence body on commas. Empty fields are preserved.
std::vector<std::string> split_fields(std::string_view body);

/// Sentence type tag, e.g. "GPRMC" for "$GPRMC,...". Empty when absent.
std::string sentence_type(std::string_view body);

}  // namespace alidrone::nmea
