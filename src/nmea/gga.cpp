#include "nmea/gga.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "nmea/sentence.h"

namespace alidrone::nmea {

namespace {

std::optional<double> parse_double(const std::string& s) {
  if (s.empty()) return std::nullopt;
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::optional<UtcTime> parse_time(const std::string& s) {
  if (s.size() < 6) return std::nullopt;
  const auto digit = [&](std::size_t i) -> int {
    return s[i] >= '0' && s[i] <= '9' ? s[i] - '0' : -1;
  };
  for (std::size_t i = 0; i < 6; ++i) {
    if (digit(i) < 0) return std::nullopt;
  }
  const int hh = digit(0) * 10 + digit(1);
  const int mm = digit(2) * 10 + digit(3);
  const auto ss = parse_double(s.substr(4));
  if (!ss || hh > 23 || mm > 59 || *ss >= 61.0) return std::nullopt;
  return UtcTime{hh, mm, *ss};
}

}  // namespace

std::optional<GgaSentence> parse_gga(std::string_view framed_sentence) {
  const UnframeResult unframed = unframe(framed_sentence);
  if (!unframed.ok) return std::nullopt;
  if (sentence_type(unframed.body) != "GPGGA") return std::nullopt;

  const std::vector<std::string> f = split_fields(unframed.body);
  if (f.size() < 12) return std::nullopt;

  GgaSentence gga;
  const auto time = parse_time(f[1]);
  if (!time) return std::nullopt;
  gga.time = *time;

  const auto lat_raw = parse_double(f[2]);
  const auto lon_raw = parse_double(f[4]);
  if (!lat_raw || !lon_raw) return std::nullopt;
  if (f[3] != "N" && f[3] != "S") return std::nullopt;
  if (f[5] != "E" && f[5] != "W") return std::nullopt;
  gga.position.lat_deg = nmea_to_degrees(*lat_raw) * (f[3] == "S" ? -1.0 : 1.0);
  gga.position.lon_deg = nmea_to_degrees(*lon_raw) * (f[5] == "W" ? -1.0 : 1.0);

  if (f[6].size() != 1 || f[6][0] < '0' || f[6][0] > '2') return std::nullopt;
  gga.quality = static_cast<FixQuality>(f[6][0] - '0');

  if (!f[7].empty()) {
    int sats = 0;
    const auto [ptr, ec] = std::from_chars(f[7].data(), f[7].data() + f[7].size(), sats);
    if (ec != std::errc() || ptr != f[7].data() + f[7].size()) return std::nullopt;
    gga.satellites = sats;
  }
  if (!f[8].empty()) {
    const auto hdop = parse_double(f[8]);
    if (!hdop) return std::nullopt;
    gga.hdop = *hdop;
  }
  if (!f[9].empty()) {
    const auto alt = parse_double(f[9]);
    if (!alt) return std::nullopt;
    gga.altitude_m = *alt;
  }
  if (!f[11].empty()) {
    const auto sep = parse_double(f[11]);
    if (!sep) return std::nullopt;
    gga.geoid_separation_m = *sep;
  }
  return gga;
}

std::string emit_gga(const GgaSentence& gga) {
  char body[160];
  std::snprintf(body, sizeof(body),
                "GPGGA,%02d%02d%06.3f,%09.4f,%c,%010.4f,%c,%d,%02d,%.1f,%.1f,"
                "M,%.1f,M,,",
                gga.time.hour, gga.time.minute, gga.time.second,
                degrees_to_nmea(gga.position.lat_deg),
                gga.position.lat_deg >= 0.0 ? 'N' : 'S',
                degrees_to_nmea(gga.position.lon_deg),
                gga.position.lon_deg >= 0.0 ? 'E' : 'W',
                static_cast<int>(gga.quality), gga.satellites, gga.hdop,
                gga.altitude_m, gga.geoid_separation_m);
  return frame(body);
}

}  // namespace alidrone::nmea
