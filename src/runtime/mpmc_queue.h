// Bounded multi-producer/multi-consumer queue for the Auditor's admission
// pipeline. Deliberately simple — a mutex + two condition variables — so
// the determinism argument stays auditable: pop order equals push order
// (FIFO), and a failed try_push never consumes the item, which lets the
// caller send an explicit retry-later reply instead of silently dropping.
//
// Shutdown contract: close() wakes all waiters; pop() keeps draining items
// already queued before the close and returns nullopt only once empty, so
// no admitted request is ever abandoned with a broken promise.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace alidrone::runtime {

template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(std::size_t capacity) : capacity_(capacity) {}

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  /// Non-blocking push. Returns false (and leaves `item` untouched) when
  /// the queue is full or closed — the caller keeps ownership and can
  /// reply kRetryLater.
  bool try_push(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking pop: waits for an item or a close. After close(), drains
  /// whatever was queued first, then returns nullopt.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop (used to gather the rest of a batch).
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Rejects future pushes and wakes all blocked poppers.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace alidrone::runtime
