// Single-use countdown latch (the std::latch shape, kept local so the
// runtime layer has one self-contained synchronization vocabulary and so
// tests can exercise it directly under TSan).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <stdexcept>

namespace alidrone::runtime {

class Latch {
 public:
  explicit Latch(std::ptrdiff_t count) : count_(count) {
    if (count < 0) throw std::invalid_argument("Latch: negative count");
  }

  Latch(const Latch&) = delete;
  Latch& operator=(const Latch&) = delete;

  /// Decrement by n; wakes waiters when the count reaches zero. Throws
  /// when the decrement would drive the count negative.
  void count_down(std::ptrdiff_t n = 1) {
    std::unique_lock<std::mutex> lock(mu_);
    if (n < 0 || n > count_) {
      throw std::invalid_argument("Latch::count_down: decrement exceeds count");
    }
    count_ -= n;
    if (count_ == 0) {
      lock.unlock();
      cv_.notify_all();
    }
  }

  /// True when the count has already reached zero (never blocks).
  bool try_wait() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return count_ == 0;
  }

  /// Block until the count reaches zero.
  void wait() const {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return count_ == 0; });
  }

  void arrive_and_wait(std::ptrdiff_t n = 1) {
    count_down(n);
    wait();
  }

 private:
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  std::ptrdiff_t count_;
};

}  // namespace alidrone::runtime
