#include "runtime/thread_pool.h"

#include <stdexcept>

namespace alidrone::runtime {

namespace {

// Set for the lifetime of each worker's loop; off-pool threads keep the
// defaults.
thread_local int tl_worker_index = -1;
thread_local crypto::DeterministicRandom* tl_worker_rng = nullptr;

}  // namespace

ThreadPool::ThreadPool(Config config) : rng_seed_(std::move(config.rng_seed)) {
  std::size_t n = config.threads;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

int ThreadPool::worker_index() { return tl_worker_index; }

crypto::DeterministicRandom* ThreadPool::worker_rng() { return tl_worker_rng; }

void ThreadPool::enqueue(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      throw std::runtime_error("ThreadPool::submit: pool is shutting down");
    }
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop(std::size_t index) {
  // Worker-private RNG stream; forking by index makes streams mutually
  // independent and reproducible for a given pool seed.
  crypto::DeterministicRandom rng =
      crypto::DeterministicRandom(std::string_view(rng_seed_)).fork(index);
  tl_worker_index = static_cast<int>(index);
  tl_worker_rng = &rng;

  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) break;  // stopping_ and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task: exceptions land in the caller's future
  }

  tl_worker_rng = nullptr;
  tl_worker_index = -1;
}

}  // namespace alidrone::runtime
