// Fixed-size worker pool for the Auditor's batched verification path.
//
// A ThreadPool owns N worker threads draining one FIFO task queue.
// submit() wraps the callable in a std::packaged_task so exceptions
// thrown inside a task surface on the caller's future rather than
// terminating a worker. The destructor drains every task that was
// already enqueued, then joins — work submitted before shutdown is
// never silently dropped.
//
// Each worker carries its own DeterministicRandom stream (forked from
// the pool seed by worker index), because RandomSource instances are
// not thread-safe (see crypto/random.h). Task code that needs
// randomness uses ThreadPool::worker_rng() instead of sharing one
// generator across threads.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "crypto/random.h"

namespace alidrone::runtime {

class ThreadPool {
 public:
  struct Config {
    /// Worker count; 0 means std::thread::hardware_concurrency().
    std::size_t threads = 0;
    /// Seed for the per-worker DeterministicRandom streams.
    std::string rng_seed = "alidrone-thread-pool";
  };

  explicit ThreadPool(std::size_t threads = 0) : ThreadPool(Config{threads}) {}
  explicit ThreadPool(Config config);

  /// Drains all enqueued tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a nullary callable; its return value (or exception) is
  /// delivered through the returned future. Tasks submitted from one
  /// thread start in FIFO order.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    enqueue([task]() mutable { (*task)(); });
    return future;
  }

  /// Index of the calling thread within its owning pool, or -1 when the
  /// caller is not a pool worker.
  static int worker_index();

  /// The calling worker's private DeterministicRandom stream (stream i is
  /// pool_seed forked by worker index i), or nullptr when the caller is
  /// not a pool worker. Never shared between threads, so safe without
  /// locking.
  static crypto::DeterministicRandom* worker_rng();

 private:
  void enqueue(std::function<void()> task);
  void worker_loop(std::size_t index);

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::string rng_seed_;
  std::vector<std::thread> workers_;
};

}  // namespace alidrone::runtime
