// Blocking data-parallel loop over an index range.
//
// parallel_for(pool, begin, end, fn) partitions [begin, end) into
// contiguous chunks (a few per worker, to absorb imbalance between
// items) and runs fn(i) for every index exactly once. The call returns
// only after every chunk has finished; if any fn invocation throws, the
// first exception (in chunk order) is rethrown to the caller after all
// chunks have completed, so no task is left running against destroyed
// caller state.
//
// Must not be called from inside a pool worker: the caller blocks on
// chunks that need a worker slot, so nesting can deadlock a fully
// loaded pool.
#pragma once

#include <cstddef>
#include <exception>
#include <future>
#include <vector>

#include "runtime/thread_pool.h"

namespace alidrone::runtime {

template <typename Fn>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end, Fn&& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (pool.size() <= 1 || n == 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  // ~4 chunks per worker: big enough to amortize queue overhead, small
  // enough that one slow item doesn't idle the other workers.
  const std::size_t chunks = std::min(n, pool.size() * 4);
  const std::size_t base = n / chunks;
  const std::size_t extra = n % chunks;  // first `extra` chunks get +1

  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  std::size_t lo = begin;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t hi = lo + base + (c < extra ? 1 : 0);
    futures.push_back(pool.submit([&fn, lo, hi] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
    lo = hi;
  }

  // Wait for everything first, then rethrow: a future destroyed while
  // its chunk still runs would leave fn executing past the rethrow.
  for (const std::future<void>& f : futures) f.wait();
  std::exception_ptr first;
  for (std::future<void>& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace alidrone::runtime
